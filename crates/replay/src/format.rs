//! The binary trace-file format.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic   b"MWTR"                      (4 raw bytes)
//! version 3                            (decoder accepts 1 through 3)
//! meta    app, scale (strings: length + UTF-8 bytes), verified (1 byte),
//!         backend (1 byte: `BackendKind::wire_tag`), procs, history_cap,
//!         cost model (Table 1 fields; µs fields as f64 bit patterns),
//!         net model (4 varints),
//!         fault plan (v3+: enabled (1 byte) + 7 varints) and reliable
//!         channel params (v3+: 3 varints) — absent in v1/v2, which
//!         decode as "perfect network, default channel",
//!         home map (v4+: tag (1 byte), sharded adds a seed varint) and
//!         barrier shape (v4+: tag (1 byte), tree adds an arity varint)
//!         — absent before v4, which decodes as "modulo homes, flat
//!         barriers",
//!         crash plan (v5+: count + count × (proc, at, down) varints) and
//!         checkpoint_every (v5+: 1 varint) — absent before v5, which
//!         decodes as "no crashes, checkpointing off",
//!         finish_cycles, messages,
//!         counters: procs × 16 varints (Table 2 field order), plus 8
//!         crash/recovery varints in v5+
//! blueprint
//!         allocs: n × (name, addr, len, private (1 byte), line_shift)
//!         locks: n × ranges           (ranges: n × (start, len))
//!         barriers: n × (ranges, has_partitions (1 byte), partitions)
//! ops     procs × stream              (stream: n × op)
//!         op: tag (1 byte) + payload:
//!           0 Work    cycles
//!           1 Idle    cycles
//!           2 Write   addr, len, raw bytes
//!           3 Acquire lock, exclusive (1 byte)
//!           4 Release lock, exclusive (1 byte)
//!           5 Rebind  lock, ranges
//!           6 Barrier barrier
//! footer  FNV-1a 64 checksum of every preceding byte (8 bytes LE)
//! ```
//!
//! Decoding verifies the magic, version and checksum before anything
//! else, and every read is bounds-checked, so truncated or corrupted
//! files are rejected rather than misread.

use midway_core::{
    AllocSpec, BackendKind, BarrierShape, BarrierSpec, Counters, HomeMap, MidwayConfig,
    ReliableParams, SpecBlueprint, TraceOp,
};
use midway_mem::AddrRange;
use midway_sim::{CrashEvent, FaultPlan, NetModel, MAX_CRASHES};
use midway_stats::CostModel;

use crate::{Trace, TraceMeta};

/// File magic: "MWTR" (MidWay TRace).
pub const MAGIC: [u8; 4] = *b"MWTR";
/// Current format version. Version 2 added the `hybrid` backend tag (the
/// byte layout is unchanged — backend tags are append-only); version 3
/// added the fault plan and reliable-channel parameters to the header so
/// faulty runs replay deterministically; version 4 added the sync-home
/// placement map and barrier shape so scale-out runs (sharded homes,
/// combining-tree barriers) replay bit-for-bit; version 5 added the
/// processor-crash plan, the checkpoint interval, and the crash/recovery
/// counters so crashed-and-recovered runs replay bit-for-bit. Older files
/// still decode: v1/v2 as fault-free, anything before v4 as modulo homes
/// with flat barriers, and anything before v5 as crash-free with
/// checkpointing off — exactly the configuration those traces ran under.
pub const VERSION: u64 = 5;

/// The oldest format version the decoder accepts.
pub const MIN_VERSION: u64 = 1;

/// Why a trace file was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The file does not start with the `MWTR` magic.
    BadMagic,
    /// The file's format version is not supported.
    BadVersion(u64),
    /// The checksum footer does not match the contents.
    BadChecksum,
    /// The file ends in the middle of a field.
    Truncated,
    /// A field holds a value the format does not allow.
    Malformed(&'static str),
    /// The file could not be read at all.
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a Midway trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::BadChecksum => write!(f, "trace checksum mismatch (corrupt file)"),
            TraceError::Truncated => write!(f, "trace file is truncated"),
            TraceError::Malformed(what) => write!(f, "malformed trace: {what}"),
            TraceError::Io(e) => write!(f, "cannot read trace: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// FNV-1a 64-bit checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------- encoding

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn string(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.raw(s.as_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.raw(&v.to_bits().to_le_bytes());
    }

    fn ranges(&mut self, ranges: &[AddrRange]) {
        self.varint(ranges.len() as u64);
        for r in ranges {
            self.varint(r.start);
            self.varint(r.end - r.start);
        }
    }

    fn cost(&mut self, c: &CostModel) {
        self.varint(u64::from(c.mhz));
        self.varint(c.page_size as u64);
        for v in [
            c.dirtybit_set_word,
            c.dirtybit_set_double,
            c.dirtybit_set_private,
            c.dirtybit_set_area_base,
            c.dirtybit_read_clean,
            c.dirtybit_read_dirty,
            c.dirtybit_update,
            c.dirtybit_set_queue,
            c.dirtybit_set_two_level,
            c.page_write_fault,
            c.page_diff_uniform,
            c.page_diff_alternating,
            c.protect_rw,
            c.protect_ro,
            c.copy_per_kb_cold,
            c.copy_per_kb_warm,
        ] {
            self.varint(v);
        }
        for v in [
            c.dirtybit_read_clean_us,
            c.dirtybit_read_dirty_us,
            c.dirtybit_update_us,
            c.page_diff_uniform_us,
        ] {
            self.f64(v);
        }
    }

    fn net(&mut self, n: &NetModel) {
        self.varint(n.latency_cycles);
        self.varint(n.per_byte_millicycles);
        self.varint(n.send_overhead_cycles);
        self.varint(n.recv_overhead_cycles);
    }

    fn faults(&mut self, f: &FaultPlan) {
        self.byte(u8::from(f.enabled));
        self.varint(f.seed);
        self.varint(u64::from(f.drop_ppm));
        self.varint(u64::from(f.dup_ppm));
        self.varint(u64::from(f.reorder_ppm));
        self.varint(u64::from(f.delay_ppm));
        self.varint(f.max_delay_cycles);
        self.varint(f.reorder_window_cycles);
    }

    fn reliable(&mut self, p: &ReliableParams) {
        self.varint(p.rto_cycles);
        self.varint(u64::from(p.backoff_cap));
        self.varint(p.timer_cost_cycles);
    }

    fn home_map(&mut self, h: HomeMap) {
        match h {
            HomeMap::Modulo => self.byte(0),
            HomeMap::Sharded { seed } => {
                self.byte(1);
                self.varint(seed);
            }
        }
    }

    fn barrier_shape(&mut self, b: BarrierShape) {
        match b {
            BarrierShape::Flat => self.byte(0),
            BarrierShape::Tree { arity } => {
                self.byte(1);
                self.varint(u64::from(arity));
            }
        }
    }

    fn crash_plan(&mut self, f: &FaultPlan) {
        let crashes = f.crashes();
        self.varint(crashes.len() as u64);
        for c in crashes {
            self.varint(u64::from(c.proc));
            self.varint(c.at);
            self.varint(c.down);
        }
    }

    fn counters(&mut self, c: &Counters, version: u64) {
        for v in [
            c.dirtybits_set,
            c.dirtybits_misclassified,
            c.clean_dirtybits_read,
            c.dirty_dirtybits_read,
            c.dirtybits_updated,
            c.write_faults,
            c.pages_diffed,
            c.pages_write_protected,
            c.twin_bytes_updated,
            c.data_bytes_sent,
            c.data_bytes_received,
            c.redundant_bytes_received,
            c.lock_acquires,
            c.lock_transfers_served,
            c.full_data_sends,
            c.barrier_waits,
        ] {
            self.varint(v);
        }
        if version >= 5 {
            for v in [
                c.crashes,
                c.downtime_cycles,
                c.fenced_messages,
                c.checkpoints_written,
                c.checkpoint_bytes,
                c.wal_bytes_logged,
                c.recovery_replay_bytes,
                c.recovery_cycles,
            ] {
                self.varint(v);
            }
        }
    }

    fn op(&mut self, op: &TraceOp) {
        match op {
            TraceOp::Work { cycles } => {
                self.byte(0);
                self.varint(*cycles);
            }
            TraceOp::Idle { cycles } => {
                self.byte(1);
                self.varint(*cycles);
            }
            TraceOp::Write { addr, data } => {
                self.byte(2);
                self.varint(*addr);
                self.varint(data.len() as u64);
                self.raw(data);
            }
            TraceOp::Acquire { lock, exclusive } => {
                self.byte(3);
                self.varint(u64::from(*lock));
                self.byte(u8::from(*exclusive));
            }
            TraceOp::Release { lock, exclusive } => {
                self.byte(4);
                self.varint(u64::from(*lock));
                self.byte(u8::from(*exclusive));
            }
            TraceOp::Rebind { lock, ranges } => {
                self.byte(5);
                self.varint(u64::from(*lock));
                self.ranges(ranges);
            }
            TraceOp::Barrier { barrier } => {
                self.byte(6);
                self.varint(u64::from(*barrier));
            }
        }
    }
}

/// Encodes a trace into the `MWTR` byte format at the current version.
pub fn encode(trace: &Trace) -> Vec<u8> {
    encode_version(trace, VERSION)
}

/// Encodes a trace at an *older* format version, omitting every section
/// that version lacked. This exists so compatibility tests can synthesize
/// genuine old-version files without keeping binary fixtures in the repo;
/// the trace must not rely on features the target version cannot express
/// (the caller is responsible — nothing here checks).
///
/// # Panics
///
/// Panics if `version` is outside the decoder's accepted range.
pub fn encode_version(trace: &Trace, version: u64) -> Vec<u8> {
    assert!(
        (MIN_VERSION..=VERSION).contains(&version),
        "cannot encode unknown version {version}"
    );
    let mut w = Writer { buf: Vec::new() };
    w.raw(&MAGIC);
    w.varint(version);

    let m = &trace.meta;
    w.string(&m.app);
    w.string(&m.scale);
    w.byte(u8::from(m.verified));
    w.byte(m.cfg.backend.wire_tag());
    w.varint(m.cfg.procs as u64);
    w.varint(m.cfg.history_cap as u64);
    w.cost(&m.cfg.cost);
    w.net(&m.cfg.net);
    if version >= 3 {
        w.faults(&m.cfg.faults);
        w.reliable(&m.cfg.reliable);
    }
    if version >= 4 {
        w.home_map(m.cfg.home_map);
        w.barrier_shape(m.cfg.barrier);
    }
    if version >= 5 {
        w.crash_plan(&m.cfg.faults);
        w.varint(u64::from(m.cfg.checkpoint_every));
    }
    w.varint(m.finish_cycles);
    w.varint(m.messages);
    assert_eq!(
        m.counters.len(),
        m.cfg.procs,
        "one counter set per processor"
    );
    for c in &m.counters {
        w.counters(c, version);
    }

    let bp = &trace.blueprint;
    w.varint(bp.allocs.len() as u64);
    for a in &bp.allocs {
        w.string(&a.name);
        w.varint(a.addr);
        w.varint(a.len as u64);
        w.byte(u8::from(a.private));
        w.varint(u64::from(a.line_shift));
    }
    w.varint(bp.locks.len() as u64);
    for l in &bp.locks {
        w.ranges(l);
    }
    w.varint(bp.barriers.len() as u64);
    for b in &bp.barriers {
        w.ranges(&b.ranges);
        match &b.partitions {
            None => w.byte(0),
            Some(ps) => {
                w.byte(1);
                w.varint(ps.len() as u64);
                for p in ps {
                    w.ranges(p);
                }
            }
        }
    }

    assert_eq!(trace.ops.len(), m.cfg.procs, "one op stream per processor");
    for stream in &trace.ops {
        w.varint(stream.len() as u64);
        for op in stream {
            w.op(op);
        }
    }

    let sum = fnv1a64(&w.buf);
    w.raw(&sum.to_le_bytes());
    w.buf
}

// ---------------------------------------------------------------- decoding

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, TraceError> {
        let b = *self.buf.get(self.pos).ok_or(TraceError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TraceError::Malformed("varint longer than 64 bits"))
    }

    fn len(&mut self, of_at_least: usize) -> Result<usize, TraceError> {
        // A length prefix can never exceed the bytes that remain; checking
        // here keeps a corrupted length from attempting a huge allocation.
        let n = self.varint()? as usize;
        if n.saturating_mul(of_at_least.max(1)) > self.buf.len() - self.pos {
            return Err(TraceError::Truncated);
        }
        Ok(n)
    }

    fn raw(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(TraceError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn string(&mut self) -> Result<String, TraceError> {
        let n = self.len(1)?;
        let bytes = self.raw(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| TraceError::Malformed("non-UTF-8 string"))
    }

    fn f64(&mut self) -> Result<f64, TraceError> {
        let bytes: [u8; 8] = self.raw(8)?.try_into().expect("8 bytes");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn ranges(&mut self) -> Result<Vec<AddrRange>, TraceError> {
        let n = self.len(2)?;
        (0..n)
            .map(|_| {
                let start = self.varint()?;
                let len = self.varint()?;
                Ok(start..start + len)
            })
            .collect()
    }

    fn cost(&mut self) -> Result<CostModel, TraceError> {
        let mut c = CostModel::r3000_mach();
        c.mhz = self.varint()? as u32;
        c.page_size = self.varint()? as usize;
        for f in [
            &mut c.dirtybit_set_word,
            &mut c.dirtybit_set_double,
            &mut c.dirtybit_set_private,
            &mut c.dirtybit_set_area_base,
            &mut c.dirtybit_read_clean,
            &mut c.dirtybit_read_dirty,
            &mut c.dirtybit_update,
            &mut c.dirtybit_set_queue,
            &mut c.dirtybit_set_two_level,
            &mut c.page_write_fault,
            &mut c.page_diff_uniform,
            &mut c.page_diff_alternating,
            &mut c.protect_rw,
            &mut c.protect_ro,
            &mut c.copy_per_kb_cold,
            &mut c.copy_per_kb_warm,
        ] {
            *f = self.varint()?;
        }
        for f in [
            &mut c.dirtybit_read_clean_us,
            &mut c.dirtybit_read_dirty_us,
            &mut c.dirtybit_update_us,
            &mut c.page_diff_uniform_us,
        ] {
            *f = self.f64()?;
        }
        Ok(c)
    }

    fn net(&mut self) -> Result<NetModel, TraceError> {
        Ok(NetModel {
            latency_cycles: self.varint()?,
            per_byte_millicycles: self.varint()?,
            send_overhead_cycles: self.varint()?,
            recv_overhead_cycles: self.varint()?,
        })
    }

    fn faults(&mut self) -> Result<FaultPlan, TraceError> {
        let enabled = self.byte()? != 0;
        let mut f = FaultPlan::seeded(self.varint()?);
        f.enabled = enabled;
        f.drop_ppm = self.u32field()?;
        f.dup_ppm = self.u32field()?;
        f.reorder_ppm = self.u32field()?;
        f.delay_ppm = self.u32field()?;
        f.max_delay_cycles = self.varint()?;
        f.reorder_window_cycles = self.varint()?;
        Ok(f)
    }

    fn u32field(&mut self) -> Result<u32, TraceError> {
        u32::try_from(self.varint()?).map_err(|_| TraceError::Malformed("field exceeds u32"))
    }

    fn reliable(&mut self) -> Result<ReliableParams, TraceError> {
        Ok(ReliableParams {
            rto_cycles: self.varint()?,
            backoff_cap: self.u32field()?,
            timer_cost_cycles: self.varint()?,
        })
    }

    fn home_map(&mut self) -> Result<HomeMap, TraceError> {
        match self.byte()? {
            0 => Ok(HomeMap::Modulo),
            1 => Ok(HomeMap::Sharded {
                seed: self.varint()?,
            }),
            _ => Err(TraceError::Malformed("unknown home-map tag")),
        }
    }

    fn barrier_shape(&mut self) -> Result<BarrierShape, TraceError> {
        match self.byte()? {
            0 => Ok(BarrierShape::Flat),
            1 => {
                let arity = self.u32field()?;
                if arity < 2 {
                    return Err(TraceError::Malformed("tree barrier arity below 2"));
                }
                Ok(BarrierShape::Tree { arity })
            }
            _ => Err(TraceError::Malformed("unknown barrier-shape tag")),
        }
    }

    fn crash_plan(&mut self, f: &mut FaultPlan) -> Result<(), TraceError> {
        let n = self.len(3)?;
        if n > MAX_CRASHES {
            return Err(TraceError::Malformed("crash plan exceeds MAX_CRASHES"));
        }
        for i in 0..n {
            f.crashes[i] = CrashEvent {
                proc: self.u32field()?,
                at: self.varint()?,
                down: self.varint()?,
            };
        }
        f.crash_len = n as u8;
        Ok(())
    }

    fn counters(&mut self, version: u64) -> Result<Counters, TraceError> {
        let mut c = Counters::default();
        for f in [
            &mut c.dirtybits_set,
            &mut c.dirtybits_misclassified,
            &mut c.clean_dirtybits_read,
            &mut c.dirty_dirtybits_read,
            &mut c.dirtybits_updated,
            &mut c.write_faults,
            &mut c.pages_diffed,
            &mut c.pages_write_protected,
            &mut c.twin_bytes_updated,
            &mut c.data_bytes_sent,
            &mut c.data_bytes_received,
            &mut c.redundant_bytes_received,
            &mut c.lock_acquires,
            &mut c.lock_transfers_served,
            &mut c.full_data_sends,
            &mut c.barrier_waits,
        ] {
            *f = self.varint()?;
        }
        if version >= 5 {
            for f in [
                &mut c.crashes,
                &mut c.downtime_cycles,
                &mut c.fenced_messages,
                &mut c.checkpoints_written,
                &mut c.checkpoint_bytes,
                &mut c.wal_bytes_logged,
                &mut c.recovery_replay_bytes,
                &mut c.recovery_cycles,
            ] {
                *f = self.varint()?;
            }
        }
        Ok(c)
    }

    fn op(&mut self) -> Result<TraceOp, TraceError> {
        Ok(match self.byte()? {
            0 => TraceOp::Work {
                cycles: self.varint()?,
            },
            1 => TraceOp::Idle {
                cycles: self.varint()?,
            },
            2 => {
                let addr = self.varint()?;
                let n = self.len(1)?;
                TraceOp::Write {
                    addr,
                    data: self.raw(n)?.to_vec(),
                }
            }
            3 => TraceOp::Acquire {
                lock: self.varint()? as u32,
                exclusive: self.byte()? != 0,
            },
            4 => TraceOp::Release {
                lock: self.varint()? as u32,
                exclusive: self.byte()? != 0,
            },
            5 => TraceOp::Rebind {
                lock: self.varint()? as u32,
                ranges: self.ranges()?,
            },
            6 => TraceOp::Barrier {
                barrier: self.varint()? as u32,
            },
            _ => return Err(TraceError::Malformed("unknown op tag")),
        })
    }
}

/// Decodes an `MWTR` byte buffer back into a trace.
pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(TraceError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let (payload, footer) = bytes.split_at(bytes.len() - 8);
    let sum = u64::from_le_bytes(footer.try_into().expect("8 bytes"));
    if fnv1a64(payload) != sum {
        return Err(TraceError::BadChecksum);
    }

    let mut r = Reader {
        buf: payload,
        pos: MAGIC.len(),
    };
    let version = r.varint()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(TraceError::BadVersion(version));
    }

    let app = r.string()?;
    let scale = r.string()?;
    let verified = r.byte()? != 0;
    let backend = BackendKind::from_wire_tag(r.byte()?)
        .ok_or(TraceError::Malformed("unknown backend tag"))?;
    let procs = r.len(1)?;
    if procs == 0 {
        return Err(TraceError::Malformed("zero processors"));
    }
    let history_cap = r.varint()? as usize;
    let cost = r.cost()?;
    let net = r.net()?;
    let (mut faults, reliable) = if version >= 3 {
        (r.faults()?, r.reliable()?)
    } else {
        // v1/v2 traces predate fault injection: perfect network.
        (FaultPlan::none(), ReliableParams::atm_cluster())
    };
    let (home_map, barrier) = if version >= 4 {
        (r.home_map()?, r.barrier_shape()?)
    } else {
        // Pre-v4 traces ran with the only placement that existed.
        (HomeMap::Modulo, BarrierShape::Flat)
    };
    let checkpoint_every = if version >= 5 {
        r.crash_plan(&mut faults)?;
        r.u32field()?
    } else {
        // Pre-v5 traces predate crash fault tolerance: no crashes and no
        // checkpointing, which is exactly what those runs did.
        0
    };
    let finish_cycles = r.varint()?;
    let messages = r.varint()?;
    let counters = (0..procs)
        .map(|_| r.counters(version))
        .collect::<Result<Vec<_>, _>>()?;
    let cfg = MidwayConfig {
        procs,
        backend,
        cost,
        net,
        history_cap,
        record: false,
        faults,
        reliable,
        home_map,
        barrier,
        checkpoint_every,
        // Checking is a per-replay choice, never a property of the file.
        check: false,
    };

    let nallocs = r.len(4)?;
    let allocs = (0..nallocs)
        .map(|_| {
            Ok(AllocSpec {
                name: r.string()?,
                addr: r.varint()?,
                len: r.varint()? as usize,
                private: r.byte()? != 0,
                line_shift: r.varint()? as u32,
            })
        })
        .collect::<Result<Vec<_>, TraceError>>()?;
    let nlocks = r.len(1)?;
    let locks = (0..nlocks)
        .map(|_| r.ranges())
        .collect::<Result<Vec<_>, _>>()?;
    let nbarriers = r.len(1)?;
    let barriers = (0..nbarriers)
        .map(|_| {
            let ranges = r.ranges()?;
            let partitions = match r.byte()? {
                0 => None,
                _ => {
                    let n = r.len(1)?;
                    Some((0..n).map(|_| r.ranges()).collect::<Result<Vec<_>, _>>()?)
                }
            };
            Ok(BarrierSpec { ranges, partitions })
        })
        .collect::<Result<Vec<_>, TraceError>>()?;

    let ops = (0..procs)
        .map(|_| {
            let n = r.len(1)?;
            (0..n).map(|_| r.op()).collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;

    if r.pos != payload.len() {
        return Err(TraceError::Malformed("trailing bytes after op streams"));
    }

    Ok(Trace {
        meta: TraceMeta {
            app,
            scale,
            verified,
            cfg,
            finish_cycles,
            messages,
            counters,
        },
        blueprint: SpecBlueprint {
            allocs,
            locks,
            barriers,
        },
        ops,
    })
}
