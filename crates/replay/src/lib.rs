//! Trace capture & replay for the Midway DSM reproduction.
//!
//! Under entry consistency, every number the paper reports — Table 2's
//! primitive-operation counters, the execution times, the data volumes —
//! is a pure function of each processor's *shared-memory operation
//! stream*: its shared stores (with values), synchronization operations
//! and compute-cycle charges. This crate captures that stream once, to a
//! versioned, checksummed, varint-encoded binary file, and replays it
//! through the full protocol machinery without re-running the
//! application:
//!
//! * same backend, same parameters → the replay is **bit-for-bit
//!   identical** to the original run ([`verify_replay`] asserts this;
//!   it operationalizes the determinism argument in DESIGN.md), and
//! * any other backend (Rt, Vm, Blast, TwinAll), cache-line size,
//!   page-fault cost or network model → a cheap trace-driven evaluation
//!   of that design point, skipping the application's host-side compute.
//!
//! Record once, sweep many: the `fig3`, `fig4`, `ablation_linesize` and
//! `ablation_protocols` harnesses drive all their sweep points from one
//! captured trace per application. The `trace` binary exposes the same
//! machinery on the command line (`record` / `replay` / `info` / `diff`).

use std::path::Path;
use std::sync::Arc;

use midway_apps::{run_app, AppKind, AppOutcome, Scale};
use midway_core::{
    Counters, FaultPlan, LinkStats, Midway, MidwayConfig, MidwayRun, Proc, SimError, SpecBlueprint,
    SystemSpec, TraceOp,
};

mod format;

pub use format::{decode, encode, encode_version, TraceError, MAGIC, MIN_VERSION, VERSION};

/// Everything known about the recorded run, stored in the trace header.
///
/// The configuration makes the file self-contained (a replay needs the
/// cost and network models), and the recorded counters and times are the
/// baseline the equivalence oracle checks same-configuration replays
/// against.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceMeta {
    /// Application label (e.g. `sor`), free-form for non-app traces.
    pub app: String,
    /// Workload scale label (e.g. `small`).
    pub scale: String,
    /// Whether the recorded run verified its own output.
    pub verified: bool,
    /// The full configuration of the recorded run (`record` and `check`
    /// forced off: both are per-run choices, not properties of the file).
    pub cfg: MidwayConfig,
    /// The recorded run's finish time, in cycles.
    pub finish_cycles: u64,
    /// Messages delivered cluster-wide in the recorded run.
    pub messages: u64,
    /// Per-processor Table 2 counters of the recorded run.
    pub counters: Vec<Counters>,
}

/// A captured run: header, system blueprint and per-processor operation
/// streams.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Header: identity, configuration and recorded baseline.
    pub meta: TraceMeta,
    /// Everything needed to rebuild the run's [`SystemSpec`].
    pub blueprint: SpecBlueprint,
    /// Recorded operation streams, indexed by processor id.
    pub ops: Vec<Vec<TraceOp>>,
}

impl Trace {
    /// Packages a recorded run (one run with [`MidwayConfig::record`] on).
    ///
    /// # Panics
    ///
    /// Panics if the run was not recorded.
    pub fn from_run<R>(app: &str, scale: &str, verified: bool, run: &MidwayRun<R>) -> Trace {
        assert_eq!(
            run.traces.len(),
            run.cfg.procs,
            "run was not recorded: configure with MidwayConfig::record(true)"
        );
        Trace {
            meta: TraceMeta {
                app: app.to_string(),
                scale: scale.to_string(),
                verified,
                cfg: run.cfg.record(false).check(false),
                finish_cycles: run.finish_time.cycles(),
                messages: run.messages,
                counters: run.counters.clone(),
            },
            blueprint: run.blueprint.clone().expect("recorded run has a blueprint"),
            ops: run.traces.clone(),
        }
    }

    /// Packages a recorded application outcome.
    ///
    /// # Panics
    ///
    /// Panics if the outcome was not recorded.
    pub fn from_outcome(outcome: &AppOutcome, scale: Scale) -> Trace {
        assert_eq!(
            outcome.traces.len(),
            outcome.cfg.procs,
            "outcome was not recorded: configure with MidwayConfig::record(true)"
        );
        Trace {
            meta: TraceMeta {
                app: outcome.kind.label().to_string(),
                scale: scale.label().to_string(),
                verified: outcome.verified,
                cfg: outcome.cfg.record(false).check(false),
                finish_cycles: outcome.finish_time.cycles(),
                messages: outcome.messages,
                counters: outcome.counters.clone(),
            },
            blueprint: outcome
                .blueprint
                .clone()
                .expect("recorded outcome has a blueprint"),
            ops: outcome.traces.clone(),
        }
    }

    /// Serializes to the `MWTR` byte format.
    pub fn encode(&self) -> Vec<u8> {
        format::encode(self)
    }

    /// Parses the `MWTR` byte format, verifying magic, version and
    /// checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] describing the first defect found.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
        format::decode(bytes)
    }

    /// Writes the encoded trace to `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Reads and decodes a trace file.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the file cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| TraceError::Io(e.to_string()))?;
        Trace::decode(&bytes)
    }

    /// Total recorded operations across all processors.
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }

    /// Per-op-kind totals `[work, idle, write, acquire, release, rebind,
    /// barrier]` across all processors.
    pub fn op_histogram(&self) -> [u64; 7] {
        let mut h = [0u64; 7];
        for op in self.ops.iter().flatten() {
            let slot = match op {
                TraceOp::Work { .. } => 0,
                TraceOp::Idle { .. } => 1,
                TraceOp::Write { .. } => 2,
                TraceOp::Acquire { .. } => 3,
                TraceOp::Release { .. } => 4,
                TraceOp::Rebind { .. } => 5,
                TraceOp::Barrier { .. } => 6,
            };
            h[slot] += 1;
        }
        h
    }

    /// Total bytes covered by recorded write traps.
    pub fn written_bytes(&self) -> u64 {
        self.ops
            .iter()
            .flatten()
            .map(|op| match op {
                TraceOp::Write { data, .. } => data.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// The recorded configuration, as a base for replay overrides.
    pub fn recorded_cfg(&self) -> MidwayConfig {
        self.meta.cfg
    }
}

/// Records one application run and packages it as a trace.
///
/// # Panics
///
/// Panics if the simulation itself fails; verification failures are
/// reported in the outcome/meta instead.
pub fn record_app(kind: AppKind, cfg: MidwayConfig, scale: Scale) -> (AppOutcome, Trace) {
    let outcome = run_app(kind, cfg.record(true), scale);
    let trace = Trace::from_outcome(&outcome, scale);
    (outcome, trace)
}

/// Replays `trace` under `cfg`, rebuilding the system from the stored
/// blueprint. The application never runs: each processor just applies its
/// recorded operation stream, so a replay costs only the simulation.
///
/// With the recorded configuration this reproduces the original run bit
/// for bit; with a different backend, cost, or network model it evaluates
/// that design point against the recorded stream.
///
/// # Errors
///
/// Returns [`SimError`] if the simulation deadlocks or panics.
///
/// # Panics
///
/// Panics if `cfg.procs` differs from the number of recorded streams.
pub fn replay(trace: &Trace, cfg: MidwayConfig) -> Result<MidwayRun<()>, SimError> {
    replay_on(trace, cfg, &trace.blueprint.build())
}

/// Like [`replay`], but against a caller-built system description (e.g.
/// a blueprint with an overridden cache-line size).
///
/// # Errors
///
/// Returns [`SimError`] if the simulation deadlocks or panics.
///
/// # Panics
///
/// Panics if `cfg.procs` differs from the number of recorded streams.
pub fn replay_on(
    trace: &Trace,
    cfg: MidwayConfig,
    spec: &Arc<SystemSpec>,
) -> Result<MidwayRun<()>, SimError> {
    assert_eq!(
        cfg.procs,
        trace.ops.len(),
        "trace was recorded on {} processors",
        trace.ops.len()
    );
    let ops = &trace.ops;
    Midway::run(cfg, spec, |p: &mut Proc| {
        for op in &ops[p.id()] {
            p.apply_op(op);
        }
    })
}

/// The equivalence oracle: replays `trace` under its recorded
/// configuration and asserts the replay is bit-for-bit identical to the
/// recorded run — every per-processor Table 2 counter, the finish time
/// and the message count.
///
/// # Errors
///
/// Returns a description of the first divergence (or the simulation
/// error), which indicates either a corrupted trace or nondeterminism in
/// the simulator itself.
/// What [`verify_fault_replay`] measured while proving the reliable
/// channel masks an unreliable network.
#[derive(Clone, Debug)]
pub struct FaultCheck {
    /// Finish time of the fault-free baseline replay, in cycles.
    pub base_finish_cycles: u64,
    /// Finish time of the faulty replay, in cycles.
    pub faulty_finish_cycles: u64,
    /// Messages delivered in the faulty replay (frames, after drops).
    pub faulty_messages: u64,
    /// Total faults the plan injected across the cluster.
    pub faults_injected: u64,
    /// Cluster-wide reliable-channel totals of the faulty replay.
    pub link: LinkStats,
}

impl FaultCheck {
    /// Finish-time slowdown of the faulty replay over the baseline.
    pub fn slowdown(&self) -> f64 {
        self.faulty_finish_cycles as f64 / self.base_finish_cycles.max(1) as f64
    }
}

/// The fault-tolerance oracle. Proves, for one trace and one fault plan,
/// that the reliable delivery channel fully masks the injected faults:
///
/// 1. **Baseline**: replays the trace fault-free and asserts bit-for-bit
///    equivalence with the recording (the [`verify_replay`] oracle).
/// 2. **Determinism**: replays under `plan` twice and asserts the two
///    faulty runs agree exactly — finish time, message count, every
///    per-processor counter, every final-memory digest. Same seed, same
///    schedule, same run.
/// 3. **Convergence**: asserts the faulty replay reaches the same
///    per-processor final memory content (FNV-1a digests) as the
///    fault-free baseline, and that every processor still performed the
///    same application-level work (Table 2 counters match the baseline).
///
/// Step 3 requires the recorded workload to be *lock-order independent*:
/// barrier-partitioned or symmetric access patterns (sor, matrix, water)
/// where shifted message timing cannot change which processor's write
/// lands last on any shared word. Task-queue workloads (quicksort,
/// cholesky) are not — retransmission delays legitimately reorder lock
/// grants, and entry consistency allows every such order — so check them
/// with [`verify_fault_determinism`] instead and leave final-state
/// validation to the application's own verifier on a live run.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn verify_fault_replay(trace: &Trace, plan: FaultPlan) -> Result<FaultCheck, String> {
    fault_check(trace, plan, true)
}

/// The lenient tier of the fault-tolerance oracle: baseline equivalence
/// and faulty-replay determinism (steps 1–2 of [`verify_fault_replay`]),
/// without comparing the faulty run's final state to the baseline — for
/// workloads where lock-grant order, and with it the last writer of
/// contended words, legitimately shifts under retransmission timing.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn verify_fault_determinism(trace: &Trace, plan: FaultPlan) -> Result<FaultCheck, String> {
    fault_check(trace, plan, false)
}

fn fault_check(trace: &Trace, plan: FaultPlan, strict: bool) -> Result<FaultCheck, String> {
    let base = verify_replay(trace).map_err(|d| format!("fault-free baseline: {d}"))?;

    let cfg = trace.recorded_cfg().faults(plan);
    let a = replay(trace, cfg).map_err(|e| format!("faulty replay failed: {e}"))?;
    let b = replay(trace, cfg).map_err(|e| format!("faulty replay (rerun) failed: {e}"))?;
    if a.finish_time != b.finish_time || a.messages != b.messages {
        return Err(format!(
            "faulty replay is nondeterministic: finish {} vs {} cycles, {} vs {} messages",
            a.finish_time.cycles(),
            b.finish_time.cycles(),
            a.messages,
            b.messages
        ));
    }
    if a.counters != b.counters {
        return Err("faulty replay is nondeterministic: counters differ between reruns".into());
    }
    if a.store_digests != b.store_digests {
        return Err(
            "faulty replay is nondeterministic: memory digests differ between reruns".into(),
        );
    }

    if strict {
        for (p, (base_d, got_d)) in base.store_digests.iter().zip(&a.store_digests).enumerate() {
            if base_d != got_d {
                return Err(format!(
                    "faulty replay diverged: processor {p} final memory digest \
                     {got_d:#018x} != fault-free {base_d:#018x}"
                ));
            }
        }
        for (p, (base_c, got_c)) in base.counters.iter().zip(&a.counters).enumerate() {
            if base_c != got_c {
                return Err(format!(
                    "faulty replay diverged: processor {p} counters changed under faults: \
                     fault-free {base_c:?}, faulty {got_c:?}"
                ));
            }
        }
    }

    let faults_injected = a.reports.iter().map(|r| r.fault_stats.total()).sum();
    Ok(FaultCheck {
        base_finish_cycles: base.finish_time.cycles(),
        faulty_finish_cycles: a.finish_time.cycles(),
        faulty_messages: a.messages,
        faults_injected,
        link: a.link_totals(),
    })
}

/// What [`verify_crash_replay`] measured while proving that crashed
/// processors recover to the fault-free final state.
#[derive(Clone, Debug)]
pub struct CrashCheck {
    /// Finish time of the crash-free baseline replay, in cycles.
    pub base_finish_cycles: u64,
    /// Finish time of the crashed replay, in cycles.
    pub crashed_finish_cycles: u64,
    /// Crashes taken across the cluster.
    pub crashes: u64,
    /// Cycles the cluster spent down, summed over crashes.
    pub downtime_cycles: u64,
    /// Checkpoint images written across the cluster.
    pub checkpoints_written: u64,
    /// Bytes of checkpoint images written across the cluster.
    pub checkpoint_bytes: u64,
    /// Bytes appended to write-ahead logs across the cluster.
    pub wal_bytes_logged: u64,
    /// Bytes replayed from stable storage during recoveries.
    pub recovery_replay_bytes: u64,
    /// Cycles charged for state reconstruction during recoveries.
    pub recovery_cycles: u64,
    /// Messages fenced as stale (addressed to a pre-crash incarnation).
    pub fenced_messages: u64,
    /// Cluster-wide reliable-channel totals of the crashed replay.
    pub link: LinkStats,
}

impl CrashCheck {
    /// Finish-time slowdown of the crashed replay over the baseline.
    pub fn slowdown(&self) -> f64 {
        self.crashed_finish_cycles as f64 / self.base_finish_cycles.max(1) as f64
    }
}

/// The crash-fault-tolerance oracle. Proves, for one trace and one crash
/// plan, that checkpointed recovery fully masks processor failures:
///
/// 1. **Baseline**: replays the trace crash-free and asserts bit-for-bit
///    equivalence with the recording (the [`verify_replay`] oracle).
/// 2. **Determinism**: replays under `plan` twice and asserts the two
///    crashed runs agree exactly — finish time, message count, every
///    per-processor counter (including the recovery accounting), every
///    final-memory digest. Same plan, same schedule, same run.
/// 3. **Convergence**: asserts the crashed replay reaches the same
///    per-processor final memory content (FNV-1a digests) as the
///    crash-free baseline, and that every processor still performed the
///    same application-level work — Table 2 counters match the baseline
///    after [`Counters::sans_recovery`] zeroes the crash accounting,
///    which legitimately differs (the baseline never crashed).
///
/// Step 3 carries the same lock-order-independence caveat as
/// [`verify_fault_replay`]: use it for barrier-partitioned or symmetric
/// workloads (sor, matrix, water), and [`verify_crash_determinism`] for
/// task-queue workloads where recovery latency legitimately reorders lock
/// grants.
///
/// # Errors
///
/// Returns a description of the first violated property.
///
/// # Panics
///
/// Panics if `plan` schedules no crash — that is [`verify_fault_replay`]'s
/// job.
pub fn verify_crash_replay(trace: &Trace, plan: FaultPlan) -> Result<CrashCheck, String> {
    crash_check(trace, plan, None, true)
}

/// [`verify_crash_replay`] with an explicit checkpoint interval for the
/// crashed replays (the baseline keeps the recorded configuration — the
/// interval is part of what is being priced, not of what was recorded).
///
/// # Errors
///
/// Returns a description of the first violated property.
///
/// # Panics
///
/// Panics if `plan` schedules no crash.
pub fn verify_crash_replay_at(
    trace: &Trace,
    plan: FaultPlan,
    checkpoint_every: u32,
) -> Result<CrashCheck, String> {
    crash_check(trace, plan, Some(checkpoint_every), true)
}

/// The lenient tier of the crash-fault-tolerance oracle: baseline
/// equivalence and crashed-replay determinism (steps 1–2 of
/// [`verify_crash_replay`]) without comparing the crashed run's final
/// state to the baseline — for workloads where lock-grant order, and with
/// it the last writer of contended words, legitimately shifts while a
/// processor is down.
///
/// # Errors
///
/// Returns a description of the first violated property.
///
/// # Panics
///
/// Panics if `plan` schedules no crash.
pub fn verify_crash_determinism(trace: &Trace, plan: FaultPlan) -> Result<CrashCheck, String> {
    crash_check(trace, plan, None, false)
}

/// [`verify_crash_determinism`] with an explicit checkpoint interval for
/// the crashed replays.
///
/// # Errors
///
/// Returns a description of the first violated property.
///
/// # Panics
///
/// Panics if `plan` schedules no crash.
pub fn verify_crash_determinism_at(
    trace: &Trace,
    plan: FaultPlan,
    checkpoint_every: u32,
) -> Result<CrashCheck, String> {
    crash_check(trace, plan, Some(checkpoint_every), false)
}

fn crash_check(
    trace: &Trace,
    plan: FaultPlan,
    checkpoint_every: Option<u32>,
    strict: bool,
) -> Result<CrashCheck, String> {
    assert!(
        plan.has_crashes(),
        "crash oracle needs a plan with at least one scheduled crash"
    );
    let base = verify_replay(trace).map_err(|d| format!("crash-free baseline: {d}"))?;

    let mut cfg = trace.recorded_cfg().faults(plan);
    if let Some(k) = checkpoint_every {
        cfg.checkpoint_every = k;
    }
    let a = replay(trace, cfg).map_err(|e| format!("crashed replay failed: {e}"))?;
    let b = replay(trace, cfg).map_err(|e| format!("crashed replay (rerun) failed: {e}"))?;
    if a.finish_time != b.finish_time || a.messages != b.messages {
        return Err(format!(
            "crashed replay is nondeterministic: finish {} vs {} cycles, {} vs {} messages",
            a.finish_time.cycles(),
            b.finish_time.cycles(),
            a.messages,
            b.messages
        ));
    }
    if a.counters != b.counters {
        return Err("crashed replay is nondeterministic: counters differ between reruns".into());
    }
    if a.store_digests != b.store_digests {
        return Err(
            "crashed replay is nondeterministic: memory digests differ between reruns".into(),
        );
    }

    let total: Counters = {
        let mut t = Counters::default();
        for c in &a.counters {
            t.add(c);
        }
        t
    };
    if total.crashes != plan.crashes().len() as u64 {
        return Err(format!(
            "crash schedule was not honoured: planned {} crashes, counted {}",
            plan.crashes().len(),
            total.crashes
        ));
    }

    if strict {
        for (p, (base_d, got_d)) in base.store_digests.iter().zip(&a.store_digests).enumerate() {
            if base_d != got_d {
                return Err(format!(
                    "crashed replay diverged: processor {p} final memory digest \
                     {got_d:#018x} != crash-free {base_d:#018x}"
                ));
            }
        }
        for (p, (base_c, got_c)) in base.counters.iter().zip(&a.counters).enumerate() {
            // Both sides normalized: the baseline may itself checkpoint
            // (the interval rides in the recorded configuration), and the
            // crashed run adds recovery accounting on top.
            let want = base_c.sans_recovery();
            let got = got_c.sans_recovery();
            if want != got {
                return Err(format!(
                    "crashed replay diverged: processor {p} counters changed under crashes \
                     (recovery accounting excluded): crash-free {want:?}, crashed {got:?}"
                ));
            }
        }
    }

    Ok(CrashCheck {
        base_finish_cycles: base.finish_time.cycles(),
        crashed_finish_cycles: a.finish_time.cycles(),
        crashes: total.crashes,
        downtime_cycles: total.downtime_cycles,
        checkpoints_written: total.checkpoints_written,
        checkpoint_bytes: total.checkpoint_bytes,
        wal_bytes_logged: total.wal_bytes_logged,
        recovery_replay_bytes: total.recovery_replay_bytes,
        recovery_cycles: total.recovery_cycles,
        fenced_messages: total.fenced_messages,
        link: a.link_totals(),
    })
}

pub fn verify_replay(trace: &Trace) -> Result<MidwayRun<()>, String> {
    let run = replay(trace, trace.recorded_cfg()).map_err(|e| format!("replay failed: {e}"))?;
    check_meta(&run, &trace.meta)?;
    Ok(run)
}

/// What [`verify_real_trace`] measured while cross-validating a
/// real-transport run against the simulator.
#[derive(Clone, Debug)]
pub struct RealCheck {
    /// Finish "cycles" of the real run (wall-clock derived; comparable to
    /// nothing but itself).
    pub real_finish_cycles: u64,
    /// Finish time of the simulator replay, in virtual cycles.
    pub sim_finish_cycles: u64,
    /// Messages delivered in the real run.
    pub real_messages: u64,
    /// Messages delivered in the simulator replay.
    pub sim_messages: u64,
    /// Operations replayed across all processors.
    pub total_ops: usize,
    /// Whether final-memory digests were compared (strict mode).
    pub digests_checked: bool,
}

/// The real-transport oracle: cross-validates a run recorded over real
/// sockets against the deterministic simulator.
///
/// The trace's operation streams were captured on the real transport
/// (threads, TCP/UDP, wall-clock time). This oracle replays those streams
/// through the full simulated protocol machinery and asserts:
///
/// 1. **Determinism**: two simulator replays agree exactly — finish time,
///    message count, every per-processor counter and memory digest. (A
///    divergence here indicates simulator nondeterminism, not a transport
///    bug.)
/// 2. **Convergence** (`strict` only): the simulator reaches the same
///    per-processor final memory content (FNV-1a digests) as the real run
///    — `real_digests`, from the real run's
///    [`MidwayRun::store_digests`](midway_core::MidwayRun::store_digests).
///    Two completely different executions of the protocol — virtual time
///    vs. wall clock, in-order simulated delivery vs. kernel sockets —
///    must agree on every byte of shared memory.
///
/// Unlike [`verify_replay`], recorded finish times, message counts and
/// counters are *not* compared against the replay: the trace header holds
/// the real run's wall-clock-derived values, and message timing (hence
/// grant batching, update coalescing, and the counters derived from them)
/// legitimately differs between a kernel scheduler and the virtual-time
/// model. Final memory is the invariant; use `strict` only for
/// lock-order-independent workloads
/// ([`AppKind::lock_order_independent`](midway_apps::AppKind)), where no
/// arbitration order can change which write lands last on a shared word.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn verify_real_trace(
    trace: &Trace,
    real_digests: &[u64],
    strict: bool,
) -> Result<RealCheck, String> {
    let cfg = trace.recorded_cfg();
    let a = replay(trace, cfg).map_err(|e| format!("simulator replay failed: {e}"))?;
    let b = replay(trace, cfg).map_err(|e| format!("simulator replay (rerun) failed: {e}"))?;
    if a.finish_time != b.finish_time || a.messages != b.messages {
        return Err(format!(
            "simulator replay is nondeterministic: finish {} vs {} cycles, {} vs {} messages",
            a.finish_time.cycles(),
            b.finish_time.cycles(),
            a.messages,
            b.messages
        ));
    }
    if a.counters != b.counters {
        return Err("simulator replay is nondeterministic: counters differ between reruns".into());
    }
    if a.store_digests != b.store_digests {
        return Err(
            "simulator replay is nondeterministic: memory digests differ between reruns".into(),
        );
    }

    if real_digests.len() != a.store_digests.len() {
        return Err(format!(
            "digest count mismatch: real run reported {} processors, replay has {}",
            real_digests.len(),
            a.store_digests.len()
        ));
    }
    if strict {
        for (p, (real_d, sim_d)) in real_digests.iter().zip(&a.store_digests).enumerate() {
            if real_d != sim_d {
                return Err(format!(
                    "real run diverged from the simulator: processor {p} final memory \
                     digest {real_d:#018x} (real) != {sim_d:#018x} (simulated)"
                ));
            }
        }
    }

    Ok(RealCheck {
        real_finish_cycles: trace.meta.finish_cycles,
        sim_finish_cycles: a.finish_time.cycles(),
        real_messages: trace.meta.messages,
        sim_messages: a.messages,
        total_ops: trace.total_ops(),
        digests_checked: strict,
    })
}

/// Replays `trace` under its recorded configuration with the dynamic
/// entry-consistency checker attached, and asserts the checked replay is
/// still bit-for-bit identical to the recording — the checker's off-clock
/// guarantee, exercised against a real recorded run. The returned run's
/// [`MidwayRun::check`](midway_core::MidwayRun::check) holds the report.
///
/// Traces record shared *writes* and synchronization but not reads (reads
/// are local and free under entry consistency), so a trace-driven check
/// covers the write and synchronization rules only; run live with
/// [`MidwayConfig::check`] for read coverage.
///
/// # Errors
///
/// Returns a description of the first divergence from the recorded
/// baseline, or the simulation error.
pub fn racecheck_replay(trace: &Trace) -> Result<MidwayRun<()>, String> {
    let run = replay(trace, trace.recorded_cfg().check(true))
        .map_err(|e| format!("checked replay failed: {e}"))?;
    check_meta(&run, &trace.meta)?;
    Ok(run)
}

/// Asserts a replay is bit-for-bit identical to the recorded baseline.
fn check_meta(run: &MidwayRun<()>, m: &TraceMeta) -> Result<(), String> {
    if run.finish_time.cycles() != m.finish_cycles {
        return Err(format!(
            "finish time diverged: recorded {} cycles, replayed {}",
            m.finish_cycles,
            run.finish_time.cycles()
        ));
    }
    if run.messages != m.messages {
        return Err(format!(
            "message count diverged: recorded {}, replayed {}",
            m.messages, run.messages
        ));
    }
    for (p, (rec, got)) in m.counters.iter().zip(&run.counters).enumerate() {
        if rec != got {
            return Err(format!(
                "counters diverged on processor {p}: recorded {rec:?}, replayed {got:?}"
            ));
        }
    }
    Ok(())
}
