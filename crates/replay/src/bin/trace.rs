//! The `trace` command-line tool: record, inspect, replay and compare
//! Midway traces.
//!
//! ```text
//! trace record --app sor [--backend rt] [--scale small] [--procs 8] [--out FILE]
//! trace replay FILE [--backend rt|vm|blast|twinall|hybrid] [--fault-us N] [--check]
//! trace racecheck FILE
//! trace info FILE
//! trace diff A B
//! trace sweep FILE [--points N] [--live]
//! ```
//!
//! `sweep` runs the Figure 3/4 page-fault-cost sweep from one trace,
//! and with `--live` also re-executes the application at every sweep
//! point to measure the wall-clock advantage of replaying. `racecheck`
//! replays a trace bit-for-bit with the dynamic entry-consistency
//! checker attached and reports its findings (write and synchronization
//! rules only — reads are local and never recorded).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use midway_apps::{run_app, AppKind, Scale};
use midway_core::{report, BackendKind, Counters, FaultPlan, MidwayConfig, MidwayRun};
use midway_replay::{
    racecheck_replay, record_app, replay, verify_crash_determinism, verify_crash_determinism_at,
    verify_crash_replay, verify_crash_replay_at, verify_fault_determinism, verify_fault_replay,
    verify_replay, Trace,
};
use midway_stats::{FaultSweep, TextTable};

const USAGE: &str = "usage:
  trace record --app <water|quicksort|matrix|sor|cholesky|all>
               [--backend rt|vm|blast|twinall|hybrid|none] [--scale paper|medium|small]
               [--procs N] [--out FILE]
  trace replay <FILE> [--backend rt|vm|blast|twinall|hybrid] [--fault-us N] [--check]
               [--loss PPM] [--dup PPM] [--reorder PPM] [--delay PPM] [--fault-seed N]
  trace faultcheck <FILE> [--loss PPM] [--dup PPM] [--reorder PPM] [--delay PPM]
               [--fault-seed N] [--lenient]
  trace crashcheck <FILE> [--crash-proc N] [--at CYCLES] [--down CYCLES]
               [--interval BOUNDARIES] [--lenient]
  trace racecheck <FILE>
  trace info   <FILE>
  trace diff   <A> <B>
  trace sweep  <FILE> [--points N] [--live]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("faultcheck") => cmd_faultcheck(&args[1..]),
        Some("crashcheck") => cmd_crashcheck(&args[1..]),
        Some("racecheck") => cmd_racecheck(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn value(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} needs a value")),
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positional(args: &[String]) -> Vec<&String> {
    // Skip flags and their values; every flag of this tool except the
    // bare ones takes a value.
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--check" || args[i] == "--live" || args[i] == "--lenient" {
            i += 1;
        } else if args[i].starts_with("--") {
            i += 2;
        } else {
            out.push(&args[i]);
            i += 1;
        }
    }
    out
}

fn ppm_value(args: &[String], name: &str) -> Result<Option<u32>, String> {
    value(args, name)?
        .map(|s| {
            s.parse()
                .map_err(|_| format!("{name} takes a rate in parts per million"))
        })
        .transpose()
}

/// Builds the fault plan the `--loss`/`--dup`/`--reorder`/`--delay`/
/// `--fault-seed` flags describe; `None` when no fault flag was given.
/// `--loss` is shorthand for `--drop`.
fn fault_plan_from_args(args: &[String]) -> Result<Option<FaultPlan>, String> {
    let drop = ppm_value(args, "--loss")?.or(ppm_value(args, "--drop")?);
    let dup = ppm_value(args, "--dup")?;
    let reorder = ppm_value(args, "--reorder")?;
    let delay = ppm_value(args, "--delay")?;
    let seed = value(args, "--fault-seed")?
        .map(|s| {
            s.parse()
                .map_err(|_| "--fault-seed takes a number".to_string())
        })
        .transpose()?;
    if drop.is_none() && dup.is_none() && reorder.is_none() && delay.is_none() && seed.is_none() {
        return Ok(None);
    }
    Ok(Some(
        FaultPlan::seeded(seed.unwrap_or(1))
            .drop_ppm(drop.unwrap_or(0))
            .dup_ppm(dup.unwrap_or(0))
            .reorder_ppm(reorder.unwrap_or(0))
            .delay_ppm(delay.unwrap_or(0)),
    ))
}

fn parse_app(s: &str) -> Result<AppKind, String> {
    AppKind::every()
        .into_iter()
        .find(|k| k.label() == s)
        .ok_or_else(|| {
            format!(
                "unknown app {s:?} (use water|quicksort|matrix|sor|cholesky|\
                 kvstore|socialgraph|taskqueue)"
            )
        })
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "paper" => Ok(Scale::Paper),
        "medium" => Ok(Scale::Medium),
        "small" => Ok(Scale::Small),
        "dc" => Ok(Scale::Datacenter),
        _ => Err(format!("unknown scale {s:?} (use paper|medium|small|dc)")),
    }
}

fn load(path: &str) -> Result<Trace, String> {
    Trace::load(path).map_err(|e| format!("{path}: {e}"))
}

fn summarize(run: &MidwayRun<()>, cfg: &MidwayConfig) {
    let avg = Counters::average(&run.counters);
    println!("backend:      {}", cfg.backend.label());
    println!("exec time:    {:.3} s (simulated)", run.exec_secs());
    println!("messages:     {}", run.messages);
    println!("data moved:   {:.2} MB cluster-wide", run.data_mb_total());
    println!(
        "trapping:     {:.1} ms/proc, collection {:.1} ms/proc",
        report::trapping_millis(cfg.backend, &avg, &cfg.cost),
        report::collection_millis(cfg.backend, &avg, &cfg.cost).total()
    );
    if cfg.faults.enabled {
        let link = run.link_totals();
        let injected: u64 = run.reports.iter().map(|r| r.fault_stats.total()).sum();
        println!(
            "reliability:  {injected} faults injected, {} retransmits, {} acks, \
             {} dup frames dropped",
            link.retransmits, link.acks_sent, link.dup_frames_dropped
        );
    }
}

fn cmd_record(args: &[String]) -> Result<ExitCode, String> {
    let apps = match value(args, "--app")?.as_deref() {
        Some("all") => AppKind::all().to_vec(),
        Some("service") => AppKind::service().to_vec(),
        Some(s) => vec![parse_app(s)?],
        None => return Err("record needs --app (or --app all|service)".to_string()),
    };
    let backend = value(args, "--backend")?
        .as_deref()
        .map(BackendKind::from_cli_name)
        .transpose()?
        .unwrap_or(BackendKind::Rt);
    let scale = value(args, "--scale")?
        .as_deref()
        .map(parse_scale)
        .transpose()?
        .unwrap_or(Scale::Small);
    let procs: usize = value(args, "--procs")?
        .map(|s| s.parse().map_err(|_| "--procs takes a number".to_string()))
        .transpose()?
        .unwrap_or(8);
    let out = value(args, "--out")?;
    if out.is_some() && apps.len() > 1 {
        return Err("--out only makes sense with a single --app".to_string());
    }
    for app in apps {
        let cfg = MidwayConfig::new(procs, backend);
        let t0 = Instant::now();
        let (outcome, trace) = record_app(app, cfg, scale);
        if !outcome.verified {
            return Err(format!("{} failed verification; not saving", app.label()));
        }
        let path = out.clone().map(PathBuf::from).unwrap_or_else(|| {
            PathBuf::from(format!(
                "results/traces/{}-{}-{}p-{}.mwt",
                app.label(),
                scale.label(),
                procs,
                backend.cli_name()
            ))
        });
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        trace
            .save(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "{}: {} ops, {} written bytes, recorded in {:.1}s -> {}",
            app.label(),
            trace.total_ops(),
            trace.written_bytes(),
            t0.elapsed().as_secs_f64(),
            path.display()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err("replay takes exactly one trace file".to_string());
    };
    let trace = load(path)?;
    let mut cfg = trace.recorded_cfg();
    let mut exact = true;
    if let Some(b) = value(args, "--backend")? {
        cfg.backend = BackendKind::from_cli_name(&b)?;
        exact = cfg.backend == trace.meta.cfg.backend;
    }
    if let Some(us) = value(args, "--fault-us")? {
        let us: f64 = us
            .parse()
            .map_err(|_| "--fault-us takes a number".to_string())?;
        cfg.cost = cfg.cost.with_fault_micros(us);
        exact = false;
    }
    if let Some(plan) = fault_plan_from_args(args)? {
        cfg.faults = plan;
        exact = false;
    }
    let t0 = Instant::now();
    let run = if exact {
        // Identical configuration: always run the equivalence oracle.
        verify_replay(&trace).map_err(|d| format!("replay diverged from recording: {d}"))?
    } else {
        if flag(args, "--check") {
            return Err("--check requires the recorded configuration (no overrides)".to_string());
        }
        replay(&trace, cfg).map_err(|e| format!("replay failed: {e}"))?
    };
    let host = t0.elapsed().as_secs_f64();
    summarize(&run, &cfg);
    println!("replayed in:  {host:.2} s host time");
    if exact {
        println!("equivalence:  bit-for-bit identical to the recorded run");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_faultcheck(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err("faultcheck takes exactly one trace file".to_string());
    };
    let trace = load(path)?;
    // Default plan: 1% loss, seed 1 — overridable by the fault flags.
    let plan = fault_plan_from_args(args)?.unwrap_or_else(|| FaultPlan::lossy(1, 10_000));
    println!(
        "== fault-tolerance check: {} ({} on {}) ==",
        path,
        trace.meta.app,
        trace.meta.cfg.backend.label()
    );
    println!(
        "plan:         seed {}, drop {} dup {} reorder {} delay {} (ppm)",
        plan.seed, plan.drop_ppm, plan.dup_ppm, plan.reorder_ppm, plan.delay_ppm
    );
    let lenient = flag(args, "--lenient");
    let t0 = Instant::now();
    let check = if lenient {
        verify_fault_determinism(&trace, plan)?
    } else {
        verify_fault_replay(&trace, plan)?
    };
    println!("baseline:     bit-for-bit identical to the recorded run");
    println!(
        "faulty:       deterministic across reruns; {} faults injected, \
         {} retransmits, {} acks",
        check.faults_injected, check.link.retransmits, check.link.acks_sent
    );
    if lenient {
        println!(
            "convergence:  skipped (--lenient: lock-order-dependent workload); \
             {:.2}x finish-time slowdown",
            check.slowdown()
        );
    } else {
        println!(
            "convergence:  final memory and counters match the fault-free run \
             ({:.2}x finish-time slowdown)",
            check.slowdown()
        );
    }
    println!(
        "checked in:   {:.2} s host time",
        t0.elapsed().as_secs_f64()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_crashcheck(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err("crashcheck takes exactly one trace file".to_string());
    };
    let trace = load(path)?;
    let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
        value(args, name)?
            .map(|s| {
                s.parse::<u64>()
                    .map_err(|_| format!("{name} takes a cycle count"))
            })
            .transpose()
    };
    // Defaults scale with the recorded run so the crash always lands
    // mid-computation: fail at a third of the run, stay down for 5%.
    let proc = match value(args, "--crash-proc")? {
        Some(s) => s
            .parse::<usize>()
            .map_err(|_| "--crash-proc takes a processor id".to_string())?,
        None => 1 % trace.meta.cfg.procs,
    };
    let at = parse_u64("--at")?.unwrap_or(trace.meta.finish_cycles / 3);
    let down = parse_u64("--down")?.unwrap_or(trace.meta.finish_cycles / 20);
    let mut plan = FaultPlan::none().with_crash(proc, at, down);
    if let Some(base) = fault_plan_from_args(args)? {
        plan.seed = base.seed;
        plan.drop_ppm = base.drop_ppm;
        plan.dup_ppm = base.dup_ppm;
        plan.reorder_ppm = base.reorder_ppm;
        plan.delay_ppm = base.delay_ppm;
    }
    // The interval applies to the *crashed* replays only — the crash-free
    // baseline must stay bit-for-bit identical to the recording.
    let interval: Option<u32> = value(args, "--interval")?
        .map(|s| {
            s.parse()
                .map_err(|_| "--interval takes a boundary count".to_string())
        })
        .transpose()?;

    println!(
        "== crash-recovery check: {} ({} on {}) ==",
        path,
        trace.meta.app,
        trace.meta.cfg.backend.label()
    );
    let mut crashed_cfg = trace.meta.cfg.faults(plan);
    if let Some(k) = interval {
        crashed_cfg.checkpoint_every = k;
    }
    println!(
        "plan:         processor {proc} crashes at cycle {at}, down {down} cycles \
         (checkpoint every {} boundaries)",
        crashed_cfg
            .effective_checkpoint_every()
            .expect("crash plans imply checkpointing")
    );
    let lenient = flag(args, "--lenient");
    let t0 = Instant::now();
    let check = match (lenient, interval) {
        (false, None) => verify_crash_replay(&trace, plan)?,
        (false, Some(k)) => verify_crash_replay_at(&trace, plan, k)?,
        (true, None) => verify_crash_determinism(&trace, plan)?,
        (true, Some(k)) => verify_crash_determinism_at(&trace, plan, k)?,
    };
    println!("baseline:     bit-for-bit identical to the recorded run");
    println!(
        "crashed:      deterministic across reruns; {} crash(es) taken, {} cycles down, \
         {} messages fenced",
        check.crashes, check.downtime_cycles, check.fenced_messages
    );
    println!(
        "recovery:     {} checkpoints ({} KB) + {} KB WAL; replayed {} KB in {} cycles",
        check.checkpoints_written,
        check.checkpoint_bytes / 1024,
        check.wal_bytes_logged / 1024,
        check.recovery_replay_bytes / 1024,
        check.recovery_cycles
    );
    if lenient {
        println!(
            "convergence:  skipped (--lenient: lock-order-dependent workload); \
             {:.2}x finish-time slowdown",
            check.slowdown()
        );
    } else {
        println!(
            "convergence:  final memory and counters match the crash-free run \
             ({:.2}x finish-time slowdown)",
            check.slowdown()
        );
    }
    println!(
        "checked in:   {:.2} s host time",
        t0.elapsed().as_secs_f64()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_racecheck(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err("racecheck takes exactly one trace file".to_string());
    };
    let trace = load(path)?;
    println!(
        "== race check: {} ({} on {}) ==",
        path,
        trace.meta.app,
        trace.meta.cfg.backend.label()
    );
    let t0 = Instant::now();
    let run =
        racecheck_replay(&trace).map_err(|d| format!("replay diverged from recording: {d}"))?;
    let report = run.check.expect("racecheck_replay enables checking");
    println!("equivalence:  bit-for-bit identical to the recorded run");
    let applies: u64 = report.applies.iter().map(|a| a.count).sum();
    let apply_bytes: u64 = report.applies.iter().map(|a| a.bytes).sum();
    println!(
        "events:       {} checked, {applies} update applications ({apply_bytes} bytes)",
        report.events
    );
    println!(
        "checked in:   {:.2} s host time",
        t0.elapsed().as_secs_f64()
    );
    if report.is_clean() {
        println!("findings:     none");
        return Ok(ExitCode::SUCCESS);
    }
    println!("findings:     {}", report.summary());
    for f in &report.findings {
        println!("  {f}");
    }
    Ok(ExitCode::FAILURE)
}

fn cmd_info(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err("info takes exactly one trace file".to_string());
    };
    let trace = load(path)?;
    let m = &trace.meta;
    println!("app:          {} ({} scale)", m.app, m.scale);
    println!(
        "recorded on:  {} procs, {} backend, verified: {}",
        m.cfg.procs,
        m.cfg.backend.label(),
        m.verified
    );
    println!(
        "finish time:  {} cycles ({:.3} s simulated)",
        m.finish_cycles,
        m.cfg.cost.cycles_to_millis(m.finish_cycles) / 1000.0
    );
    println!("messages:     {}", m.messages);
    let [work, idle, write, acquire, release, rebind, barrier] = trace.op_histogram();
    println!(
        "ops:          {} total (work {work}, idle {idle}, write {write}, acquire {acquire}, \
         release {release}, rebind {rebind}, barrier {barrier})",
        trace.total_ops()
    );
    println!("bytes traced: {} written", trace.written_bytes());
    println!("allocations:  {}", trace.blueprint.allocs.len());
    println!(
        "sync objects: {} locks, {} barriers",
        trace.blueprint.locks.len(),
        trace.blueprint.barriers.len()
    );
    let mut t = TextTable::new(&["proc", "ops", "written bytes"]);
    for (p, ops) in trace.ops.iter().enumerate() {
        let bytes: u64 = ops
            .iter()
            .map(|op| match op {
                midway_core::TraceOp::Write { data, .. } => data.len() as u64,
                _ => 0,
            })
            .sum();
        t.row(&[p.to_string(), ops.len().to_string(), bytes.to_string()]);
    }
    println!("\n{t}");
    if !trace.blueprint.locks.is_empty() {
        let mut acquires = vec![0u64; trace.blueprint.locks.len()];
        let mut rebinds = vec![0u64; trace.blueprint.locks.len()];
        for op in trace.ops.iter().flatten() {
            match op {
                midway_core::TraceOp::Acquire { lock, .. } => acquires[*lock as usize] += 1,
                midway_core::TraceOp::Rebind { lock, .. } => rebinds[*lock as usize] += 1,
                _ => {}
            }
        }
        let nlocks = trace.blueprint.locks.len();
        let mut active: Vec<usize> = (0..nlocks)
            .filter(|&l| acquires[l] + rebinds[l] > 0)
            .collect();
        let rebound = active.iter().filter(|&&l| rebinds[l] > 0).count();
        println!(
            "lock bindings: {nlocks} locks: {} acquired, {rebound} rebound, {} never used; \
             {} acquires and {} rebinds in total",
            active.len(),
            nlocks - active.len(),
            acquires.iter().sum::<u64>(),
            rebinds.iter().sum::<u64>(),
        );
        const SHOWN: usize = 12;
        active.sort_by_key(|&l| std::cmp::Reverse((acquires[l], rebinds[l])));
        let mut t = TextTable::new(&[
            "lock",
            "initial ranges",
            "bound bytes",
            "acquires",
            "rebinds",
        ]);
        for &l in active.iter().take(SHOWN) {
            let ranges = &trace.blueprint.locks[l];
            let bytes: u64 = ranges.iter().map(|r| r.end - r.start).sum();
            t.row(&[
                l.to_string(),
                ranges.len().to_string(),
                bytes.to_string(),
                acquires[l].to_string(),
                rebinds[l].to_string(),
            ]);
        }
        println!("{t}");
        if active.len() > SHOWN {
            println!("({} more active locks not shown)", active.len() - SHOWN);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [a_path, b_path] = pos.as_slice() else {
        return Err("diff takes exactly two trace files".to_string());
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    if a == b {
        println!("traces are identical");
        return Ok(ExitCode::SUCCESS);
    }
    if a.meta != b.meta {
        let (ma, mb) = (&a.meta, &b.meta);
        for (what, va, vb) in [
            ("app", ma.app.clone(), mb.app.clone()),
            ("scale", ma.scale.clone(), mb.scale.clone()),
            ("procs", ma.cfg.procs.to_string(), mb.cfg.procs.to_string()),
            (
                "backend",
                ma.cfg.backend.label().to_string(),
                mb.cfg.backend.label().to_string(),
            ),
            (
                "finish cycles",
                ma.finish_cycles.to_string(),
                mb.finish_cycles.to_string(),
            ),
            ("messages", ma.messages.to_string(), mb.messages.to_string()),
        ] {
            if va != vb {
                println!("meta.{what}: {va} != {vb}");
            }
        }
        if ma.counters != mb.counters {
            for (p, (ca, cb)) in ma.counters.iter().zip(&mb.counters).enumerate() {
                if ca != cb {
                    println!("meta.counters[{p}] differ: {ca:?} != {cb:?}");
                    break;
                }
            }
        }
    }
    if a.blueprint != b.blueprint {
        println!("blueprints differ");
    }
    if a.ops.len() != b.ops.len() {
        println!("proc counts differ: {} != {}", a.ops.len(), b.ops.len());
    } else {
        for (p, (oa, ob)) in a.ops.iter().zip(&b.ops).enumerate() {
            if oa == ob {
                continue;
            }
            let i = oa.iter().zip(ob).take_while(|(x, y)| x == y).count();
            println!(
                "proc {p}: first divergence at op {i}/{} vs {}:",
                oa.len(),
                ob.len()
            );
            println!("  a: {:?}", oa.get(i));
            println!("  b: {:?}", ob.get(i));
        }
    }
    Ok(ExitCode::FAILURE)
}

fn cmd_sweep(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err("sweep takes exactly one trace file".to_string());
    };
    let trace = load(path)?;
    let points: usize = value(args, "--points")?
        .map(|s| s.parse().map_err(|_| "--points takes a number".to_string()))
        .transpose()?
        .unwrap_or(7);
    let backend = value(args, "--backend")?
        .as_deref()
        .map(BackendKind::from_cli_name)
        .transpose()?
        .unwrap_or(trace.meta.cfg.backend);
    let models = FaultSweep::paper(points).models(trace.recorded_cfg().cost);
    println!(
        "== page-fault-cost sweep from {} ({} on {}) ==\n",
        path,
        trace.meta.app,
        backend.label()
    );

    // Invocation counts do not depend on the fault cost (the premise of
    // the paper's Figures 3 and 4), so the whole sweep derives from ONE
    // replay under the target backend: each point reprices that replay's
    // counters under its cost model.
    let t0 = Instant::now();
    let run = if backend == trace.meta.cfg.backend {
        verify_replay(&trace).map_err(|d| format!("replay diverged from recording: {d}"))?
    } else {
        let mut cfg = trace.recorded_cfg();
        cfg.backend = backend;
        replay(&trace, cfg).map_err(|e| format!("replay failed: {e}"))?
    };
    let replay_secs = t0.elapsed().as_secs_f64();
    let avg = Counters::average(&run.counters);

    let mut t = TextTable::new(&["fault (us)", "trap (ms)", "collect (ms)", "total (ms)"]);
    for m in &models {
        let trap = report::trapping_millis(backend, &avg, m);
        let collect = report::collection_millis(backend, &avg, m).total();
        t.row(&[
            format!("{:.0}", m.fault_micros()),
            format!("{trap:.1}"),
            format!("{collect:.1}"),
            format!("{:.1}", trap + collect),
        ]);
    }
    println!("{t}");
    println!("{points} sweep points derived from one replay in {replay_secs:.2} s host time");

    if flag(args, "--live") {
        let app = parse_app(&trace.meta.app).map_err(|_| {
            format!(
                "--live: trace app {:?} is not a named application",
                trace.meta.app
            )
        })?;
        let scale = parse_scale(&trace.meta.scale)?;
        let t1 = Instant::now();
        for m in &models {
            let mut cfg = trace.recorded_cfg().cost(*m);
            cfg.backend = backend;
            let out = run_app(app, cfg, scale);
            assert!(out.verified, "live run failed verification");
        }
        let live_secs = t1.elapsed().as_secs_f64();
        println!(
            "re-executing the application at each of the {points} points took \
             {live_secs:.2} s host time ({:.1}x slower than the trace-driven sweep)",
            live_secs / replay_secs.max(1e-9)
        );
    }
    Ok(ExitCode::SUCCESS)
}
