//! Round-trip property tests for the binary trace format, driven by the
//! internal [`SplitMix64`] generator (std-only; the workspace builds
//! offline). Every case derives from a fixed seed and is exactly
//! reproducible.

use midway_core::{
    AllocSpec, BackendKind, BarrierSpec, Counters, FaultPlan, MidwayConfig, ReliableParams,
    SpecBlueprint, TraceOp,
};
use midway_replay::{Trace, TraceError, TraceMeta};
use midway_sim::SplitMix64;

fn random_ranges(rng: &mut SplitMix64) -> Vec<std::ops::Range<u64>> {
    let n = rng.next_below(4);
    (0..n)
        .map(|_| {
            let start = rng.next_below(1 << 23);
            start..start + 1 + rng.next_below(4096)
        })
        .collect()
}

fn random_op(rng: &mut SplitMix64) -> TraceOp {
    match rng.next_below(7) {
        0 => TraceOp::Work {
            cycles: rng.next_u64() >> rng.next_below(64),
        },
        1 => TraceOp::Idle {
            cycles: rng.next_below(1 << 20),
        },
        2 => {
            let len = 1 + rng.next_below(64) as usize;
            TraceOp::Write {
                addr: rng.next_below(1 << 23),
                data: (0..len).map(|_| rng.next_below(256) as u8).collect(),
            }
        }
        3 => TraceOp::Acquire {
            lock: rng.next_below(8) as u32,
            exclusive: rng.next_below(2) == 1,
        },
        4 => TraceOp::Release {
            lock: rng.next_below(8) as u32,
            exclusive: rng.next_below(2) == 1,
        },
        5 => TraceOp::Rebind {
            lock: rng.next_below(8) as u32,
            ranges: random_ranges(rng),
        },
        _ => TraceOp::Barrier {
            barrier: rng.next_below(4) as u32,
        },
    }
}

fn random_counters(rng: &mut SplitMix64) -> Counters {
    Counters {
        dirtybits_set: rng.next_u64() >> 32,
        dirtybits_misclassified: rng.next_below(1000),
        clean_dirtybits_read: rng.next_below(1000),
        dirty_dirtybits_read: rng.next_below(1000),
        dirtybits_updated: rng.next_below(1000),
        write_faults: rng.next_below(1000),
        pages_diffed: rng.next_below(1000),
        pages_write_protected: rng.next_below(1000),
        twin_bytes_updated: rng.next_below(1 << 30),
        data_bytes_sent: rng.next_u64() >> 16,
        data_bytes_received: rng.next_u64() >> 16,
        redundant_bytes_received: rng.next_below(1 << 30),
        lock_acquires: rng.next_below(1000),
        lock_transfers_served: rng.next_below(1000),
        full_data_sends: rng.next_below(1000),
        barrier_waits: rng.next_below(1000),
        crashes: rng.next_below(8),
        downtime_cycles: rng.next_below(1 << 24),
        fenced_messages: rng.next_below(1000),
        checkpoints_written: rng.next_below(1000),
        checkpoint_bytes: rng.next_below(1 << 24),
        wal_bytes_logged: rng.next_below(1 << 24),
        recovery_replay_bytes: rng.next_below(1 << 24),
        recovery_cycles: rng.next_below(1 << 24),
    }
}

/// A structurally random trace (metadata, blueprint and op streams drawn
/// at random; it need not describe a *runnable* system — the format must
/// round-trip it regardless).
fn random_trace(rng: &mut SplitMix64) -> Trace {
    let procs = 1 + rng.next_below(6) as usize;
    let backend = [
        BackendKind::Rt,
        BackendKind::Vm,
        BackendKind::Blast,
        BackendKind::TwinAll,
        BackendKind::None,
    ][rng.next_below(5) as usize];
    let mut cfg = MidwayConfig::new(procs, backend);
    cfg.history_cap = rng.next_below(4096) as usize;
    cfg.cost.page_write_fault = rng.next_below(1 << 20);
    cfg.cost.dirtybit_read_clean_us = rng.next_f64() * 100.0;
    cfg.net = cfg.net.scaled(1 + rng.next_below(8), 1 + rng.next_below(8));
    if rng.next_below(2) == 1 {
        // Version 3 header fields: a fault plan and channel tuning.
        cfg.faults = FaultPlan::seeded(rng.next_u64())
            .drop_ppm(rng.next_below(100_000) as u32)
            .dup_ppm(rng.next_below(100_000) as u32)
            .reorder_ppm(rng.next_below(100_000) as u32)
            .delay_ppm(rng.next_below(100_000) as u32);
        cfg.faults.enabled = rng.next_below(4) != 0;
        cfg.faults.max_delay_cycles = rng.next_below(1 << 20);
        cfg.faults.reorder_window_cycles = rng.next_below(1 << 16);
        cfg.reliable = ReliableParams {
            rto_cycles: 1 + rng.next_below(1 << 21),
            backoff_cap: rng.next_below(12) as u32,
            timer_cost_cycles: rng.next_below(1 << 12),
        };
    }
    if rng.next_below(2) == 1 {
        // Version 5 header fields: a crash plan and a checkpoint interval.
        for _ in 0..rng.next_below(4) {
            cfg.faults = cfg.faults.with_crash(
                rng.next_below(procs as u64) as usize,
                1 + rng.next_below(1 << 24),
                1 + rng.next_below(1 << 16),
            );
        }
        cfg.checkpoint_every = rng.next_below(32) as u32;
    }
    let allocs = (0..rng.next_below(5))
        .map(|i| AllocSpec {
            name: format!("a{i}"),
            addr: (i + 1) << 22,
            len: 1 + rng.next_below(1 << 16) as usize,
            private: rng.next_below(2) == 1,
            line_shift: 2 + rng.next_below(11) as u32,
        })
        .collect();
    let locks = (0..rng.next_below(4)).map(|_| random_ranges(rng)).collect();
    let barriers = (0..rng.next_below(3))
        .map(|_| BarrierSpec {
            ranges: random_ranges(rng),
            partitions: if rng.next_below(2) == 1 {
                Some((0..procs).map(|_| random_ranges(rng)).collect())
            } else {
                None
            },
        })
        .collect();
    let ops = (0..procs)
        .map(|_| {
            let n = rng.next_below(40) as usize;
            (0..n).map(|_| random_op(rng)).collect()
        })
        .collect();
    Trace {
        meta: TraceMeta {
            app: format!("app{}", rng.next_below(100)),
            scale: "small".to_string(),
            verified: rng.next_below(2) == 1,
            cfg,
            finish_cycles: rng.next_u64() >> rng.next_below(32),
            messages: rng.next_below(1 << 24),
            counters: (0..procs).map(|_| random_counters(rng)).collect(),
        },
        blueprint: SpecBlueprint {
            allocs,
            locks,
            barriers,
        },
        ops,
    }
}

/// decode(encode(t)) == t for arbitrary traces.
#[test]
fn encode_decode_round_trips() {
    let mut rng = SplitMix64::new(0x7ace_0001);
    for case in 0..128 {
        let trace = random_trace(&mut rng);
        let bytes = trace.encode();
        let back = Trace::decode(&bytes).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(back, trace, "case {case}");
    }
}

/// Any truncation of a valid file is rejected, never misread.
#[test]
fn truncation_is_rejected() {
    let mut rng = SplitMix64::new(0x7ace_0002);
    for _ in 0..16 {
        let trace = random_trace(&mut rng);
        let bytes = trace.encode();
        // Every prefix length, for small files; sampled, for larger ones.
        let step = (bytes.len() / 64).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            assert!(
                Trace::decode(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes was accepted",
                bytes.len()
            );
        }
    }
}

/// Any single corrupted byte is rejected by the checksum (FNV-1a steps
/// are injective in the running hash, so one flipped byte always changes
/// the final sum), and a corrupted footer is rejected too.
#[test]
fn corruption_is_rejected() {
    let mut rng = SplitMix64::new(0x7ace_0003);
    for _ in 0..16 {
        let trace = random_trace(&mut rng);
        let bytes = trace.encode();
        for _ in 0..32 {
            let mut bad = bytes.clone();
            let i = rng.next_below(bad.len() as u64) as usize;
            let flip = 1u8 << rng.next_below(8);
            bad[i] ^= flip;
            let expect = if i < 4 {
                // Magic bytes are checked before the checksum.
                TraceError::BadMagic
            } else {
                TraceError::BadChecksum
            };
            match Trace::decode(&bad) {
                Err(e) => assert_eq!(e, expect, "flipped byte {i}"),
                Ok(t) => panic!("corrupt file decoded successfully: byte {i}, {t:?}"),
            }
        }
    }
}

/// Unknown versions are rejected (preserving the checksum so the version
/// check itself is what fires).
#[test]
fn future_versions_are_rejected() {
    let mut rng = SplitMix64::new(0x7ace_0004);
    let trace = random_trace(&mut rng);
    let mut bytes = trace.encode();
    assert_eq!(
        u64::from(bytes[4]),
        midway_replay::VERSION,
        "version varint directly follows the magic"
    );
    bytes[4] = 99;
    let payload_len = bytes.len() - 8;
    let sum = {
        // Recompute FNV-1a 64 over the tampered payload.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &bytes[..payload_len] {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    };
    bytes[payload_len..].copy_from_slice(&sum.to_le_bytes());
    assert_eq!(Trace::decode(&bytes), Err(TraceError::BadVersion(99)));
}
