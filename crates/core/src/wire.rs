//! Byte-level encoding of [`NetMsg`] for the real transport.
//!
//! The simulator moves messages as in-memory values; sockets move bytes.
//! This module gives [`NetMsg`] (and everything it carries) a
//! [`Wire`] encoding: little-endian scalars, length-prefixed vectors, one
//! tag byte per enum variant. The encoding is exact — decoding an encoded
//! message reproduces it field for field, which the roundtrip tests below
//! pin down — so a protocol engine behind a socket sees the same values
//! one behind the simulator does.
//!
//! Note the encoded length is *not* [`DsmMsg::wire_size`]: that models the
//! paper machine's packet sizes and stays authoritative for accounting.
//! This encoding is merely how the bytes travel on the host.

use midway_net::{put_bytes, put_u32, put_u64, Wire, WireError, WireReader};
use midway_proto::{BarrierId, Binding, LockId, Mode, Update, UpdateItem, UpdateSet};

use crate::msg::{DsmMsg, GrantPayload, NetMsg};

fn encode_mode(mode: Mode, out: &mut Vec<u8>) {
    out.push(match mode {
        Mode::Exclusive => 0,
        Mode::Shared => 1,
    });
}

fn decode_mode(r: &mut WireReader) -> Result<Mode, WireError> {
    match r.u8("mode")? {
        0 => Ok(Mode::Exclusive),
        1 => Ok(Mode::Shared),
        t => Err(WireError(format!("unknown mode tag {t}"))),
    }
}

fn encode_binding(b: &Binding, out: &mut Vec<u8>) {
    put_u64(out, b.version());
    put_u32(out, b.ranges().len() as u32);
    for r in b.ranges() {
        put_u64(out, r.start);
        put_u64(out, r.end);
    }
}

fn decode_binding(r: &mut WireReader) -> Result<Binding, WireError> {
    let version = r.u64("binding version")?;
    let n = r.u32("binding range count")? as usize;
    let mut ranges = Vec::with_capacity(n);
    for _ in 0..n {
        let start = r.u64("range start")?;
        let end = r.u64("range end")?;
        ranges.push(start..end);
    }
    Ok(Binding::from_parts(ranges, version))
}

// `UpdateSet` and `Update` live in `midway-proto`, which does not know
// about the `Wire` trait; the orphan rule keeps the impls out, so they
// encode through free functions here.
fn encode_set(set: &UpdateSet, out: &mut Vec<u8>) {
    put_u32(out, set.items.len() as u32);
    for item in &set.items {
        put_u64(out, item.addr);
        put_u64(out, item.ts);
        put_bytes(out, &item.data);
    }
}

fn decode_set(r: &mut WireReader) -> Result<UpdateSet, WireError> {
    let n = r.u32("update count")? as usize;
    let mut items = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let addr = r.u64("update addr")?;
        let ts = r.u64("update ts")?;
        let data = r.bytes("update data")?;
        items.push(UpdateItem { addr, data, ts });
    }
    Ok(UpdateSet { items })
}

fn encode_update(u: &Update, out: &mut Vec<u8>) {
    put_u64(out, u.incarnation);
    out.push(u.full as u8);
    encode_set(&u.set, out);
}

fn decode_update(r: &mut WireReader) -> Result<Update, WireError> {
    let incarnation = r.u64("update incarnation")?;
    let full = r.u8("update full flag")? != 0;
    let set = decode_set(r)?;
    Ok(Update {
        incarnation,
        set,
        full,
    })
}

impl Wire for GrantPayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GrantPayload::Current => out.push(0),
            GrantPayload::Rt {
                set,
                consist_time,
                binding,
            } => {
                out.push(1);
                encode_set(set, out);
                put_u64(out, *consist_time);
                encode_binding(binding, out);
            }
            GrantPayload::Vm {
                updates,
                full,
                incarnation,
                binding,
            } => {
                out.push(2);
                put_u32(out, updates.len() as u32);
                for u in updates {
                    encode_update(u.as_ref(), out);
                }
                // Only the full snapshot's set travels: its incarnation is
                // the payload's `incarnation` field and its full flag is
                // implied, so the encoding matches the pre-`Arc` format.
                match full {
                    None => out.push(0),
                    Some(u) => {
                        out.push(1);
                        encode_set(&u.set, out);
                    }
                }
                put_u64(out, *incarnation);
                encode_binding(binding, out);
            }
            GrantPayload::Flat { set, binding } => {
                out.push(3);
                encode_set(set, out);
                encode_binding(binding, out);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<GrantPayload, WireError> {
        match r.u8("grant payload tag")? {
            0 => Ok(GrantPayload::Current),
            1 => {
                let set = decode_set(r)?;
                let consist_time = r.u64("consist time")?;
                let binding = decode_binding(r)?;
                Ok(GrantPayload::Rt {
                    set,
                    consist_time,
                    binding,
                })
            }
            2 => {
                let n = r.u32("vm update count")? as usize;
                let mut updates = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    updates.push(std::sync::Arc::new(decode_update(r)?));
                }
                let full_set = match r.u8("vm full flag")? {
                    0 => None,
                    1 => Some(decode_set(r)?),
                    t => return Err(WireError(format!("bad vm full flag {t}"))),
                };
                let incarnation = r.u64("vm incarnation")?;
                let binding = decode_binding(r)?;
                let full = full_set.map(|set| {
                    std::sync::Arc::new(Update {
                        incarnation,
                        set,
                        full: true,
                    })
                });
                Ok(GrantPayload::Vm {
                    updates,
                    full,
                    incarnation,
                    binding,
                })
            }
            3 => {
                let set = decode_set(r)?;
                let binding = decode_binding(r)?;
                Ok(GrantPayload::Flat { set, binding })
            }
            t => Err(WireError(format!("unknown grant payload tag {t}"))),
        }
    }
}

impl Wire for DsmMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DsmMsg::AcquireReq { lock, mode, seen } => {
                out.push(0);
                put_u32(out, lock.0);
                encode_mode(*mode, out);
                put_u64(out, seen.0);
                put_u64(out, seen.1);
            }
            DsmMsg::TransferReq {
                lock,
                requester,
                mode,
                seen,
            } => {
                out.push(1);
                put_u32(out, lock.0);
                put_u32(out, *requester as u32);
                encode_mode(*mode, out);
                put_u64(out, seen.0);
                put_u64(out, seen.1);
            }
            DsmMsg::Grant {
                lock,
                mode,
                payload,
            } => {
                out.push(2);
                put_u32(out, lock.0);
                encode_mode(*mode, out);
                payload.encode(out);
            }
            DsmMsg::ReleaseNotify { lock, mode } => {
                out.push(3);
                put_u32(out, lock.0);
                encode_mode(*mode, out);
            }
            DsmMsg::BarrierArrive { barrier, set, time } => {
                out.push(4);
                put_u32(out, barrier.0);
                put_u64(out, *time);
                encode_set(set, out);
            }
            DsmMsg::BarrierRelease { barrier, set, time } => {
                out.push(5);
                put_u32(out, barrier.0);
                put_u64(out, *time);
                encode_set(set, out);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<DsmMsg, WireError> {
        match r.u8("dsm tag")? {
            0 => Ok(DsmMsg::AcquireReq {
                lock: LockId(r.u32("lock")?),
                mode: decode_mode(r)?,
                seen: (r.u64("seen.0")?, r.u64("seen.1")?),
            }),
            1 => Ok(DsmMsg::TransferReq {
                lock: LockId(r.u32("lock")?),
                requester: r.u32("requester")? as usize,
                mode: decode_mode(r)?,
                seen: (r.u64("seen.0")?, r.u64("seen.1")?),
            }),
            2 => Ok(DsmMsg::Grant {
                lock: LockId(r.u32("lock")?),
                mode: decode_mode(r)?,
                payload: GrantPayload::decode(r)?,
            }),
            3 => Ok(DsmMsg::ReleaseNotify {
                lock: LockId(r.u32("lock")?),
                mode: decode_mode(r)?,
            }),
            4 => Ok(DsmMsg::BarrierArrive {
                barrier: BarrierId(r.u32("barrier")?),
                time: r.u64("time")?,
                set: decode_set(r)?,
            }),
            5 => Ok(DsmMsg::BarrierRelease {
                barrier: BarrierId(r.u32("barrier")?),
                time: r.u64("time")?,
                set: std::sync::Arc::new(decode_set(r)?),
            }),
            t => Err(WireError(format!("unknown dsm tag {t}"))),
        }
    }
}

impl Wire for NetMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            NetMsg::Raw(m) => {
                out.push(0);
                m.encode(out);
            }
            NetMsg::Data {
                seq,
                ack,
                epoch,
                msg,
            } => {
                out.push(1);
                put_u64(out, *seq);
                put_u64(out, *ack);
                put_u32(out, *epoch);
                msg.encode(out);
            }
            NetMsg::Ack { ack, epoch } => {
                out.push(2);
                put_u64(out, *ack);
                put_u32(out, *epoch);
            }
            NetMsg::Tick => out.push(3),
            NetMsg::RetxCheck { peer } => {
                out.push(4);
                put_u32(out, *peer as u32);
            }
            NetMsg::Crash { down } => {
                out.push(5);
                put_u64(out, *down);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<NetMsg, WireError> {
        match r.u8("net tag")? {
            0 => Ok(NetMsg::Raw(DsmMsg::decode(r)?)),
            1 => Ok(NetMsg::Data {
                seq: r.u64("seq")?,
                ack: r.u64("ack")?,
                epoch: r.u32("epoch")?,
                msg: DsmMsg::decode(r)?,
            }),
            2 => Ok(NetMsg::Ack {
                ack: r.u64("ack")?,
                epoch: r.u32("epoch")?,
            }),
            3 => Ok(NetMsg::Tick),
            4 => Ok(NetMsg::RetxCheck {
                peer: r.u32("peer")? as usize,
            }),
            5 => Ok(NetMsg::Crash {
                down: r.u64("down")?,
            }),
            t => Err(WireError(format!("unknown net tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_net::{decode_exact, encode_to_vec};

    fn roundtrip(msg: &NetMsg) -> NetMsg {
        let bytes = encode_to_vec(msg);
        decode_exact::<NetMsg>(&bytes).expect("roundtrip decodes")
    }

    fn sample_set() -> UpdateSet {
        UpdateSet {
            items: vec![
                UpdateItem {
                    addr: 0x40_0000,
                    data: vec![1, 2, 3, 4],
                    ts: 7,
                },
                UpdateItem {
                    addr: 0x40_0040,
                    data: vec![],
                    ts: 9,
                },
            ],
        }
    }

    fn sample_binding() -> Binding {
        Binding::from_parts(vec![0x40_0000..0x40_0100, 0x41_0000..0x41_0040], 3)
    }

    #[test]
    fn every_variant_roundtrips() {
        let msgs = vec![
            NetMsg::Tick,
            NetMsg::RetxCheck { peer: 5 },
            NetMsg::Crash { down: 12_345 },
            NetMsg::Ack { ack: 42, epoch: 0 },
            NetMsg::Ack { ack: 43, epoch: 2 },
            NetMsg::Raw(DsmMsg::AcquireReq {
                lock: LockId(3),
                mode: Mode::Shared,
                seen: (11, 13),
            }),
            NetMsg::Raw(DsmMsg::TransferReq {
                lock: LockId(1),
                requester: 6,
                mode: Mode::Exclusive,
                seen: (0, u64::MAX),
            }),
            NetMsg::Raw(DsmMsg::ReleaseNotify {
                lock: LockId(9),
                mode: Mode::Exclusive,
            }),
            NetMsg::Raw(DsmMsg::BarrierArrive {
                barrier: BarrierId(2),
                set: sample_set(),
                time: 99,
            }),
            NetMsg::Data {
                seq: 17,
                ack: 16,
                epoch: 1,
                msg: DsmMsg::BarrierRelease {
                    barrier: BarrierId(0),
                    set: std::sync::Arc::new(UpdateSet::new()),
                    time: 100,
                },
            },
        ];
        for msg in &msgs {
            let back = roundtrip(msg);
            // NetMsg has no PartialEq; compare debug forms, which show
            // every field.
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn grant_payloads_roundtrip() {
        let payloads = vec![
            GrantPayload::Current,
            GrantPayload::Rt {
                set: sample_set(),
                consist_time: 55,
                binding: sample_binding(),
            },
            GrantPayload::Vm {
                updates: vec![
                    std::sync::Arc::new(Update {
                        incarnation: 1,
                        set: sample_set(),
                        full: false,
                    }),
                    std::sync::Arc::new(Update {
                        incarnation: 2,
                        set: UpdateSet::new(),
                        full: true,
                    }),
                ],
                full: Some(std::sync::Arc::new(Update {
                    incarnation: 2,
                    set: sample_set(),
                    full: true,
                })),
                incarnation: 2,
                binding: sample_binding(),
            },
            GrantPayload::Vm {
                updates: vec![],
                full: None,
                incarnation: 0,
                binding: Binding::default(),
            },
            GrantPayload::Flat {
                set: sample_set(),
                binding: sample_binding(),
            },
        ];
        for payload in payloads {
            let msg = NetMsg::Raw(DsmMsg::Grant {
                lock: LockId(4),
                mode: Mode::Exclusive,
                payload,
            });
            let back = roundtrip(&msg);
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn truncated_messages_fail_with_context() {
        let bytes = encode_to_vec(&NetMsg::Raw(DsmMsg::BarrierArrive {
            barrier: BarrierId(2),
            set: sample_set(),
            time: 99,
        }));
        for cut in 0..bytes.len() {
            let err = decode_exact::<NetMsg>(&bytes[..cut]).unwrap_err();
            assert!(!err.0.is_empty());
        }
    }
}
