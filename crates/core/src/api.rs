//! The application-facing per-processor API.

use midway_mem::AddrRange;
use midway_proto::{BarrierId, LockId, Mode};
use midway_sim::{ProcHandle, VirtualTime};

use crate::msg::DsmMsg;
use crate::node::DsmNode;
use crate::setup::{Scalar, SharedArray};

/// One processor's view of the DSM: typed shared-memory access plus entry
/// consistency synchronization.
///
/// Reads are local (Midway is update-based: "read latency is decreased to
/// local memory latency... since there are no read misses"); writes run
/// the configured write-trapping path. Synchronization calls are where
/// consistency — and write collection — happens.
pub struct Proc<'a> {
    pub(crate) node: DsmNode,
    pub(crate) h: &'a mut ProcHandle<DsmMsg>,
}

impl Proc<'_> {
    /// This processor's id.
    pub fn id(&self) -> usize {
        self.h.id()
    }

    /// Number of processors in the cluster.
    pub fn procs(&self) -> usize {
        self.h.procs()
    }

    /// This processor's current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.h.now()
    }

    /// Charges `cycles` of application compute time.
    pub fn work(&mut self, cycles: u64) {
        self.h.work(cycles);
    }

    /// Waits `cycles` of virtual time while the runtime keeps serving
    /// protocol requests. Use this — never a compute-only spin — to back
    /// off in polling loops, so other processors can make progress.
    pub fn idle(&mut self, cycles: u64) {
        self.node.idle(self.h, cycles);
    }

    /// Reads element `i` of `a` from the local cache.
    pub fn read<T: Scalar>(&mut self, a: &SharedArray<T>, i: usize) -> T {
        T::load(&mut self.node.store, a.addr(i))
    }

    /// Writes element `i` of `a`, running write detection first.
    pub fn write<T: Scalar>(&mut self, a: &SharedArray<T>, i: usize, v: T) {
        let addr = a.addr(i);
        self.node.trap_write(self.h, addr, T::SIZE);
        T::store_to(&mut self.node.store, addr, v);
    }

    /// Writes a run of elements starting at `start` (an "area" store: one
    /// template invocation covering all the lines, like a structure
    /// assignment or `bcopy` in the paper).
    pub fn write_slice<T: Scalar>(&mut self, a: &SharedArray<T>, start: usize, values: &[T]) {
        if values.is_empty() {
            return;
        }
        let addr = a.addr(start);
        assert!(start + values.len() <= a.len(), "slice write out of bounds");
        self.node.trap_write(self.h, addr, values.len() * T::SIZE);
        for (k, v) in values.iter().enumerate() {
            T::store_to(&mut self.node.store, a.addr(start + k), *v);
        }
    }

    /// Reads elements `range` into a vector.
    pub fn read_vec<T: Scalar>(
        &mut self,
        a: &SharedArray<T>,
        range: std::ops::Range<usize>,
    ) -> Vec<T> {
        range.map(|i| self.read(a, i)).collect()
    }

    /// Acquires `lock` exclusively (for writing).
    pub fn acquire(&mut self, lock: LockId) {
        self.node.acquire(self.h, lock, Mode::Exclusive);
    }

    /// Acquires `lock` in non-exclusive mode (for reading).
    pub fn acquire_shared(&mut self, lock: LockId) {
        self.node.acquire(self.h, lock, Mode::Shared);
    }

    /// Releases an exclusive hold of `lock`.
    pub fn release(&mut self, lock: LockId) {
        self.node.release(self.h, lock, Mode::Exclusive);
    }

    /// Releases a non-exclusive hold of `lock`.
    pub fn release_shared(&mut self, lock: LockId) {
        self.node.release(self.h, lock, Mode::Shared);
    }

    /// Rebinds `lock` to `ranges`; the caller must hold it exclusively.
    pub fn rebind(&mut self, lock: LockId, ranges: Vec<AddrRange>) {
        self.node.rebind(lock, ranges);
    }

    /// Crosses `barrier`, making its bound data consistent everywhere.
    pub fn barrier(&mut self, barrier: BarrierId) {
        self.node.barrier(self.h, barrier);
    }

    /// The ranges this processor currently knows to be bound to `lock`
    /// (bindings travel with grants, so hold the lock for a fresh answer).
    pub fn bound_ranges(&self, lock: LockId) -> Vec<AddrRange> {
        self.node.binding(lock).ranges().to_vec()
    }
}
