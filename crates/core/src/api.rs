//! The application-facing per-processor API.

use midway_check::CheckLog;
use midway_mem::{Addr, AddrRange};
use midway_net::Transport;
use midway_proto::{BarrierId, LockId, Mode};
use midway_sim::{ProcHandle, VirtualTime};

use crate::msg::NetMsg;
use crate::node::DsmNode;
use crate::setup::{Scalar, SharedArray};
use crate::trace::{push_op, TraceOp};

/// One processor's view of the DSM: typed shared-memory access plus entry
/// consistency synchronization.
///
/// Reads are local (Midway is update-based: "read latency is decreased to
/// local memory latency... since there are no read misses"); writes run
/// the configured write-trapping path. Synchronization calls are where
/// consistency — and write collection — happens.
///
/// When the run was configured with [`record`](crate::MidwayConfig::record),
/// every shared store, synchronization operation and compute charge is
/// appended to this processor's trace; reads are local and free and are
/// never recorded.
///
/// `Proc` is generic over the [`Transport`] carrying its messages; the
/// default is the virtual-time simulator's handle, so `Proc<'_>` in
/// existing code means what it always did. A `Proc<'_, RealTransport<_>>`
/// is the same runtime on OS threads and sockets
/// ([`Midway::run_real`](crate::Midway::run_real)).
pub struct Proc<'a, T: Transport<Msg = NetMsg> = ProcHandle<NetMsg>> {
    pub(crate) node: DsmNode,
    pub(crate) h: &'a mut T,
    pub(crate) rec: Option<Vec<TraceOp>>,
}

impl<T: Transport<Msg = NetMsg>> Proc<'_, T> {
    /// Runs `f` against the checker log (when checking is on) with this
    /// processor's current virtual time. Strictly off-clock: nothing here
    /// touches the simulator's accounting.
    #[inline]
    fn check_with(&mut self, f: impl FnOnce(&mut CheckLog, u64)) {
        if let Some(log) = &mut self.node.check {
            f(log, self.h.now().cycles());
        }
    }

    #[inline]
    fn record_with(&mut self, op: impl FnOnce() -> TraceOp) {
        if let Some(rec) = &mut self.rec {
            push_op(rec, op());
        }
    }

    /// Records one write trap of `len` bytes at `addr`, reading the bytes
    /// it left in memory back out of the local store.
    fn record_write(&mut self, addr: Addr, len: usize) {
        if self.rec.is_none() {
            return;
        }
        let data = self.node.store.bytes(addr, len).to_vec();
        if let Some(rec) = &mut self.rec {
            push_op(
                rec,
                TraceOp::Write {
                    addr: addr.raw(),
                    data,
                },
            );
        }
    }

    /// This processor's id.
    pub fn id(&self) -> usize {
        self.h.id()
    }

    /// Number of processors in the cluster.
    pub fn procs(&self) -> usize {
        self.h.procs()
    }

    /// This processor's current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.h.now()
    }

    /// Charges `cycles` of application compute time.
    pub fn work(&mut self, cycles: u64) {
        self.h.work(cycles);
        self.record_with(|| TraceOp::Work { cycles });
    }

    /// Waits `cycles` of virtual time while the runtime keeps serving
    /// protocol requests. Use this — never a compute-only spin — to back
    /// off in polling loops, so other processors can make progress.
    pub fn idle(&mut self, cycles: u64) {
        self.node.idle(self.h, cycles);
        self.record_with(|| TraceOp::Idle { cycles });
    }

    /// Reads element `i` of `a` from the local cache.
    pub fn read<S: Scalar>(&mut self, a: &SharedArray<S>, i: usize) -> S {
        let addr = a.addr(i);
        self.check_with(|log, at| log.read(at, addr.raw(), S::SIZE as u32));
        S::load(&mut self.node.store, addr)
    }

    /// Writes element `i` of `a`, running write detection first.
    pub fn write<S: Scalar>(&mut self, a: &SharedArray<S>, i: usize, v: S) {
        let addr = a.addr(i);
        self.check_with(|log, at| log.write(at, addr.raw(), S::SIZE as u32));
        self.node.trap_write(self.h, addr, S::SIZE);
        S::store_to(&mut self.node.store, addr, v);
        self.node.wal_write(self.h, addr, S::SIZE);
        self.record_write(addr, S::SIZE);
    }

    /// Writes a run of elements starting at `start` (an "area" store: one
    /// template invocation covering all the lines, like a structure
    /// assignment or `bcopy` in the paper).
    pub fn write_slice<S: Scalar>(&mut self, a: &SharedArray<S>, start: usize, values: &[S]) {
        if values.is_empty() {
            return;
        }
        if start + values.len() > a.len() {
            self.h.app_violation(format!(
                "slice write out of bounds: elements {start}..{} of array of length {}",
                start + values.len(),
                a.len()
            ));
        }
        let addr = a.addr(start);
        let len = values.len() * S::SIZE;
        self.check_with(|log, at| log.write(at, addr.raw(), len as u32));
        self.node.trap_write(self.h, addr, len);
        for (k, v) in values.iter().enumerate() {
            S::store_to(&mut self.node.store, a.addr(start + k), *v);
        }
        self.node.wal_write(self.h, addr, len);
        self.record_write(addr, len);
    }

    /// Performs one write trap covering `data.len()` bytes at `addr` and
    /// stores the bytes verbatim. This is the replay path for recorded
    /// [`TraceOp::Write`] operations; applications use the typed writes.
    pub fn write_raw(&mut self, addr: Addr, data: &[u8]) {
        self.check_with(|log, at| log.write(at, addr.raw(), data.len() as u32));
        self.node.trap_write(self.h, addr, data.len());
        self.node.store.write_bytes(addr, data);
        self.node.wal_write(self.h, addr, data.len());
        self.record_write(addr, data.len());
    }

    /// Reads elements `range` into a vector.
    pub fn read_vec<S: Scalar>(
        &mut self,
        a: &SharedArray<S>,
        range: std::ops::Range<usize>,
    ) -> Vec<S> {
        range.map(|i| self.read(a, i)).collect()
    }

    /// Acquires `lock` exclusively (for writing).
    pub fn acquire(&mut self, lock: LockId) {
        self.node.acquire(self.h, lock, Mode::Exclusive);
        self.check_with(|log, at| log.acquire(at, lock.0, true));
        self.record_with(|| TraceOp::Acquire {
            lock: lock.0,
            exclusive: true,
        });
    }

    /// Acquires `lock` in non-exclusive mode (for reading).
    pub fn acquire_shared(&mut self, lock: LockId) {
        self.node.acquire(self.h, lock, Mode::Shared);
        self.check_with(|log, at| log.acquire(at, lock.0, false));
        self.record_with(|| TraceOp::Acquire {
            lock: lock.0,
            exclusive: false,
        });
    }

    /// Releases an exclusive hold of `lock`.
    pub fn release(&mut self, lock: LockId) {
        self.check_with(|log, at| log.release(at, lock.0, true));
        self.node.release(self.h, lock, Mode::Exclusive);
        self.record_with(|| TraceOp::Release {
            lock: lock.0,
            exclusive: true,
        });
    }

    /// Releases a non-exclusive hold of `lock`.
    pub fn release_shared(&mut self, lock: LockId) {
        self.check_with(|log, at| log.release(at, lock.0, false));
        self.node.release(self.h, lock, Mode::Shared);
        self.record_with(|| TraceOp::Release {
            lock: lock.0,
            exclusive: false,
        });
    }

    /// Rebinds `lock` to `ranges`; the caller must hold it exclusively.
    pub fn rebind(&mut self, lock: LockId, ranges: Vec<AddrRange>) {
        self.check_with(|log, at| log.rebind(at, lock.0, ranges.clone()));
        self.record_with(|| TraceOp::Rebind {
            lock: lock.0,
            ranges: ranges.clone(),
        });
        self.node.rebind(self.h, lock, ranges);
    }

    /// Crosses `barrier`, making its bound data consistent everywhere.
    pub fn barrier(&mut self, barrier: BarrierId) {
        self.check_with(|log, at| log.barrier_enter(at, barrier.0));
        self.node.barrier(self.h, barrier);
        self.check_with(|log, at| log.barrier_exit(at, barrier.0));
        self.record_with(|| TraceOp::Barrier { barrier: barrier.0 });
    }

    /// Applies one recorded operation: the replay path. Replaying every
    /// operation of a recorded stream (in order, on the processor that
    /// recorded it) reproduces the original run without the application.
    pub fn apply_op(&mut self, op: &TraceOp) {
        match op {
            TraceOp::Work { cycles } => self.work(*cycles),
            TraceOp::Idle { cycles } => self.idle(*cycles),
            TraceOp::Write { addr, data } => self.write_raw(Addr(*addr), data),
            TraceOp::Acquire {
                lock,
                exclusive: true,
            } => self.acquire(LockId(*lock)),
            TraceOp::Acquire {
                lock,
                exclusive: false,
            } => self.acquire_shared(LockId(*lock)),
            TraceOp::Release {
                lock,
                exclusive: true,
            } => self.release(LockId(*lock)),
            TraceOp::Release {
                lock,
                exclusive: false,
            } => self.release_shared(LockId(*lock)),
            TraceOp::Rebind { lock, ranges } => self.rebind(LockId(*lock), ranges.clone()),
            TraceOp::Barrier { barrier } => self.barrier(BarrierId(*barrier)),
        }
    }

    /// The ranges this processor currently knows to be bound to `lock`
    /// (bindings travel with grants, so hold the lock for a fresh answer).
    pub fn bound_ranges(&self, lock: LockId) -> Vec<AddrRange> {
        self.node.binding(lock).ranges().to_vec()
    }
}
