//! The DSM protocol messages and their wire sizes.

use std::sync::Arc;

use midway_proto::{
    BarrierId, Binding, LockId, Mode, Update, UpdateSet, MSG_HEADER_BYTES, RELIABLE_HEADER_BYTES,
};

/// The data a grant carries, per backend.
#[derive(Clone, Debug)]
pub enum GrantPayload {
    /// No data: the requester was already the owner of record.
    Current,
    /// RT-DSM: timestamped line updates plus the releaser's logical time.
    Rt {
        /// The lines newer than the requester's last-seen time.
        set: UpdateSet,
        /// The releaser's logical time; the requester's cache is consistent
        /// as of this time.
        consist_time: u64,
        /// The lock's current binding (it may have been rebound).
        binding: Binding,
    },
    /// VM-DSM: the incarnation-ordered updates the requester is missing, or
    /// the full bound data when the history cannot serve it.
    ///
    /// Updates are `Arc`-shared with the sender's lock history (and, after
    /// the grant lands, with the receiver's): building and absorbing a
    /// grant moves reference counts, not item buffers. Wire-size accounting
    /// is unchanged — each hop still charges the full serialized size.
    Vm {
        /// Missing incarnations, oldest first (empty when `full` is used).
        updates: Vec<Arc<Update>>,
        /// Full bound data fallback (always has `full == true`; its
        /// incarnation matches the payload's `incarnation` field).
        full: Option<Arc<Update>>,
        /// The incarnation the requester is current as of after applying.
        incarnation: u64,
        /// The lock's current binding.
        binding: Binding,
    },
    /// Blast / TwinAll: one update set (full data or whole-binding diff).
    Flat {
        /// The data.
        set: UpdateSet,
        /// The lock's current binding.
        binding: Binding,
    },
}

impl GrantPayload {
    /// Application data bytes carried (the paper's "data transferred").
    pub fn data_bytes(&self) -> u64 {
        match self {
            GrantPayload::Current => 0,
            GrantPayload::Rt { set, .. } => set.data_bytes(),
            GrantPayload::Vm { updates, full, .. } => {
                updates.iter().map(|u| u.set.data_bytes()).sum::<u64>()
                    + full.as_ref().map_or(0, |u| u.set.data_bytes())
            }
            GrantPayload::Flat { set, .. } => set.data_bytes(),
        }
    }

    /// Total wire bytes (data + per-item and per-update headers).
    pub fn wire_size(&self) -> u64 {
        match self {
            GrantPayload::Current => 0,
            GrantPayload::Rt { set, binding, .. } => set.wire_size() + binding.wire_size() + 8,
            GrantPayload::Vm {
                updates,
                full,
                binding,
                ..
            } => {
                updates.iter().map(|u| u.wire_size()).sum::<u64>()
                    + full.as_ref().map_or(0, |u| u.set.wire_size())
                    + binding.wire_size()
                    + 8
            }
            GrantPayload::Flat { set, binding } => set.wire_size() + binding.wire_size(),
        }
    }
}

/// A message between DSM runtime instances.
#[derive(Clone, Debug)]
pub enum DsmMsg {
    /// Requester → home: acquire a lock.
    AcquireReq {
        /// The lock.
        lock: LockId,
        /// Exclusive or shared.
        mode: Mode,
        /// What the requester has already seen (opaque to the home).
        seen: (u64, u64),
    },
    /// Home → owner of record: run write collection for `requester`.
    TransferReq {
        /// The lock.
        lock: LockId,
        /// The acquiring processor.
        requester: usize,
        /// Exclusive or shared.
        mode: Mode,
        /// The requester's last-seen token.
        seen: (u64, u64),
    },
    /// Owner of record → requester: the lock is yours; here is the data.
    Grant {
        /// The lock.
        lock: LockId,
        /// The granted mode.
        mode: Mode,
        /// The consistency payload.
        payload: GrantPayload,
    },
    /// Holder → home: the lock is released.
    ReleaseNotify {
        /// The lock.
        lock: LockId,
        /// The mode being released.
        mode: Mode,
    },
    /// Processor → manager: arrived at a barrier with collected updates.
    BarrierArrive {
        /// The barrier.
        barrier: BarrierId,
        /// This processor's modifications to the bound data.
        set: UpdateSet,
        /// The arriving processor's logical time.
        time: u64,
    },
    /// Manager → processor: everyone arrived; here is everyone else's data.
    ///
    /// Flat barriers ship each receiver its personalized set (merged minus
    /// its own contribution); tree barriers ship every node the same fully
    /// merged set, which each node filters locally. The `Arc` makes the
    /// tree's fan-down — the same payload forwarded to up-to-`arity`
    /// children per node — a pointer copy in the simulator's shared
    /// address space; wire-size accounting still charges the full set per
    /// hop.
    BarrierRelease {
        /// The barrier.
        barrier: BarrierId,
        /// The update payload (see above for flat vs tree contents).
        set: Arc<UpdateSet>,
        /// The sender's logical time.
        time: u64,
    },
}

impl DsmMsg {
    /// The message's bytes on the wire.
    pub fn wire_size(&self) -> u64 {
        MSG_HEADER_BYTES
            + match self {
                DsmMsg::AcquireReq { .. } => 24,
                DsmMsg::TransferReq { .. } => 32,
                DsmMsg::Grant { payload, .. } => 8 + payload.wire_size(),
                DsmMsg::ReleaseNotify { .. } => 8,
                DsmMsg::BarrierArrive { set, .. } => 16 + set.wire_size(),
                DsmMsg::BarrierRelease { set, .. } => 16 + set.wire_size(),
            }
    }

    /// Application data bytes carried (protocol overhead excluded).
    pub fn data_bytes(&self) -> u64 {
        match self {
            DsmMsg::Grant { payload, .. } => payload.data_bytes(),
            DsmMsg::BarrierArrive { set, .. } => set.data_bytes(),
            DsmMsg::BarrierRelease { set, .. } => set.data_bytes(),
            _ => 0,
        }
    }
}

/// What actually travels through the simulated network: a DSM protocol
/// message in one of two framings, or a self-posted timer.
///
/// On a trusted network (faults disabled) every protocol message goes as
/// [`NetMsg::Raw`] — byte-for-byte the same wire size and event stream as
/// before the reliable channel existed, which is what keeps pre-change
/// traces replaying bit-for-bit. With faults enabled the link layer wraps
/// every message in [`NetMsg::Data`] framing and answers with
/// [`NetMsg::Ack`]s.
#[derive(Clone, Debug)]
pub enum NetMsg {
    /// Trusted-network fast path: the bare protocol message, no framing.
    Raw(DsmMsg),
    /// Reliable framing: per-pair sequence number plus a piggybacked
    /// cumulative ack for the reverse direction.
    Data {
        /// This frame's sequence number on the (sender → receiver) pair.
        seq: u64,
        /// Cumulative ack: the sender has delivered everything up to this
        /// sequence number of the reverse direction.
        ack: u64,
        /// The sender's incarnation epoch (0 until its first crash; bumped
        /// at every recovery). Carried on the wire only when nonzero, so a
        /// never-crashed run's frames are byte-identical to the epoch-less
        /// format.
        epoch: u32,
        /// The protocol message.
        msg: DsmMsg,
    },
    /// Explicit cumulative acknowledgement (when no reverse data frame is
    /// available to piggyback on).
    Ack {
        /// Everything up to this sequence number has been delivered.
        ack: u64,
        /// The sender's incarnation epoch (see [`NetMsg::Data::epoch`]).
        epoch: u32,
    },
    /// Self-posted timer used by `Proc::idle` backoff waits.
    Tick,
    /// Self-posted retransmit timer for the reliable channel to `peer`.
    RetxCheck {
        /// The peer whose send channel should be checked.
        peer: usize,
    },
    /// Self-posted crash notice from the fault plan's schedule: the
    /// processor fails on delivery and restarts `down` cycles later.
    /// Never travels between processors.
    Crash {
        /// Downtime before the restart, in cycles.
        down: u64,
    },
}

/// Wire size of an explicit ack frame.
pub(crate) const ACK_FRAME_BYTES: u64 = MSG_HEADER_BYTES + 8;

impl NetMsg {
    /// The message's bytes on the wire. Timers never reach the network.
    /// An epoch field is charged (4 bytes) only once nonzero: frames sent
    /// before any crash are byte-identical to the epoch-less format.
    pub fn wire_size(&self) -> u64 {
        let epoch_bytes = |e: u32| if e > 0 { 4 } else { 0 };
        match self {
            NetMsg::Raw(m) => m.wire_size(),
            NetMsg::Data { msg, epoch, .. } => {
                msg.wire_size() + RELIABLE_HEADER_BYTES + epoch_bytes(*epoch)
            }
            NetMsg::Ack { epoch, .. } => ACK_FRAME_BYTES + epoch_bytes(*epoch),
            NetMsg::Tick | NetMsg::RetxCheck { .. } | NetMsg::Crash { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_proto::UpdateItem;

    fn set(bytes: usize) -> UpdateSet {
        UpdateSet {
            items: vec![UpdateItem {
                addr: 0x40_0000,
                data: vec![0; bytes],
                ts: 5,
            }],
        }
    }

    fn one_line_binding() -> Binding {
        let range = 0x40_0000..0x40_0040;
        Binding::new(vec![range])
    }

    #[test]
    fn grant_sizes_count_data_and_headers() {
        let p = GrantPayload::Rt {
            set: set(64),
            consist_time: 9,
            binding: one_line_binding(),
        };
        assert_eq!(p.data_bytes(), 64);
        assert!(p.wire_size() > 64);
        let m = DsmMsg::Grant {
            lock: LockId(0),
            mode: Mode::Exclusive,
            payload: p,
        };
        assert_eq!(m.data_bytes(), 64);
        assert!(m.wire_size() > m.data_bytes());
    }

    #[test]
    fn vm_payload_sums_updates_and_full() {
        let p = GrantPayload::Vm {
            updates: vec![
                Arc::new(Update {
                    incarnation: 1,
                    set: set(16),
                    full: false,
                }),
                Arc::new(Update {
                    incarnation: 2,
                    set: set(8),
                    full: false,
                }),
            ],
            full: None,
            incarnation: 2,
            binding: one_line_binding(),
        };
        assert_eq!(p.data_bytes(), 24);
    }

    #[test]
    fn control_messages_carry_no_app_data() {
        let m = DsmMsg::AcquireReq {
            lock: LockId(3),
            mode: Mode::Shared,
            seen: (1, 0),
        };
        assert_eq!(m.data_bytes(), 0);
        assert!(m.wire_size() >= MSG_HEADER_BYTES);
    }
}
