//! System configuration.

use midway_sim::NetModel;
use midway_stats::CostModel;

/// Which write-detection strategy the system runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendKind {
    /// RT-DSM: compiler/runtime dirtybits (the paper's contribution).
    Rt,
    /// VM-DSM: page protection, twins and diffs.
    Vm,
    /// §3.5 strawman: no detection, all bound data shipped every transfer.
    Blast,
    /// §3.5 alternative: twin everything, diff at every transfer, no
    /// faults.
    TwinAll,
    /// No detection and no consistency at all: the *standalone* build used
    /// for the uniprocessor baseline in Figure 2 (valid only with one
    /// processor).
    None,
}

impl BackendKind {
    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Rt => "RT-DSM",
            BackendKind::Vm => "VM-DSM",
            BackendKind::Blast => "Blast",
            BackendKind::TwinAll => "TwinAll",
            BackendKind::None => "standalone",
        }
    }
}

/// Full configuration of a Midway run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MidwayConfig {
    /// Number of processors (the paper's cluster has eight).
    pub procs: usize,
    /// Write-detection backend.
    pub backend: BackendKind,
    /// Primitive-operation costs (paper Table 1).
    pub cost: CostModel,
    /// Interconnect model.
    pub net: NetModel,
    /// VM-DSM: incarnations of update history retained per lock. Midway
    /// keeps "the complete set of prior updates" and falls back to a full
    /// send when their concatenation exceeds the bound data size; a large
    /// cap makes that size rule — not pruning — the operative fallback.
    pub history_cap: usize,
    /// Record each processor's shared-memory operation stream; the run's
    /// [`MidwayRun::traces`](crate::MidwayRun::traces) and
    /// [`MidwayRun::blueprint`](crate::MidwayRun::blueprint) are then
    /// populated for the `midway-replay` crate to serialize and replay.
    pub record: bool,
}

impl MidwayConfig {
    /// The paper's platform: `procs` processors, Table 1 costs, ATM net.
    pub fn new(procs: usize, backend: BackendKind) -> MidwayConfig {
        MidwayConfig {
            procs,
            backend,
            cost: CostModel::r3000_mach(),
            net: NetModel::atm_cluster(),
            history_cap: 512,
            record: false,
        }
    }

    /// The standalone uniprocessor baseline.
    pub fn standalone() -> MidwayConfig {
        MidwayConfig::new(1, BackendKind::None)
    }

    /// Replaces the cost model (e.g. for the Figure 3/4 fault sweep).
    pub fn cost(mut self, cost: CostModel) -> MidwayConfig {
        self.cost = cost;
        self
    }

    /// Replaces the network model.
    pub fn net(mut self, net: NetModel) -> MidwayConfig {
        self.net = net;
        self
    }

    /// Turns trace recording on or off.
    pub fn record(mut self, on: bool) -> MidwayConfig {
        self.record = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_platform() {
        let c = MidwayConfig::new(8, BackendKind::Rt);
        assert_eq!(c.procs, 8);
        assert_eq!(c.cost.mhz, 25);
        assert_eq!(c.cost.page_size, 4096);
    }

    #[test]
    fn standalone_is_single_proc_no_detection() {
        let c = MidwayConfig::standalone();
        assert_eq!(c.procs, 1);
        assert_eq!(c.backend, BackendKind::None);
        assert_eq!(c.backend.label(), "standalone");
    }
}
