//! System configuration.

use midway_proto::{HomeMap, ReliableParams};
use midway_sim::{FaultPlan, NetModel};
use midway_stats::CostModel;

/// How barrier episodes are coordinated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BarrierShape {
    /// The paper's flat scheme: every processor sends its updates to the
    /// manager, which merges P arrivals and broadcasts P releases. The
    /// historical default; fine at 8 processors, a hot-spot at 256.
    #[default]
    Flat,
    /// A combining tree rooted at the manager: arrivals merge up, the
    /// release fans down, and no node handles more than `arity` barrier
    /// messages per episode.
    Tree {
        /// Per-node fan-in bound (must be at least 2).
        arity: u32,
    },
}

/// Which write-detection strategy the system runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendKind {
    /// RT-DSM: compiler/runtime dirtybits (the paper's contribution).
    Rt,
    /// VM-DSM: page protection, twins and diffs.
    Vm,
    /// §3.5 strawman: no detection, all bound data shipped every transfer.
    Blast,
    /// §3.5 alternative: twin everything, diff at every transfer, no
    /// faults.
    TwinAll,
    /// Paper §5's hybrid sketch: RT dirtybit templates for small or
    /// regular regions, VM page twinning for large shared ones — chosen
    /// per region from the layout, speaking the RT update protocol.
    Hybrid,
    /// No detection and no consistency at all: the *standalone* build used
    /// for the uniprocessor baseline in Figure 2 (valid only with one
    /// processor).
    None,
}

impl BackendKind {
    /// Every backend, in the canonical registry order (also the order
    /// harnesses iterate and docs list them in).
    pub const ALL: [BackendKind; 6] = [
        BackendKind::Rt,
        BackendKind::Vm,
        BackendKind::Blast,
        BackendKind::TwinAll,
        BackendKind::Hybrid,
        BackendKind::None,
    ];

    /// The backends that move data (everything except the standalone
    /// baseline) — the set protocol comparisons iterate over.
    pub const DATA: [BackendKind; 5] = [
        BackendKind::Rt,
        BackendKind::Vm,
        BackendKind::Blast,
        BackendKind::TwinAll,
        BackendKind::Hybrid,
    ];

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Rt => "RT-DSM",
            BackendKind::Vm => "VM-DSM",
            BackendKind::Blast => "Blast",
            BackendKind::TwinAll => "TwinAll",
            BackendKind::Hybrid => "Hybrid-DSM",
            BackendKind::None => "standalone",
        }
    }

    /// The name used on command lines and in trace-cache file names.
    pub fn cli_name(self) -> &'static str {
        match self {
            BackendKind::Rt => "rt",
            BackendKind::Vm => "vm",
            BackendKind::Blast => "blast",
            BackendKind::TwinAll => "twinall",
            BackendKind::Hybrid => "hybrid",
            BackendKind::None => "none",
        }
    }

    /// Parses a CLI backend name; the error lists every valid name.
    pub fn from_cli_name(s: &str) -> Result<BackendKind, String> {
        BackendKind::ALL
            .into_iter()
            .find(|b| b.cli_name() == s)
            .ok_or_else(|| format!("unknown backend {s:?} (use {})", BackendKind::cli_names()))
    }

    /// All CLI names, `|`-separated (for usage strings and errors).
    pub fn cli_names() -> String {
        BackendKind::ALL.map(BackendKind::cli_name).join("|")
    }

    /// The backend's byte tag in the `MWTR` trace-file format. Stable:
    /// tags are append-only so old trace files keep decoding.
    pub fn wire_tag(self) -> u8 {
        match self {
            BackendKind::Rt => 0,
            BackendKind::Vm => 1,
            BackendKind::Blast => 2,
            BackendKind::TwinAll => 3,
            BackendKind::None => 4,
            BackendKind::Hybrid => 5,
        }
    }

    /// The backend a trace-file byte tag names, if any.
    pub fn from_wire_tag(t: u8) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|b| b.wire_tag() == t)
    }
}

/// Full configuration of a Midway run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MidwayConfig {
    /// Number of processors (the paper's cluster has eight).
    pub procs: usize,
    /// Write-detection backend.
    pub backend: BackendKind,
    /// Primitive-operation costs (paper Table 1).
    pub cost: CostModel,
    /// Interconnect model.
    pub net: NetModel,
    /// VM-DSM: incarnations of update history retained per lock. Midway
    /// keeps "the complete set of prior updates" and falls back to a full
    /// send when their concatenation exceeds the bound data size; a large
    /// cap makes that size rule — not pruning — the operative fallback.
    pub history_cap: usize,
    /// Record each processor's shared-memory operation stream; the run's
    /// [`MidwayRun::traces`](crate::MidwayRun::traces) and
    /// [`MidwayRun::blueprint`](crate::MidwayRun::blueprint) are then
    /// populated for the `midway-replay` crate to serialize and replay.
    pub record: bool,
    /// Deterministic network fault schedule. Disabled by default: the
    /// network is perfect and messages travel unframed, byte-for-byte as
    /// they did before the reliable channel existed. Enabling the plan
    /// (even with all rates zero) turns on reliable delivery.
    pub faults: FaultPlan,
    /// Reliable-channel tuning (retransmit timeout, backoff cap, timer
    /// cost). Only consulted when `faults` is enabled.
    pub reliable: ReliableParams,
    /// Run the dynamic entry-consistency checker alongside the program.
    /// Strictly off-clock: every virtual clock, wire size, counter and
    /// trace is bit-for-bit identical with checking on or off; the run's
    /// [`MidwayRun::check`](crate::MidwayRun::check) report is the only
    /// observable difference.
    pub check: bool,
    /// Where each lock's home and each barrier's manager live. The
    /// default modulo map reproduces the historical `id % procs` layout
    /// bit-for-bit; the sharded map scatters dense id ranges for scale.
    pub home_map: HomeMap,
    /// Barrier coordination shape. The default flat shape reproduces the
    /// historical single-manager protocol bit-for-bit.
    pub barrier: BarrierShape,
    /// Crash-tolerance checkpoint interval, in synchronization boundaries
    /// (releases + barriers) per processor: every `checkpoint_every`-th
    /// boundary writes a stable-storage checkpoint image, and every store
    /// mutation between checkpoints is logged to a write-ahead log. Zero
    /// (the default) disables the machinery entirely — unless the fault
    /// plan schedules crashes, in which case the interval defaults to 8
    /// (see [`MidwayConfig::effective_checkpoint_every`]): a crashed
    /// processor must always have something to recover from.
    pub checkpoint_every: u32,
}

impl MidwayConfig {
    /// The paper's platform: `procs` processors, Table 1 costs, ATM net.
    pub fn new(procs: usize, backend: BackendKind) -> MidwayConfig {
        MidwayConfig {
            procs,
            backend,
            cost: CostModel::r3000_mach(),
            net: NetModel::atm_cluster(),
            history_cap: 512,
            record: false,
            faults: FaultPlan::none(),
            reliable: ReliableParams::atm_cluster(),
            check: false,
            home_map: HomeMap::Modulo,
            barrier: BarrierShape::Flat,
            checkpoint_every: 0,
        }
    }

    /// The standalone uniprocessor baseline.
    pub fn standalone() -> MidwayConfig {
        MidwayConfig::new(1, BackendKind::None)
    }

    /// Replaces the cost model (e.g. for the Figure 3/4 fault sweep).
    pub fn cost(mut self, cost: CostModel) -> MidwayConfig {
        self.cost = cost;
        self
    }

    /// Replaces the network model.
    pub fn net(mut self, net: NetModel) -> MidwayConfig {
        self.net = net;
        self
    }

    /// Turns trace recording on or off.
    pub fn record(mut self, on: bool) -> MidwayConfig {
        self.record = on;
        self
    }

    /// Replaces the network fault plan (an enabled plan also turns on the
    /// reliable delivery channel).
    pub fn faults(mut self, faults: FaultPlan) -> MidwayConfig {
        self.faults = faults;
        self
    }

    /// Replaces the reliable-channel tuning.
    pub fn reliable(mut self, reliable: ReliableParams) -> MidwayConfig {
        self.reliable = reliable;
        self
    }

    /// Turns the dynamic entry-consistency checker on or off.
    pub fn check(mut self, on: bool) -> MidwayConfig {
        self.check = on;
        self
    }

    /// Replaces the sync-home assignment.
    pub fn home_map(mut self, map: HomeMap) -> MidwayConfig {
        self.home_map = map;
        self
    }

    /// Replaces the barrier coordination shape.
    pub fn barrier_shape(mut self, shape: BarrierShape) -> MidwayConfig {
        self.barrier = shape;
        self
    }

    /// Switches barriers to a combining tree of the given arity.
    pub fn tree_barriers(self, arity: u32) -> MidwayConfig {
        self.barrier_shape(BarrierShape::Tree { arity })
    }

    /// The scale-out preset: sharded sync homes plus combining-tree
    /// barriers — the configuration the `scale_sweep` harness runs.
    pub fn scale_out(self, arity: u32, shard_seed: u64) -> MidwayConfig {
        self.home_map(HomeMap::Sharded { seed: shard_seed })
            .tree_barriers(arity)
    }

    /// Replaces the crash-tolerance checkpoint interval (0 disables the
    /// checkpoint/log machinery when no crashes are scheduled).
    pub fn checkpoint_every(mut self, boundaries: u32) -> MidwayConfig {
        self.checkpoint_every = boundaries;
        self
    }

    /// Schedules a crash of processor `proc` at cycle `at`, restarting
    /// `down` cycles later (a [`FaultPlan::with_crash`] convenience; also
    /// enables the reliable channel).
    pub fn crash(mut self, proc: usize, at: u64, down: u64) -> MidwayConfig {
        self.faults = self.faults.with_crash(proc, at, down);
        self
    }

    /// The operative checkpoint interval: `None` when the crash-tolerance
    /// machinery is off (no interval configured and no crash scheduled),
    /// otherwise the configured interval, defaulting to 8 boundaries when
    /// crashes are scheduled without an explicit interval.
    pub fn effective_checkpoint_every(&self) -> Option<u32> {
        if self.checkpoint_every > 0 {
            Some(self.checkpoint_every)
        } else if self.faults.has_crashes() {
            Some(8)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_platform() {
        let c = MidwayConfig::new(8, BackendKind::Rt);
        assert_eq!(c.procs, 8);
        assert_eq!(c.cost.mhz, 25);
        assert_eq!(c.cost.page_size, 4096);
    }

    #[test]
    fn registry_round_trips_every_backend() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::from_cli_name(b.cli_name()), Ok(b));
            assert_eq!(BackendKind::from_wire_tag(b.wire_tag()), Some(b));
        }
        assert_eq!(BackendKind::from_wire_tag(250), None);
        let err = BackendKind::from_cli_name("mystery").unwrap_err();
        for b in BackendKind::ALL {
            assert!(err.contains(b.cli_name()), "{err} should list {b:?}");
        }
    }

    #[test]
    fn standalone_is_single_proc_no_detection() {
        let c = MidwayConfig::standalone();
        assert_eq!(c.procs, 1);
        assert_eq!(c.backend, BackendKind::None);
        assert_eq!(c.backend.label(), "standalone");
    }
}
