//! The standalone (uniprocessor baseline) detector: no detection, no
//! consistency, no data motion.

use midway_mem::Addr;
use midway_proto::{Binding, SeenToken, UpdateSet};

use crate::msg::GrantPayload;

use super::{DetectCx, WriteDetector};

/// The `BackendKind::None` backend, valid only with one processor.
pub struct NoneDetector;

impl WriteDetector for NoneDetector {
    fn trap_write(&mut self, _cx: &mut DetectCx<'_>, _addr: Addr, _len: usize) {}

    fn collect_for(
        &mut self,
        _cx: &mut DetectCx<'_>,
        _lock: usize,
        _binding: &Binding,
        _seen: SeenToken,
    ) -> GrantPayload {
        unreachable!("standalone runs never transfer data")
    }

    fn apply_update(
        &mut self,
        _cx: &mut DetectCx<'_>,
        _lock: usize,
        _binding: &mut Binding,
        _payload: GrantPayload,
    ) {
        unreachable!("standalone runs never transfer data")
    }

    fn collect_barrier(
        &mut self,
        _cx: &mut DetectCx<'_>,
        _scan: &Binding,
        _last_consist: u64,
        _partitioned: bool,
    ) -> UpdateSet {
        UpdateSet::new()
    }

    fn apply_barrier(&mut self, _cx: &mut DetectCx<'_>, _set: &UpdateSet) {}
}
