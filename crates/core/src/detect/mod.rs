//! The pluggable write-detection layer.
//!
//! The paper's central claim is that write *detection* is a policy
//! separable from the entry-consistency *protocol* (§3; §5 even sketches
//! a hybrid compiler+VM scheme). This module is that seam: the protocol
//! engine in `node` speaks only [`WriteDetector`], and one
//! implementation per backend owns all backend-specific state — the RT
//! dirtybit map, the VM page table / twins / incarnation histories, the
//! twin-everything twins, and the hybrid's per-region mix of both.
//!
//! A detector is driven through five moments of the protocol:
//!
//! * [`trap_write`](WriteDetector::trap_write) — before every shared
//!   store (the paper's §3.1/§3.3 trapping mechanisms);
//! * [`seen_token`](WriteDetector::seen_token) — what this processor has
//!   already seen of a lock's data, carried opaquely with acquire
//!   requests;
//! * [`collect_for`](WriteDetector::collect_for) /
//!   [`apply_update`](WriteDetector::apply_update) — write collection at
//!   the owner of record and application at the requester (§3.2/§3.4);
//! * [`collect_barrier`](WriteDetector::collect_barrier) /
//!   [`apply_barrier`](WriteDetector::apply_barrier) — the barrier-bound
//!   variants of the same.
//!
//! Per-line and per-page costs are charged through [`DetectCx`], so the
//! engine — and the tests — never need to know which primitives a backend
//! consumes.
//!
//! # How to add a backend
//!
//! 1. Add a variant to [`BackendKind`] and extend its registry methods
//!    (`label`, `cli_name`, `wire_tag` — the compiler walks you through
//!    every exhaustive match, none of which live in the engine).
//! 2. Implement [`WriteDetector`] in a new submodule here, owning any
//!    per-lock or per-region state the backend needs.
//! 3. Construct it in [`BackendKind::new_detector`].
//! 4. If the backend has Table 3–5 cost formulas, add arms in
//!    [`report`](crate::report).
//!
//! Everything else — harness CLIs, the trace format, the replay sweep —
//! routes through the registry and picks the new backend up for free.

use midway_mem::{Addr, LocalStore};
use midway_proto::{Binding, LamportClock, SeenToken, UpdateSet};
use midway_sim::Category;
use midway_stats::CostModel;

use crate::config::{BackendKind, MidwayConfig};
use crate::counters::Counters;
use crate::msg::GrantPayload;
use crate::setup::SystemSpec;

mod blast;
mod hybrid;
mod none;
mod rt;
mod twin_all;
mod vm;

pub use blast::BlastDetector;
pub use hybrid::HybridDetector;
pub use none::NoneDetector;
pub use rt::RtDetector;
pub use twin_all::TwinAllDetector;
pub use vm::VmDetector;

/// What a detector may touch while servicing a protocol event: the local
/// cache, the immutable system description, the cost model, the Lamport
/// clock, the Table 2 counters, and a cycle-charging sink.
///
/// The engine builds one per event from disjoint borrows of the node, so
/// detectors never see the protocol state (locks, homes, barriers) or the
/// simulator handle.
pub struct DetectCx<'a> {
    /// This processor's local cache of the global address space.
    pub store: &'a mut LocalStore,
    /// The shared system description (layout, templates, bindings).
    pub spec: &'a SystemSpec,
    /// Primitive-operation costs (paper Table 1).
    pub cost: CostModel,
    /// This processor's Lamport clock.
    pub clock: &'a mut LamportClock,
    /// The Table 2 counters of this processor.
    pub counters: &'a mut Counters,
    /// Charges virtual cycles to this processor, by category. Invoke as
    /// `(cx.charge)(Category::WriteTrap, cycles)`.
    pub charge: &'a mut dyn FnMut(Category, u64),
}

/// One write-detection backend: the trapping mechanism, the collection
/// scan, and the bookkeeping that makes updates exactly-once.
///
/// Implementations own every piece of backend-specific state (dirtybit
/// maps, page tables, twins, incarnation histories, per-lock last-seen
/// tokens); the protocol engine holds only bindings and hold state.
pub trait WriteDetector {
    /// Traps a store of `len` bytes at `addr`, *before* the bytes land in
    /// the local cache.
    fn trap_write(&mut self, cx: &mut DetectCx<'_>, addr: Addr, len: usize);

    /// The opaque "what I have already seen of this lock's data" token
    /// sent with acquire requests and handed back to
    /// [`collect_for`](WriteDetector::collect_for) at the owner of
    /// record. RT-style backends store (Lamport time, binding version);
    /// VM-style backends store (incarnation, binding version).
    fn seen_token(&self, lock: usize, binding: &Binding) -> SeenToken {
        let _ = (lock, binding);
        (0, 0)
    }

    /// Runs write collection for `lock` as the owner of record, on behalf
    /// of a requester whose last-seen token is `seen`. `binding` is the
    /// owner's current binding of the lock.
    fn collect_for(
        &mut self,
        cx: &mut DetectCx<'_>,
        lock: usize,
        binding: &Binding,
        seen: SeenToken,
    ) -> GrantPayload;

    /// Applies a grant's payload at the requester. The detector installs
    /// the payload's binding into `binding` (the engine's record for the
    /// lock) and advances its own last-seen state.
    fn apply_update(
        &mut self,
        cx: &mut DetectCx<'_>,
        lock: usize,
        binding: &mut Binding,
        payload: GrantPayload,
    );

    /// Notifies the detector that `lock` was rebound (its binding version
    /// bumped). Only VM-DSM reacts: old incarnation updates describe
    /// ranges that may no longer be bound.
    fn on_rebind(&mut self, lock: usize) {
        let _ = lock;
    }

    /// Collects this processor's modifications of barrier-bound data.
    /// `scan` is the binding to scan (the processor's partition, if the
    /// barrier is partitioned — `partitioned` says so), and
    /// `last_consist` the engine's consistency time after the previous
    /// episode (used by RT-style backends as the scan's last-seen time).
    fn collect_barrier(
        &mut self,
        cx: &mut DetectCx<'_>,
        scan: &Binding,
        last_consist: u64,
        partitioned: bool,
    ) -> UpdateSet;

    /// Applies the merged updates received at a barrier release.
    fn apply_barrier(&mut self, cx: &mut DetectCx<'_>, set: &UpdateSet);

    /// Buffer-pool accounting: `(hits, misses)` — item buffers recycled
    /// from the detector's freelist vs. freshly allocated. Purely host-side
    /// attribution; never feeds the cost model or the Table 2 counters.
    fn alloc_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl BackendKind {
    /// Constructs the write detector this backend uses — the single
    /// registry point mapping `BackendKind` to behavior.
    pub fn new_detector(self, cfg: &MidwayConfig, spec: &SystemSpec) -> Box<dyn WriteDetector> {
        match self {
            BackendKind::None => Box::new(NoneDetector),
            BackendKind::Rt => Box::new(RtDetector::new(spec)),
            BackendKind::Vm => Box::new(VmDetector::new(cfg, spec)),
            BackendKind::Blast => Box::new(BlastDetector),
            BackendKind::TwinAll => Box::new(TwinAllDetector::new(cfg, spec)),
            BackendKind::Hybrid => Box::new(HybridDetector::new(spec)),
        }
    }
}
