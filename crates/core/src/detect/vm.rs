//! VM-DSM detector: page protection, twins, diffs and per-lock
//! incarnation histories (paper §3.3–§3.4).

use std::sync::Arc;

use midway_mem::{Addr, MemClass, PageTable, PAGE_SHIFT, PAGE_SIZE};
use midway_proto::{vm, Binding, SeenToken, Update, UpdateSet};
use midway_sim::Category;

use crate::config::MidwayConfig;
use crate::msg::GrantPayload;
use crate::setup::SystemSpec;

use super::{DetectCx, WriteDetector};

/// Per-lock state the VM-style backends (VM-DSM and TwinAll) keep: the
/// last-seen token, the current incarnation, and the update history.
pub(super) struct LockState {
    /// (incarnation, binding version) last seen by this processor.
    pub last_seen: (u64, u64),
    /// Current incarnation (meaningful at the owner of record).
    pub incarnation: u64,
    /// The update history this processor knows.
    pub history: vm::LockHistory,
}

impl LockState {
    pub fn fresh(cfg: &MidwayConfig, spec: &SystemSpec) -> Vec<LockState> {
        (0..spec.locks.len())
            .map(|_| LockState {
                last_seen: (0, 0),
                incarnation: 0,
                history: vm::LockHistory::new(cfg.history_cap),
            })
            .collect()
    }
}

/// The VM-DSM backend: write-protected pages fault in twins, collection
/// diffs dirty pages, updates travel as incarnation chains.
pub struct VmDetector {
    pages: PageTable,
    locks: Vec<LockState>,
}

impl VmDetector {
    /// A fresh detector for one processor of `spec`'s system.
    pub fn new(cfg: &MidwayConfig, spec: &SystemSpec) -> VmDetector {
        VmDetector {
            pages: PageTable::new(std::sync::Arc::clone(&spec.layout)),
            locks: LockState::fresh(cfg, spec),
        }
    }

    /// Reads the full bound data, bumps the counters and history: the
    /// fallback when the incarnation history cannot serve a requester.
    fn full_send(&mut self, cx: &mut DetectCx<'_>, lock: usize, binding: &Binding) -> GrantPayload {
        let incarnation = self.locks[lock].incarnation;
        // One Arc'd snapshot is shared between this owner's history and the
        // outgoing payload — the old deep copy of the full bound data is
        // now a reference-count bump.
        let full = Arc::new(Update {
            incarnation,
            set: vm::snapshot(cx.store, binding),
            full: true,
        });
        cx.counters.full_data_sends += 1;
        (cx.charge)(
            Category::Protocol,
            cx.cost.copy_cycles(full.set.data_bytes() as usize, false),
        );
        let st = &mut self.locks[lock];
        st.history.clear();
        st.history.push(Arc::clone(&full));
        GrantPayload::Vm {
            updates: Vec::new(),
            full: Some(full),
            incarnation,
            binding: binding.clone(),
        }
    }
}

impl WriteDetector for VmDetector {
    fn trap_write(&mut self, cx: &mut DetectCx<'_>, addr: Addr, len: usize) {
        let desc = cx.spec.layout.region_of(addr);
        if desc.class == MemClass::Private {
            return;
        }
        let first = addr.page_in_region();
        let last = Addr(addr.raw() + len.max(1) as u64 - 1).page_in_region();
        for page in first..=last {
            if self.pages.store_probe(desc.id, page) == midway_mem::WriteAccess::Fault {
                let offset = page << PAGE_SHIFT;
                let plen = PAGE_SIZE.min(desc.used - offset);
                let snapshot = cx.store.bytes(desc.base() + offset as u64, plen).to_vec();
                self.pages.fault_in(desc.id, page, &snapshot);
                (cx.charge)(Category::WriteTrap, cx.cost.page_write_fault);
                cx.counters.write_faults += 1;
            }
        }
    }

    fn seen_token(&self, lock: usize, _binding: &Binding) -> SeenToken {
        self.locks[lock].last_seen
    }

    fn collect_for(
        &mut self,
        cx: &mut DetectCx<'_>,
        lock: usize,
        binding: &Binding,
        seen: SeenToken,
    ) -> GrantPayload {
        let st = &mut self.locks[lock];
        st.incarnation = st.history.newest().unwrap_or(st.incarnation) + 1;
        if seen.1 != binding.version() {
            // The requester's binding is stale (the lock was rebound):
            // "the incarnation number is incremented which causes all data
            // bound to the lock to be sent without performing a diff"
            // (paper §4, quicksort).
            return self.full_send(cx, lock, binding);
        }
        let col = vm::collect(cx.store, &mut self.pages, &cx.spec.layout, binding);
        for (runs, words) in &col.diff_runs {
            (cx.charge)(
                Category::WriteCollect,
                cx.cost.page_diff_cycles(*runs, *words),
            );
        }
        (cx.charge)(
            Category::WriteCollect,
            col.pages_cleaned * cx.cost.protect_ro,
        );
        cx.counters.pages_diffed += col.pages_diffed;
        cx.counters.pages_write_protected += col.pages_cleaned;
        let st = &mut self.locks[lock];
        st.history.push(Arc::new(Update {
            incarnation: st.incarnation,
            set: col.update,
            full: false,
        }));

        let bound_bytes = binding.data_bytes();
        let chain = if seen.1 == binding.version() {
            st.history.since(seen.0)
        } else {
            None
        };
        let updates_ok = chain
            .as_ref()
            .is_some_and(|us| us.iter().map(|u| u.set.data_bytes()).sum::<u64>() <= bound_bytes);
        if updates_ok {
            GrantPayload::Vm {
                updates: chain.expect("checked above"),
                full: None,
                incarnation: st.incarnation,
                binding: binding.clone(),
            }
        } else {
            // History cannot serve this requester (or the concatenated
            // updates exceed the data): full send. The snapshot subsumes
            // all earlier incarnations, so it also becomes the base of
            // this owner's history — otherwise one full send would beget
            // full sends forever.
            self.full_send(cx, lock, binding)
        }
    }

    fn apply_update(
        &mut self,
        cx: &mut DetectCx<'_>,
        lock: usize,
        binding: &mut Binding,
        payload: GrantPayload,
    ) {
        let GrantPayload::Vm {
            updates,
            full,
            incarnation,
            binding: sent,
        } = payload
        else {
            panic!("non-VM grant on VM node");
        };
        let mut applied = vm::VmApply::default();
        for set in full
            .iter()
            .map(|u| &u.set)
            .chain(updates.iter().map(|u| &u.set))
        {
            let a = vm::apply(cx.store, &mut self.pages, set);
            applied.bytes_applied += a.bytes_applied;
            applied.twin_bytes_updated += a.twin_bytes_updated;
        }
        (cx.charge)(
            Category::WriteCollect,
            cx.cost.copy_cycles(applied.bytes_applied as usize, true)
                + cx.cost
                    .copy_cycles(applied.twin_bytes_updated as usize, true),
        );
        cx.counters.twin_bytes_updated += applied.twin_bytes_updated;
        binding.install(sent);
        let st = &mut self.locks[lock];
        st.last_seen = (incarnation, binding.version());
        st.incarnation = incarnation;
        if let Some(full) = full {
            // The full snapshot stands in for the whole history; the Arc
            // it arrived in is shared, not copied.
            st.history.clear();
            st.history.push(full);
        } else {
            st.history.absorb(&updates);
        }
    }

    fn on_rebind(&mut self, lock: usize) {
        // Old updates describe ranges that may no longer be bound; the
        // version bump forces the next transfer to ship full data.
        self.locks[lock].history.clear();
    }

    fn collect_barrier(
        &mut self,
        cx: &mut DetectCx<'_>,
        scan: &Binding,
        _last_consist: u64,
        _partitioned: bool,
    ) -> UpdateSet {
        let col = vm::collect(cx.store, &mut self.pages, &cx.spec.layout, scan);
        for (runs, words) in &col.diff_runs {
            (cx.charge)(
                Category::WriteCollect,
                cx.cost.page_diff_cycles(*runs, *words),
            );
        }
        (cx.charge)(
            Category::WriteCollect,
            col.pages_cleaned * cx.cost.protect_ro,
        );
        cx.counters.pages_diffed += col.pages_diffed;
        cx.counters.pages_write_protected += col.pages_cleaned;
        col.update
    }

    fn apply_barrier(&mut self, cx: &mut DetectCx<'_>, set: &UpdateSet) {
        let a = vm::apply(cx.store, &mut self.pages, set);
        (cx.charge)(
            Category::WriteCollect,
            cx.cost.copy_cycles(a.bytes_applied as usize, true)
                + cx.cost.copy_cycles(a.twin_bytes_updated as usize, true),
        );
        cx.counters.twin_bytes_updated += a.twin_bytes_updated;
    }
}
