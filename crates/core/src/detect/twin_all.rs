//! TwinAll detector: the §3.5 second alternative — twin everything, diff
//! at every transfer, never fault.

use std::collections::HashMap;
use std::sync::Arc;

use midway_mem::{Addr, LocalStore, PAGE_SHIFT, PAGE_SIZE};
use midway_proto::{vm, Binding, SeenToken, Update, UpdateItem, UpdateSet};
use midway_sim::Category;

use crate::config::MidwayConfig;
use crate::msg::GrantPayload;
use crate::setup::SystemSpec;

use super::vm::LockState;
use super::{DetectCx, WriteDetector};

/// The twin-everything backend: no write trapping ever runs; collection
/// diffs the bound pages against always-present twins. §3.5: "this
/// approach would still require management of the update incarnations to
/// ensure that a chain of processor updates are correctly propagated" — so
/// TwinAll keeps the same per-lock incarnation history as VM-DSM.
pub struct TwinAllDetector {
    /// Twin of each (region, page) ever collected or updated.
    twins: HashMap<(usize, usize), Box<[u8]>>,
    locks: Vec<LockState>,
}

impl TwinAllDetector {
    /// A fresh detector for one processor of `spec`'s system.
    pub fn new(cfg: &MidwayConfig, spec: &SystemSpec) -> TwinAllDetector {
        TwinAllDetector {
            twins: HashMap::new(),
            locks: LockState::fresh(cfg, spec),
        }
    }

    fn collect(&mut self, cx: &mut DetectCx<'_>, binding: &Binding) -> UpdateSet {
        twin_all_collect(&mut self.twins, cx, binding)
    }
}

impl WriteDetector for TwinAllDetector {
    fn trap_write(&mut self, _cx: &mut DetectCx<'_>, _addr: Addr, _len: usize) {}

    fn seen_token(&self, lock: usize, _binding: &Binding) -> SeenToken {
        self.locks[lock].last_seen
    }

    fn collect_for(
        &mut self,
        cx: &mut DetectCx<'_>,
        lock: usize,
        binding: &Binding,
        seen: SeenToken,
    ) -> GrantPayload {
        let st = &mut self.locks[lock];
        st.incarnation = st.history.newest().unwrap_or(st.incarnation) + 1;
        let set = self.collect(cx, binding);
        let st = &mut self.locks[lock];
        st.history.push(Arc::new(Update {
            incarnation: st.incarnation,
            set,
            full: false,
        }));
        let bound_bytes = binding.data_bytes();
        let chain = if seen.1 == binding.version() {
            st.history.since(seen.0)
        } else {
            None
        };
        let updates_ok = chain
            .as_ref()
            .is_some_and(|us| us.iter().map(|u| u.set.data_bytes()).sum::<u64>() <= bound_bytes);
        if updates_ok {
            GrantPayload::Vm {
                updates: chain.expect("checked above"),
                full: None,
                incarnation: st.incarnation,
                binding: binding.clone(),
            }
        } else {
            let incarnation = self.locks[lock].incarnation;
            // Shared between history and payload — see `VmDetector::full_send`.
            let full = Arc::new(Update {
                incarnation,
                set: vm::snapshot(cx.store, binding),
                full: true,
            });
            cx.counters.full_data_sends += 1;
            (cx.charge)(
                Category::Protocol,
                cx.cost.copy_cycles(full.set.data_bytes() as usize, false),
            );
            let st = &mut self.locks[lock];
            st.history.clear();
            st.history.push(Arc::clone(&full));
            GrantPayload::Vm {
                updates: Vec::new(),
                full: Some(full),
                incarnation,
                binding: binding.clone(),
            }
        }
    }

    fn apply_update(
        &mut self,
        cx: &mut DetectCx<'_>,
        lock: usize,
        binding: &mut Binding,
        payload: GrantPayload,
    ) {
        match payload {
            GrantPayload::Vm {
                updates,
                full,
                incarnation,
                binding: sent,
            } => {
                // TwinAll manages incarnations the same way as VM-DSM
                // (§3.5); incoming bytes are both applied and patched into
                // the always-present twins.
                let mut bytes = 0;
                for set in full
                    .iter()
                    .map(|u| &u.set)
                    .chain(updates.iter().map(|u| &u.set))
                {
                    bytes += twin_all_apply(&mut self.twins, cx.store, cx.spec, set);
                }
                (cx.charge)(
                    Category::WriteCollect,
                    cx.cost.copy_cycles(bytes as usize, true)
                        + cx.cost.copy_cycles(bytes as usize, true),
                );
                cx.counters.twin_bytes_updated += bytes;
                binding.install(sent);
                let st = &mut self.locks[lock];
                st.last_seen = (incarnation, binding.version());
                st.incarnation = incarnation;
                if let Some(full) = full {
                    st.history.clear();
                    st.history.push(full);
                } else {
                    st.history.absorb(&updates);
                }
            }
            GrantPayload::Flat { set, binding: sent } => {
                let bytes = twin_all_apply(&mut self.twins, cx.store, cx.spec, &set);
                (cx.charge)(
                    Category::WriteCollect,
                    cx.cost.copy_cycles(bytes as usize, true),
                );
                binding.install(sent);
            }
            _ => panic!("incompatible grant on twin-all node"),
        }
    }

    fn collect_barrier(
        &mut self,
        cx: &mut DetectCx<'_>,
        scan: &Binding,
        _last_consist: u64,
        _partitioned: bool,
    ) -> UpdateSet {
        self.collect(cx, scan)
    }

    fn apply_barrier(&mut self, cx: &mut DetectCx<'_>, set: &UpdateSet) {
        let bytes = twin_all_apply(&mut self.twins, cx.store, cx.spec, set);
        (cx.charge)(
            Category::WriteCollect,
            cx.cost.copy_cycles(bytes as usize, true),
        );
    }
}

fn twin_all_collect(
    twins: &mut HashMap<(usize, usize), Box<[u8]>>,
    cx: &mut DetectCx<'_>,
    binding: &Binding,
) -> UpdateSet {
    let mut set = UpdateSet::new();
    let mut diff = midway_mem::diff::PageDiff::default();
    for (region_id, page_range) in binding.page_spans(&cx.spec.layout) {
        let desc = cx
            .spec
            .layout
            .region(region_id)
            .expect("bound region exists");
        for page in page_range {
            let offset = page << PAGE_SHIFT;
            let len = PAGE_SIZE.min(desc.used - offset);
            let page_base = desc.base() + offset as u64;
            let current = cx.store.bytes(page_base, len);
            let charge = &mut *cx.charge;
            let cost = cx.cost;
            let twin = twins.entry((region_id, page)).or_insert_with(|| {
                // §3.5: the twin logically exists from the moment the data
                // does; materialize it as the page's initial (zero) state
                // so local writes made before the first transfer are seen.
                charge(Category::WriteCollect, cost.copy_cycles(len, false));
                vec![0u8; len].into_boxed_slice()
            });
            midway_mem::diff::PageDiff::compute_into(&mut diff, current, twin);
            (cx.charge)(
                Category::WriteCollect,
                cx.cost.page_diff_cycles(diff.run_count(), len / 4),
            );
            cx.counters.pages_diffed += 1;
            // Intersect the diff runs with the bound ranges in place,
            // emitting items directly and refreshing the twin as we go —
            // no intermediate restricted `PageDiff` (see `vm::collect`).
            let bound = binding.ranges_in_page(region_id, page);
            let mut j = 0usize;
            for run in &diff.runs {
                let run_end = run.offset + run.data.len();
                while j < bound.len() && bound[j].end <= run.offset {
                    j += 1;
                }
                for range in &bound[j..] {
                    if range.start >= run_end {
                        break;
                    }
                    let lo = run.offset.max(range.start);
                    let hi = run_end.min(range.end);
                    if lo < hi {
                        let data = &run.data[lo - run.offset..hi - run.offset];
                        set.items.push(UpdateItem {
                            addr: page_base.raw() + lo as u64,
                            data: data.to_vec(),
                            ts: 0,
                        });
                        // Refresh the twin so the next diff is incremental.
                        let end = hi.min(twin.len());
                        if lo < end {
                            twin[lo..end].copy_from_slice(&data[..end - lo]);
                        }
                    }
                }
            }
        }
    }
    set.items.sort_by_key(|i| i.addr);
    set
}

fn twin_all_apply(
    twins: &mut HashMap<(usize, usize), Box<[u8]>>,
    store: &mut LocalStore,
    spec: &SystemSpec,
    set: &UpdateSet,
) -> u64 {
    let mut bytes = 0;
    for item in &set.items {
        store.write_bytes(Addr(item.addr), &item.data);
        bytes += item.data.len() as u64;
        // Patch twins so incoming data is not re-shipped as a local change
        // (creating the zero-state twin if the page has none yet).
        let mut pos = 0usize;
        while pos < item.data.len() {
            let addr = Addr(item.addr + pos as u64);
            let region = addr.region_index();
            let page = addr.page_in_region();
            let in_page = PAGE_SIZE - addr.page_offset();
            let chunk = in_page.min(item.data.len() - pos);
            let plen = PAGE_SIZE.min(
                spec.layout
                    .region(region)
                    .expect("update region exists")
                    .used
                    - (page << PAGE_SHIFT),
            );
            let twin = twins
                .entry((region, page))
                .or_insert_with(|| vec![0u8; plen].into_boxed_slice());
            let start = addr.page_offset();
            let end = (start + chunk).min(twin.len());
            if start < end {
                twin[start..end].copy_from_slice(&item.data[pos..pos + (end - start)]);
            }
            pos += chunk;
        }
    }
    bytes
}
