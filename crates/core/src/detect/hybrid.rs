//! Hybrid detector: the paper §5 sketch — "a hybrid implementation that
//! uses virtual memory support to detect writes to large objects, and
//! software dirty bits for small objects".
//!
//! Each region picks its trapping mechanism at startup from the layout:
//! small or private regions run the RT dirtybit templates (cheap per-store,
//! line-granular), large shared regions use VM page twinning (free stores
//! after the first fault per page). Collection *harvests* the VM diffs into
//! the dirtybit map and then runs the ordinary RT timestamp scan, so the
//! wire protocol is exactly RT-DSM's — peers only ever see timestamped
//! update sets, whatever mechanism detected the writes.

use midway_mem::{Addr, MemClass, PageTable, EPOCH, PAGE_SHIFT, PAGE_SIZE};
use midway_proto::{rt, vm, Binding, SeenToken, UpdateSet};
use midway_sim::Category;

use crate::msg::GrantPayload;
use crate::setup::SystemSpec;

use super::{DetectCx, WriteDetector};

/// Shared regions at least this big (four pages) trap through the VM
/// mechanism; everything smaller — and all private data — runs templates.
const PAGING_THRESHOLD: usize = 4 * PAGE_SIZE;

/// The per-region mechanism choice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mechanism {
    /// RT dirtybit template on every store.
    Template,
    /// VM write fault + twin on the first store per page.
    Paging,
}

/// The hybrid RT+VM backend.
pub struct HybridDetector {
    /// Mechanism per region slot (indexed by region id).
    policy: Vec<Mechanism>,
    dirty: rt::DirtyMap,
    pages: PageTable,
    /// Per lock: the logical time as of which this processor's cache of
    /// the lock's data is consistent (RT-style).
    last_seen: Vec<u64>,
}

impl HybridDetector {
    /// A fresh detector; the mechanism choice is made here, per region.
    pub fn new(spec: &SystemSpec) -> HybridDetector {
        let policy = (0..spec.layout.region_slots())
            .map(|id| match spec.layout.region(id) {
                Some(desc) if desc.class == MemClass::Shared && desc.used >= PAGING_THRESHOLD => {
                    Mechanism::Paging
                }
                _ => Mechanism::Template,
            })
            .collect();
        HybridDetector {
            policy,
            dirty: rt::DirtyMap::new(&spec.layout),
            pages: PageTable::new(std::sync::Arc::clone(&spec.layout)),
            last_seen: vec![EPOCH; spec.locks.len()],
        }
    }

    /// Folds the VM-side modifications under `binding` into the dirtybit
    /// map, so the RT timestamp scan that follows sees them. Pages fully
    /// covered by the binding are cleaned (re-protected); the update data
    /// itself is discarded — the RT scan re-reads it from the store.
    fn harvest_paged_writes(&mut self, cx: &mut DetectCx<'_>, binding: &Binding) {
        let col = vm::collect(cx.store, &mut self.pages, &cx.spec.layout, binding);
        for (runs, words) in &col.diff_runs {
            (cx.charge)(
                Category::WriteCollect,
                cx.cost.page_diff_cycles(*runs, *words),
            );
        }
        (cx.charge)(
            Category::WriteCollect,
            col.pages_cleaned * cx.cost.protect_ro,
        );
        cx.counters.pages_diffed += col.pages_diffed;
        cx.counters.pages_write_protected += col.pages_cleaned;
        for item in &col.update.items {
            rt::mark_write(
                &mut self.dirty,
                &cx.spec.layout,
                Addr(item.addr),
                item.data.len(),
            );
        }
    }

    /// Applies an RT update set, additionally patching the twins of
    /// locally-dirty VM-mechanism pages so incoming data is not re-diffed
    /// as a local modification. Returns (RT apply result, twin bytes).
    fn apply_set(&mut self, cx: &mut DetectCx<'_>, set: &UpdateSet) -> (rt::RtApply, u64) {
        let pages = &mut self.pages;
        let policy = &self.policy;
        let mut twin_bytes = 0u64;
        let res = rt::apply_with(
            cx.store,
            &mut self.dirty,
            &cx.spec.layout,
            set,
            |addr, data| {
                let region = addr.region_index();
                if policy[region] != Mechanism::Paging {
                    return;
                }
                // A chunk never crosses a cache line, and lines never cross
                // pages, so one twin covers the whole chunk.
                let page = addr.page_in_region();
                if let Some(twin) = pages.twin_mut(region, page) {
                    let start = addr.page_offset();
                    let end = (start + data.len()).min(twin.len());
                    if start < end {
                        twin[start..end].copy_from_slice(&data[..end - start]);
                        twin_bytes += (end - start) as u64;
                    }
                }
            },
        );
        (res, twin_bytes)
    }
}

impl WriteDetector for HybridDetector {
    fn trap_write(&mut self, cx: &mut DetectCx<'_>, addr: Addr, len: usize) {
        let desc = cx.spec.layout.region_of(addr);
        match self.policy[desc.id] {
            Mechanism::Template => {
                let template = cx.spec.templates[desc.id].expect("allocated region has template");
                let bits = self.dirty.bits_mut(&cx.spec.layout, desc.id);
                let hit = template.invoke(bits, addr, midway_mem::StoreKind::of_len(len), &cx.cost);
                (cx.charge)(Category::WriteTrap, hit.cycles);
                if hit.misclassified {
                    cx.counters.dirtybits_misclassified += 1;
                } else {
                    cx.counters.dirtybits_set += hit.lines_marked;
                }
            }
            Mechanism::Paging => {
                let first = addr.page_in_region();
                let last = Addr(addr.raw() + len.max(1) as u64 - 1).page_in_region();
                for page in first..=last {
                    if self.pages.store_probe(desc.id, page) == midway_mem::WriteAccess::Fault {
                        let offset = page << PAGE_SHIFT;
                        let plen = PAGE_SIZE.min(desc.used - offset);
                        let snapshot = cx.store.bytes(desc.base() + offset as u64, plen).to_vec();
                        self.pages.fault_in(desc.id, page, &snapshot);
                        (cx.charge)(Category::WriteTrap, cx.cost.page_write_fault);
                        cx.counters.write_faults += 1;
                    }
                }
            }
        }
    }

    fn seen_token(&self, lock: usize, binding: &Binding) -> SeenToken {
        (self.last_seen[lock], binding.version())
    }

    fn collect_for(
        &mut self,
        cx: &mut DetectCx<'_>,
        _lock: usize,
        binding: &Binding,
        seen: SeenToken,
    ) -> GrantPayload {
        let now = cx.clock.tick();
        let last_seen = if seen.1 == binding.version() {
            seen.0
        } else {
            EPOCH
        };
        self.harvest_paged_writes(cx, binding);
        let scan = rt::collect(
            cx.store,
            &mut self.dirty,
            &cx.spec.layout,
            binding,
            last_seen,
            now,
        );
        (cx.charge)(
            Category::WriteCollect,
            scan.clean_reads * cx.cost.dirtybit_read_clean
                + scan.dirty_reads * cx.cost.dirtybit_read_dirty,
        );
        cx.counters.clean_dirtybits_read += scan.clean_reads;
        cx.counters.dirty_dirtybits_read += scan.dirty_reads;
        GrantPayload::Rt {
            set: scan.set,
            consist_time: now,
            binding: binding.clone(),
        }
    }

    fn apply_update(
        &mut self,
        cx: &mut DetectCx<'_>,
        lock: usize,
        binding: &mut Binding,
        payload: GrantPayload,
    ) {
        let GrantPayload::Rt {
            set,
            consist_time,
            binding: sent,
        } = payload
        else {
            panic!("non-RT grant on hybrid node");
        };
        let (res, twin_bytes) = self.apply_set(cx, &set);
        (cx.charge)(
            Category::WriteCollect,
            res.dirtybits_updated * cx.cost.dirtybit_update
                + cx.cost.copy_cycles(res.bytes_applied as usize, true)
                + cx.cost.copy_cycles(twin_bytes as usize, true),
        );
        cx.counters.dirtybits_updated += res.dirtybits_updated;
        cx.counters.redundant_bytes_received += res.bytes_redundant;
        cx.counters.twin_bytes_updated += twin_bytes;
        self.last_seen[lock] = consist_time;
        binding.install(sent);
        cx.clock.observe(consist_time);
    }

    fn collect_barrier(
        &mut self,
        cx: &mut DetectCx<'_>,
        scan: &Binding,
        last_consist: u64,
        _partitioned: bool,
    ) -> UpdateSet {
        let now = cx.clock.tick();
        self.harvest_paged_writes(cx, scan);
        let res = rt::collect(
            cx.store,
            &mut self.dirty,
            &cx.spec.layout,
            scan,
            last_consist,
            now,
        );
        (cx.charge)(
            Category::WriteCollect,
            res.clean_reads * cx.cost.dirtybit_read_clean
                + res.dirty_reads * cx.cost.dirtybit_read_dirty,
        );
        cx.counters.clean_dirtybits_read += res.clean_reads;
        cx.counters.dirty_dirtybits_read += res.dirty_reads;
        res.set
    }

    fn apply_barrier(&mut self, cx: &mut DetectCx<'_>, set: &UpdateSet) {
        let (res, twin_bytes) = self.apply_set(cx, set);
        (cx.charge)(
            Category::WriteCollect,
            res.dirtybits_updated * cx.cost.dirtybit_update
                + cx.cost.copy_cycles(res.bytes_applied as usize, true)
                + cx.cost.copy_cycles(twin_bytes as usize, true),
        );
        cx.counters.dirtybits_updated += res.dirtybits_updated;
        cx.counters.redundant_bytes_received += res.bytes_redundant;
        cx.counters.twin_bytes_updated += twin_bytes;
    }
}
