//! RT-DSM detector: compiler/runtime dirtybit templates (paper §3.1–§3.2).

use midway_mem::{Addr, EPOCH};
use midway_proto::{rt, Binding, SeenToken, UpdateSet};
use midway_sim::Category;

use crate::msg::GrantPayload;
use crate::setup::SystemSpec;

use super::{DetectCx, WriteDetector};

/// The RT-DSM backend: every shared store runs a dirtybit-setting template,
/// collection scans timestamped dirtybits, application is exactly-once.
pub struct RtDetector {
    dirty: rt::DirtyMap,
    /// Per lock: the logical time as of which this processor's cache of the
    /// lock's data is consistent.
    last_seen: Vec<u64>,
    /// Item-buffer freelist: buffers of applied grants feed the next
    /// collection, so steady-state transfers allocate nothing.
    pool: midway_mem::BufPool,
}

impl RtDetector {
    /// A fresh detector for one processor of `spec`'s system.
    pub fn new(spec: &SystemSpec) -> RtDetector {
        RtDetector {
            dirty: rt::DirtyMap::new(&spec.layout),
            last_seen: vec![EPOCH; spec.locks.len()],
            pool: midway_mem::BufPool::new(),
        }
    }
}

impl WriteDetector for RtDetector {
    fn trap_write(&mut self, cx: &mut DetectCx<'_>, addr: Addr, len: usize) {
        let desc = cx.spec.layout.region_of(addr);
        let template = cx.spec.templates[desc.id].expect("allocated region has template");
        let bits = self.dirty.bits_mut(&cx.spec.layout, desc.id);
        let hit = template.invoke(bits, addr, midway_mem::StoreKind::of_len(len), &cx.cost);
        (cx.charge)(Category::WriteTrap, hit.cycles);
        if hit.misclassified {
            cx.counters.dirtybits_misclassified += 1;
        } else {
            cx.counters.dirtybits_set += hit.lines_marked;
        }
    }

    fn seen_token(&self, lock: usize, binding: &Binding) -> SeenToken {
        (self.last_seen[lock], binding.version())
    }

    fn collect_for(
        &mut self,
        cx: &mut DetectCx<'_>,
        _lock: usize,
        binding: &Binding,
        seen: SeenToken,
    ) -> GrantPayload {
        let now = cx.clock.tick();
        // A requester with a stale binding has never seen the rebound
        // ranges: scan from the epoch — its per-line timestamps still
        // filter duplicates on application.
        let last_seen = if seen.1 == binding.version() {
            seen.0
        } else {
            EPOCH
        };
        let scan = rt::collect_pooled(
            cx.store,
            &mut self.dirty,
            &cx.spec.layout,
            binding,
            last_seen,
            now,
            &mut self.pool,
        );
        (cx.charge)(
            Category::WriteCollect,
            scan.clean_reads * cx.cost.dirtybit_read_clean
                + scan.dirty_reads * cx.cost.dirtybit_read_dirty,
        );
        cx.counters.clean_dirtybits_read += scan.clean_reads;
        cx.counters.dirty_dirtybits_read += scan.dirty_reads;
        GrantPayload::Rt {
            set: scan.set,
            consist_time: now,
            binding: binding.clone(),
        }
    }

    fn apply_update(
        &mut self,
        cx: &mut DetectCx<'_>,
        lock: usize,
        binding: &mut Binding,
        payload: GrantPayload,
    ) {
        let GrantPayload::Rt {
            set,
            consist_time,
            binding: sent,
        } = payload
        else {
            panic!("non-RT grant on RT node");
        };
        let res = rt::apply(cx.store, &mut self.dirty, &cx.spec.layout, &set);
        (cx.charge)(
            Category::WriteCollect,
            res.dirtybits_updated * cx.cost.dirtybit_update
                + cx.cost.copy_cycles(res.bytes_applied as usize, true),
        );
        cx.counters.dirtybits_updated += res.dirtybits_updated;
        cx.counters.redundant_bytes_received += res.bytes_redundant;
        self.last_seen[lock] = consist_time;
        binding.install(sent);
        cx.clock.observe(consist_time);
        // The grant has been applied; its item buffers feed the next
        // collection instead of going back to the allocator.
        for item in set.items {
            self.pool.put(item.data);
        }
    }

    fn collect_barrier(
        &mut self,
        cx: &mut DetectCx<'_>,
        scan: &Binding,
        last_consist: u64,
        _partitioned: bool,
    ) -> UpdateSet {
        let now = cx.clock.tick();
        let res = rt::collect_pooled(
            cx.store,
            &mut self.dirty,
            &cx.spec.layout,
            scan,
            last_consist,
            now,
            &mut self.pool,
        );
        (cx.charge)(
            Category::WriteCollect,
            res.clean_reads * cx.cost.dirtybit_read_clean
                + res.dirty_reads * cx.cost.dirtybit_read_dirty,
        );
        cx.counters.clean_dirtybits_read += res.clean_reads;
        cx.counters.dirty_dirtybits_read += res.dirty_reads;
        res.set
    }

    fn apply_barrier(&mut self, cx: &mut DetectCx<'_>, set: &UpdateSet) {
        let res = rt::apply(cx.store, &mut self.dirty, &cx.spec.layout, set);
        (cx.charge)(
            Category::WriteCollect,
            res.dirtybits_updated * cx.cost.dirtybit_update
                + cx.cost.copy_cycles(res.bytes_applied as usize, true),
        );
        cx.counters.dirtybits_updated += res.dirtybits_updated;
        cx.counters.redundant_bytes_received += res.bytes_redundant;
    }

    fn alloc_stats(&self) -> (u64, u64) {
        (self.pool.hits, self.pool.misses)
    }
}
