//! Blast detector: the §3.5 strawman with no write detection at all.

use midway_mem::Addr;
use midway_proto::{blast, Binding, SeenToken, UpdateSet};
use midway_sim::Category;

use crate::msg::GrantPayload;

use super::{DetectCx, WriteDetector};

/// The blast backend: no trapping, no scan — every transfer ships the full
/// bound data, "unnecessarily when synchronization objects guard large
/// data objects being sparsely written".
pub struct BlastDetector;

impl WriteDetector for BlastDetector {
    fn trap_write(&mut self, _cx: &mut DetectCx<'_>, _addr: Addr, _len: usize) {}

    fn collect_for(
        &mut self,
        cx: &mut DetectCx<'_>,
        _lock: usize,
        binding: &Binding,
        _seen: SeenToken,
    ) -> GrantPayload {
        let set = blast::snapshot(cx.store, binding);
        cx.counters.full_data_sends += 1;
        (cx.charge)(
            Category::Protocol,
            cx.cost.copy_cycles(set.data_bytes() as usize, false),
        );
        GrantPayload::Flat {
            set,
            binding: binding.clone(),
        }
    }

    fn apply_update(
        &mut self,
        cx: &mut DetectCx<'_>,
        _lock: usize,
        binding: &mut Binding,
        payload: GrantPayload,
    ) {
        let GrantPayload::Flat { set, binding: sent } = payload else {
            panic!("non-flat grant on blast node");
        };
        let bytes = blast::apply(cx.store, &set);
        (cx.charge)(
            Category::WriteCollect,
            cx.cost.copy_cycles(bytes as usize, true),
        );
        binding.install(sent);
    }

    fn collect_barrier(
        &mut self,
        cx: &mut DetectCx<'_>,
        scan: &Binding,
        _last_consist: u64,
        partitioned: bool,
    ) -> UpdateSet {
        assert!(
            partitioned,
            "blast backend needs a partitioned barrier binding: \
             without write detection it cannot know what this \
             processor modified"
        );
        let set = blast::snapshot(cx.store, scan);
        cx.counters.full_data_sends += 1;
        set
    }

    fn apply_barrier(&mut self, cx: &mut DetectCx<'_>, set: &UpdateSet) {
        let bytes = blast::apply(cx.store, set);
        (cx.charge)(
            Category::WriteCollect,
            cx.cost.copy_cycles(bytes as usize, true),
        );
    }
}
