//! Running a Midway program: on the simulated cluster, or on OS threads
//! and real sockets.

use std::sync::Arc;

use midway_net::{RealCluster, RealConfig, RealError, RealMode, RealTransport, Transport};
use midway_proto::LinkStats;
use midway_sim::{Cluster, ClusterConfig, FaultPlan, ProcReport, SimError, VirtualTime};

use crate::api::Proc;
use crate::config::{BackendKind, MidwayConfig};
use crate::counters::{AvgCounters, Counters};
use crate::msg::NetMsg;
use crate::node::DsmNode;
use crate::setup::SystemSpec;
use crate::trace::{SpecBlueprint, TraceOp};

/// The outcome of a Midway run.
#[derive(Debug)]
pub struct MidwayRun<R> {
    /// Per-processor application results.
    pub results: Vec<R>,
    /// Per-processor primitive-operation counters (Table 2's raw data).
    pub counters: Vec<Counters>,
    /// Per-processor simulator accounting (clock breakdowns, messages).
    pub reports: Vec<ProcReport>,
    /// The run's finish time: the maximum final clock.
    pub finish_time: VirtualTime,
    /// Messages delivered cluster-wide.
    pub messages: u64,
    /// Per-processor reliable-channel activity (all zeros when the run's
    /// fault plan is disabled and messages travel unframed).
    pub link: Vec<LinkStats>,
    /// Per-processor FNV-1a digests of the final local memory content —
    /// the final-state equivalence check for fault-tolerance oracles.
    pub store_digests: Vec<u64>,
    /// The configuration that produced this run.
    pub cfg: MidwayConfig,
    /// Per-processor recorded operation streams. Empty unless the run was
    /// configured with [`MidwayConfig::record`].
    pub traces: Vec<Vec<TraceOp>>,
    /// The system blueprint, captured when recording (everything the
    /// `midway-replay` crate needs to rebuild the run's `SystemSpec`).
    pub blueprint: Option<SpecBlueprint>,
    /// The dynamic entry-consistency checker's report, present when the
    /// run was configured with [`MidwayConfig::check`]. Checking is
    /// strictly off-clock, so every other field is bit-for-bit identical
    /// with it on or off.
    pub check: Option<midway_check::CheckReport>,
    /// Host-side scheduler counters (event-engine perf attribution; all
    /// zeros on real transports, which have no virtual-time scheduler).
    pub sched: midway_sim::SchedStats,
    /// Per-processor detector buffer-pool `(hits, misses)` — host-side
    /// allocation attribution, never part of the modelled cost.
    pub alloc: Vec<(u64, u64)>,
}

impl<R> MidwayRun<R> {
    /// Per-processor average counters, as the paper's Table 2 reports.
    pub fn avg_counters(&self) -> AvgCounters {
        Counters::average(&self.counters)
    }

    /// Execution time in modelled seconds.
    pub fn exec_secs(&self) -> f64 {
        self.cfg.cost.cycles_to_secs(self.finish_time.cycles())
    }

    /// Application data transferred, in KB per processor (Table 2's
    /// "data transferred" row counts application data only).
    pub fn data_kb_per_proc(&self) -> f64 {
        self.avg_counters().avg(|c| c.data_bytes_sent) / 1024.0
    }

    /// Cluster-wide reliable-channel totals (all zeros on a trusted
    /// network).
    pub fn link_totals(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for l in &self.link {
            total.add(l);
        }
        total
    }

    /// Application data transferred cluster-wide, in MB (Figure 2's right
    ///-hand axis).
    pub fn data_mb_total(&self) -> f64 {
        self.counters
            .iter()
            .map(|c| c.data_bytes_sent as f64)
            .sum::<f64>()
            / (1024.0 * 1024.0)
    }
}

/// What one processor's session produces, transport-independent.
type SessionOut<R> = (
    R,
    Counters,
    LinkStats,
    u64,
    Option<Vec<TraceOp>>,
    Option<midway_check::CheckLog>,
    (u64, u64),
);

/// One processor's whole life, on any transport: build the node, run the
/// application closure, serve the cluster until quiescence, report.
fn proc_session<R, T, F>(
    cfg: MidwayConfig,
    spec: &Arc<SystemSpec>,
    h: &mut T,
    f: &F,
) -> SessionOut<R>
where
    T: Transport<Msg = NetMsg>,
    F: Fn(&mut Proc<'_, T>) -> R,
{
    let node = DsmNode::new(h.id(), cfg, Arc::clone(spec));
    node.schedule_crashes(h);
    let mut proc = Proc {
        node,
        h,
        rec: cfg.record.then(Vec::new),
    };
    let r = f(&mut proc);
    proc.node.finalize(proc.h);
    let digest = proc.node.store.digest();
    let check_log = proc.node.check.take();
    let alloc = proc.node.alloc_stats();
    (
        r,
        proc.node.counters,
        proc.node.link.stats,
        digest,
        proc.rec.take(),
        check_log,
        alloc,
    )
}

/// Cluster-level accounting carried from a finished cluster run into
/// [`assemble`]: the virtual finish time, the delivered-message count,
/// and the host-side scheduler statistics (zeroed on the real
/// transport, which has no simulator scheduler).
struct ClusterAccounting {
    finish_time: VirtualTime,
    messages: u64,
    sched: midway_sim::SchedStats,
}

/// Assembles per-processor session outputs plus cluster-level accounting
/// into a [`MidwayRun`].
fn assemble<R>(
    cfg: MidwayConfig,
    spec: &Arc<SystemSpec>,
    blueprint: Option<SpecBlueprint>,
    raw: Vec<SessionOut<R>>,
    reports: Vec<ProcReport>,
    acct: ClusterAccounting,
) -> MidwayRun<R> {
    let mut results = Vec::with_capacity(raw.len());
    let mut counters = Vec::with_capacity(raw.len());
    let mut link = Vec::with_capacity(raw.len());
    let mut store_digests = Vec::with_capacity(raw.len());
    let mut traces = Vec::new();
    let mut check_logs = Vec::new();
    let mut alloc = Vec::with_capacity(raw.len());
    for (r, c, l, d, t, k, a) in raw {
        results.push(r);
        counters.push(c);
        link.push(l);
        store_digests.push(d);
        if let Some(t) = t {
            traces.push(t);
        }
        if let Some(k) = k {
            check_logs.push(k.into_events());
        }
        alloc.push(a);
    }
    let check = cfg
        .check
        .then(|| midway_check::analyze(&spec.check_spec(), &check_logs));
    MidwayRun {
        results,
        counters,
        reports,
        finish_time: acct.finish_time,
        messages: acct.messages,
        link,
        store_digests,
        cfg,
        traces,
        blueprint,
        check,
        sched: acct.sched,
        alloc,
    }
}

fn assert_backend_supported(cfg: &MidwayConfig) {
    assert!(
        cfg.backend != BackendKind::None || cfg.procs == 1,
        "the standalone backend only supports one processor"
    );
}

/// Entry point for running Midway programs.
pub struct Midway;

impl Midway {
    /// Runs `f` once per processor against `spec` under `cfg`.
    ///
    /// The closure receives a [`Proc`] — the processor's DSM view. After it
    /// returns, the runtime keeps serving protocol requests until the whole
    /// cluster quiesces.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on deadlock (including application-level lock
    /// cycles) or if any processor's closure panics.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.backend` is [`BackendKind::None`] with more than one
    /// processor: the standalone build has no consistency machinery.
    pub fn run<R, F>(
        cfg: MidwayConfig,
        spec: &Arc<SystemSpec>,
        f: F,
    ) -> Result<MidwayRun<R>, SimError>
    where
        R: Send,
        F: Fn(&mut Proc<'_>) -> R + Send + Sync,
    {
        assert_backend_supported(&cfg);
        let blueprint = cfg.record.then(|| SpecBlueprint::capture(spec));
        let run_spec = Arc::clone(spec);
        let cluster = ClusterConfig {
            procs: cfg.procs,
            net: cfg.net,
            faults: cfg.faults,
        };
        let out = Cluster::run(cluster, move |h: &mut midway_sim::ProcHandle<NetMsg>| {
            proc_session(cfg, &run_spec, h, &f)
        })?;
        Ok(assemble(
            cfg,
            spec,
            blueprint,
            out.results,
            out.reports,
            ClusterAccounting {
                finish_time: out.finish_time,
                messages: out.messages_delivered,
                sched: out.sched,
            },
        ))
    }

    /// Runs `f` once per processor over real sockets: one OS thread per
    /// processor, loopback TCP or UDP per `real.mode`, wall-clock time
    /// standing in for the virtual clock.
    ///
    /// The protocol engine is the same code [`Midway::run`] executes; only
    /// the [`Transport`] differs. Two configuration knobs are interpreted
    /// differently here:
    ///
    /// * `cfg.net` (the simulated network's latency model) is ignored —
    ///   the kernel's loopback is the network now;
    /// * `cfg.faults` only decides whether the reliable link layer frames
    ///   messages; nothing is *injected* from it. On UDP, framing is
    ///   forced on (with [`FaultPlan::seeded`]\(0\), the zero-rate plan)
    ///   because datagrams can be genuinely lost even on loopback;
    ///   injected loss, if any, comes from [`RealMode::Udp`]'s plan.
    ///
    /// # Errors
    ///
    /// Returns [`RealError`] on protocol/application violations, socket
    /// failures, processor panics, or a watchdog abort of a hung run.
    pub fn run_real<R, F>(
        cfg: MidwayConfig,
        real: &RealConfig,
        spec: &Arc<SystemSpec>,
        f: F,
    ) -> Result<MidwayRun<R>, RealError>
    where
        R: Send,
        F: Fn(&mut Proc<'_, RealTransport<NetMsg>>) -> R + Send + Sync,
    {
        assert_backend_supported(&cfg);
        assert!(
            !cfg.faults.has_crashes(),
            "crash injection is simulator-only: real transports have no deterministic \
             clock to schedule failures against (checkpointing itself works everywhere)"
        );
        let mut cfg = cfg;
        if matches!(real.mode, RealMode::Udp { .. }) && !cfg.faults.enabled {
            cfg.faults = FaultPlan::seeded(0);
        }
        let blueprint = cfg.record.then(|| SpecBlueprint::capture(spec));
        let run_spec = Arc::clone(spec);
        let out = RealCluster::run(real, cfg.procs, move |h: &mut RealTransport<NetMsg>| {
            proc_session(cfg, &run_spec, h, &f)
        })?;
        Ok(assemble(
            cfg,
            spec,
            blueprint,
            out.results,
            out.reports,
            ClusterAccounting {
                finish_time: out.finish_time,
                messages: out.messages_delivered,
                sched: midway_sim::SchedStats::default(),
            },
        ))
    }
}
