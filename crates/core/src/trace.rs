//! Trace capture: the per-processor shared-memory operation stream and
//! the system blueprint needed to replay it.
//!
//! Under entry consistency the whole analysis of a run — every Table 2
//! counter, every virtual time — is a pure function of each processor's
//! sequence of *shared stores, synchronization operations and compute
//! charges*. Reads are local and free (Midway is update-based, so there
//! are no read misses) and therefore never recorded. The simulator is
//! conservative and deterministic, so replaying the recorded streams
//! through the same protocol machinery reproduces the original run bit
//! for bit; replaying them under a *different* backend, line size, fault
//! cost or network model is the standard trace-driven way to evaluate a
//! design point without re-running the application.
//!
//! [`TraceOp`] is the in-memory representation; the portable binary
//! encoding lives in the `midway-replay` crate.

use std::sync::Arc;

use midway_mem::{AddrRange, LayoutBuilder, MemClass, Template};
use midway_proto::Binding;

use crate::setup::SystemSpec;

/// One recorded operation of a processor's shared-memory stream.
///
/// `Work`/`Idle` preserve the virtual-time shape of the computation;
/// everything else is a shared-memory or synchronization event. Adjacent
/// `Work` charges are coalesced at record time (charging 3 then 5 cycles
/// is indistinguishable from charging 8), which keeps traces small for
/// apps that charge per element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Application compute: advance the clock by `cycles`.
    Work { cycles: u64 },
    /// Back off for `cycles` while serving protocol requests.
    Idle { cycles: u64 },
    /// One write trap covering `data.len()` bytes at `addr` (a word,
    /// doubleword or area store), and the bytes it left in memory.
    Write { addr: u64, data: Vec<u8> },
    /// Lock acquire, exclusive or shared.
    Acquire { lock: u32, exclusive: bool },
    /// Lock release, exclusive or shared.
    Release { lock: u32, exclusive: bool },
    /// Rebind the lock to new ranges (caller holds it exclusively).
    Rebind { lock: u32, ranges: Vec<AddrRange> },
    /// Cross a barrier.
    Barrier { barrier: u32 },
}

/// Appends `op` to a recording, coalescing adjacent `Work` charges.
pub(crate) fn push_op(rec: &mut Vec<TraceOp>, op: TraceOp) {
    if let (Some(TraceOp::Work { cycles: last }), TraceOp::Work { cycles }) = (rec.last_mut(), &op)
    {
        *last += cycles;
        return;
    }
    rec.push(op);
}

/// One allocation in a [`SpecBlueprint`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocSpec {
    /// Allocation name, for reports.
    pub name: String,
    /// The base address the original run observed (rebuilds are verified
    /// against it: trace addresses are only meaningful if it reproduces).
    pub addr: u64,
    /// Length in bytes.
    pub len: usize,
    /// Private allocations pay only the misclassification penalty.
    pub private: bool,
    /// Cache-line size as a shift (line is `1 << line_shift` bytes).
    pub line_shift: u32,
}

/// A barrier declaration in a [`SpecBlueprint`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BarrierSpec {
    /// The union binding RT/VM scan at the barrier.
    pub ranges: Vec<AddrRange>,
    /// Optional per-processor write partitions (for detection-free
    /// backends).
    pub partitions: Option<Vec<Vec<AddrRange>>>,
}

/// Everything needed to rebuild a run's [`SystemSpec`] from a trace file:
/// the allocation sequence plus the lock and barrier declarations.
///
/// The layout allocator is a deterministic bump allocator, so replaying
/// the same allocation sequence reproduces the original base addresses —
/// [`SpecBlueprint::build`] verifies this, making trace addresses valid
/// against the rebuilt layout.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SpecBlueprint {
    /// Allocations, in the order the original program made them.
    pub allocs: Vec<AllocSpec>,
    /// Lock bindings, indexed by `LockId`.
    pub locks: Vec<Vec<AddrRange>>,
    /// Barrier declarations, indexed by `BarrierId`.
    pub barriers: Vec<BarrierSpec>,
}

impl SpecBlueprint {
    /// Captures the blueprint of an existing system description.
    pub fn capture(spec: &SystemSpec) -> SpecBlueprint {
        let layout = spec.layout();
        let allocs = layout
            .allocs()
            .iter()
            .map(|a| {
                let desc = layout.region_of(a.addr);
                AllocSpec {
                    name: a.name.clone(),
                    addr: a.addr.raw(),
                    len: a.len,
                    private: desc.class == MemClass::Private,
                    line_shift: desc.line_shift,
                }
            })
            .collect();
        let locks = spec.locks.iter().map(|b| b.ranges().to_vec()).collect();
        let barriers = spec
            .barriers
            .iter()
            .map(|(b, parts)| BarrierSpec {
                ranges: b.ranges().to_vec(),
                partitions: parts
                    .as_ref()
                    .map(|ps| ps.iter().map(|p| p.ranges().to_vec()).collect()),
            })
            .collect();
        SpecBlueprint {
            allocs,
            locks,
            barriers,
        }
    }

    /// Rebuilds the system description by replaying the allocation
    /// sequence.
    ///
    /// # Panics
    ///
    /// Panics if any allocation lands at a different address than the
    /// original run observed (possible after [`with_shared_line_shift`]
    /// when several allocations shared a region): the trace's addresses
    /// would be meaningless against such a layout.
    ///
    /// [`with_shared_line_shift`]: SpecBlueprint::with_shared_line_shift
    pub fn build(&self) -> Arc<SystemSpec> {
        let mut lb = LayoutBuilder::new();
        for a in &self.allocs {
            let class = if a.private {
                MemClass::Private
            } else {
                MemClass::Shared
            };
            let alloc = lb.alloc(&a.name, a.len, class, a.line_shift);
            assert_eq!(
                alloc.addr.raw(),
                a.addr,
                "blueprint rebuild moved allocation `{}`: trace addresses would be invalid",
                a.name
            );
        }
        let layout = lb.build();
        let templates = (0..layout.region_slots())
            .map(|id| layout.region(id).map(Template::for_region))
            .collect();
        Arc::new(SystemSpec {
            layout,
            templates,
            locks: self.locks.iter().cloned().map(Binding::new).collect(),
            barriers: self
                .barriers
                .iter()
                .map(|b| {
                    (
                        Binding::new(b.ranges.clone()),
                        b.partitions
                            .as_ref()
                            .map(|ps| ps.iter().cloned().map(Binding::new).collect()),
                    )
                })
                .collect(),
        })
    }

    /// A copy with every *shared* allocation's cache-line size replaced
    /// (the line-size ablation: replay one trace under many line sizes).
    ///
    /// Only valid when the change keeps every base address in place —
    /// [`build`](SpecBlueprint::build) verifies; one shared allocation per
    /// region (the common case) is always safe.
    pub fn with_shared_line_shift(&self, line_shift: u32) -> SpecBlueprint {
        let mut out = self.clone();
        for a in &mut out.allocs {
            if !a.private {
                a.line_shift = line_shift;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SystemBuilder;

    fn sample_spec() -> Arc<SystemSpec> {
        let mut b = SystemBuilder::new();
        let x = b.shared_array::<f64>("x", 64, 4);
        let s = b.private_array::<u64>("scratch", 16);
        let _ = b.lock(vec![x.range(0..32)]);
        let _ = b.barrier_partitioned(
            vec![x.full_range()],
            vec![vec![x.range(0..32)], vec![x.range(32..64)]],
        );
        let _ = s;
        b.build()
    }

    #[test]
    fn capture_then_build_reproduces_layout_and_sync() {
        let spec = sample_spec();
        let bp = SpecBlueprint::capture(&spec);
        let rebuilt = bp.build();
        assert_eq!(SpecBlueprint::capture(&rebuilt), bp);
        assert_eq!(rebuilt.locks(), spec.locks());
        assert_eq!(rebuilt.barriers(), spec.barriers());
        let allocs = spec.layout().allocs();
        for (a, b) in allocs.iter().zip(rebuilt.layout().allocs()) {
            assert_eq!(a.addr, b.addr);
            assert_eq!(a.len, b.len);
        }
    }

    #[test]
    fn line_shift_override_rebuilds_with_new_lines() {
        let spec = sample_spec();
        let bp = SpecBlueprint::capture(&spec).with_shared_line_shift(9);
        let rebuilt = bp.build();
        let a = &rebuilt.layout().allocs()[0];
        assert_eq!(rebuilt.layout().region_of(a.addr).line_size(), 512);
    }

    #[test]
    fn work_charges_coalesce() {
        let mut rec = Vec::new();
        push_op(&mut rec, TraceOp::Work { cycles: 3 });
        push_op(&mut rec, TraceOp::Work { cycles: 5 });
        push_op(&mut rec, TraceOp::Barrier { barrier: 0 });
        push_op(&mut rec, TraceOp::Work { cycles: 2 });
        assert_eq!(
            rec,
            vec![
                TraceOp::Work { cycles: 8 },
                TraceOp::Barrier { barrier: 0 },
                TraceOp::Work { cycles: 2 },
            ]
        );
    }
}
