//! Derived write-detection cost reports (Tables 3, 4 and 5).
//!
//! The paper computes these "by measuring the costs of the primitive
//! operations and multiplying by the average per-processor number of
//! invocations for each application". These helpers apply exactly those
//! formulas to a run's counters, so the simulation's execution times and
//! the analytic tables can be cross-checked against each other.

use midway_check::{CheckReport, FindingKind};
use midway_stats::CostModel;

use crate::config::BackendKind;
use crate::counters::AvgCounters;

/// Per-kind finding counts of a checker report, in [`FindingKind::ALL`]
/// order plus the total — the row the race-check tables print alongside
/// the counter-derived columns.
pub fn check_counts(report: &CheckReport) -> Vec<(&'static str, u64)> {
    FindingKind::ALL
        .iter()
        .map(|k| (k.label(), report.count(*k)))
        .chain([("total", report.total())])
        .collect()
}

/// Write-trapping time in milliseconds (Table 3).
///
/// RT-DSM: dirtybits set × set cost, plus misclassified writes at the
/// private-template penalty. VM-DSM: write faults × the fault service
/// cost (including twin and protection — the sweepable Figure 3 axis).
pub fn trapping_millis(kind: BackendKind, avg: &AvgCounters, cost: &CostModel) -> f64 {
    let cycles = match kind {
        BackendKind::Rt => {
            avg.avg(|c| c.dirtybits_set) * cost.dirtybit_set_word as f64
                + avg.avg(|c| c.dirtybits_misclassified) * cost.dirtybit_set_private as f64
        }
        BackendKind::Vm => avg.avg(|c| c.write_faults) * cost.page_write_fault as f64,
        // Hybrid traps through both mechanisms, each region through one.
        BackendKind::Hybrid => {
            avg.avg(|c| c.dirtybits_set) * cost.dirtybit_set_word as f64
                + avg.avg(|c| c.dirtybits_misclassified) * cost.dirtybit_set_private as f64
                + avg.avg(|c| c.write_faults) * cost.page_write_fault as f64
        }
        _ => 0.0,
    };
    cycles / cost.mhz as f64 / 1_000.0
}

/// Write-collection time in milliseconds (Table 4), split into the
/// paper's rows.
#[derive(Clone, Copy, Debug, Default)]
pub struct CollectionBreakdown {
    /// RT: clean dirtybits read.
    pub rt_clean_reads_ms: f64,
    /// RT: dirty dirtybits read.
    pub rt_dirty_reads_ms: f64,
    /// RT: dirtybits updated at the requester.
    pub rt_updates_ms: f64,
    /// VM: pages diffed (at the paper's uniform 260 µs estimate).
    pub vm_diff_ms: f64,
    /// VM: pages write-protected.
    pub vm_protect_ms: f64,
    /// VM: data updated in twins (warm-cache copy).
    pub vm_twin_ms: f64,
}

impl CollectionBreakdown {
    /// Total collection time in milliseconds.
    pub fn total(&self) -> f64 {
        self.rt_clean_reads_ms
            + self.rt_dirty_reads_ms
            + self.rt_updates_ms
            + self.vm_diff_ms
            + self.vm_protect_ms
            + self.vm_twin_ms
    }
}

/// Write-collection time (Table 4).
///
/// Note: like the paper's table, the VM diff row charges every diff at the
/// uniform-page cost (260 µs); the simulation itself charges the
/// fragmentation-sensitive cost.
pub fn collection_millis(
    kind: BackendKind,
    avg: &AvgCounters,
    cost: &CostModel,
) -> CollectionBreakdown {
    let to_ms = |cycles: f64| cycles / cost.mhz as f64 / 1_000.0;
    let mut b = CollectionBreakdown::default();
    // Hybrid collection harvests page diffs into the dirtybit scan, so its
    // cost is the sum of both backends' rows.
    if matches!(kind, BackendKind::Rt | BackendKind::Hybrid) {
        b.rt_clean_reads_ms =
            avg.avg(|c| c.clean_dirtybits_read) * cost.dirtybit_read_clean_us / 1_000.0;
        b.rt_dirty_reads_ms =
            avg.avg(|c| c.dirty_dirtybits_read) * cost.dirtybit_read_dirty_us / 1_000.0;
        b.rt_updates_ms = avg.avg(|c| c.dirtybits_updated) * cost.dirtybit_update_us / 1_000.0;
    }
    if matches!(kind, BackendKind::Vm | BackendKind::Hybrid) {
        b.vm_diff_ms = avg.avg(|c| c.pages_diffed) * cost.page_diff_uniform_us / 1_000.0;
        b.vm_protect_ms = to_ms(avg.avg(|c| c.pages_write_protected) * cost.protect_ro as f64);
        b.vm_twin_ms =
            to_ms(avg.avg(|c| c.twin_bytes_updated) / 1024.0 * cost.copy_per_kb_warm as f64);
    }
    b
}

/// Memory references incurred by write detection, in thousands (Table 5).
///
/// RT trapping: one store per dirtybit set. RT collection: one reference
/// per dirtybit read or updated (the table's accounting). VM trapping: a
/// read and a write per word of each twinned page. VM collection: a read
/// of page and twin per word of each diffed page, plus the words applied
/// to twins.
pub fn memory_refs_thousands(kind: BackendKind, avg: &AvgCounters, cost: &CostModel) -> (f64, f64) {
    let words_per_page = cost.page_size as f64 / 4.0;
    match kind {
        BackendKind::Rt => {
            let trap = avg.avg(|c| c.dirtybits_set) + avg.avg(|c| c.dirtybits_misclassified);
            let collect = avg.avg(|c| c.clean_dirtybits_read)
                + avg.avg(|c| c.dirty_dirtybits_read)
                + avg.avg(|c| c.dirtybits_updated);
            (trap / 1_000.0, collect / 1_000.0)
        }
        BackendKind::Vm => {
            let trap = avg.avg(|c| c.write_faults) * 2.0 * words_per_page;
            let collect = avg.avg(|c| c.pages_diffed) * 2.0 * words_per_page
                + avg.avg(|c| c.twin_bytes_updated) / 4.0;
            (trap / 1_000.0, collect / 1_000.0)
        }
        _ => (0.0, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;

    /// The paper's own water numbers as a cross-check: Table 2 counts must
    /// reproduce Table 3/4/5 entries under these formulas.
    fn water_rt() -> AvgCounters {
        Counters::average(&[Counters {
            dirtybits_set: 43_180,
            clean_dirtybits_read: 48_552,
            dirty_dirtybits_read: 11_280,
            dirtybits_updated: 35_676,
            ..Counters::default()
        }])
    }

    fn water_vm() -> AvgCounters {
        Counters::average(&[Counters {
            write_faults: 258,
            pages_diffed: 253,
            pages_write_protected: 253,
            twin_bytes_updated: 976 * 1024,
            ..Counters::default()
        }])
    }

    #[test]
    fn table3_water_row_reproduces() {
        let cost = CostModel::r3000_mach();
        let rt = trapping_millis(BackendKind::Rt, &water_rt(), &cost);
        assert!((rt - 15.5).abs() < 0.2, "paper: 15.6 ms, got {rt}");
        let vm = trapping_millis(BackendKind::Vm, &water_vm(), &cost);
        assert!((vm - 309.6).abs() < 0.5, "paper: 309.6 ms, got {vm}");
    }

    #[test]
    fn table4_water_row_reproduces() {
        let cost = CostModel::r3000_mach();
        let rt = collection_millis(BackendKind::Rt, &water_rt(), &cost);
        assert!((rt.rt_clean_reads_ms - 10.5).abs() < 0.5, "paper: 10.5");
        assert!((rt.rt_dirty_reads_ms - 2.0).abs() < 0.5, "paper: 2.0");
        assert!((rt.rt_updates_ms - 2.4).abs() < 0.6, "paper: 2.4");
        assert!((rt.total() - 14.9).abs() < 1.0, "paper: 14.9");
        let vm = collection_millis(BackendKind::Vm, &water_vm(), &cost);
        assert!(
            (vm.vm_diff_ms - 65.8).abs() < 1.0,
            "paper: 65.8, got {}",
            vm.vm_diff_ms
        );
        assert!((vm.vm_protect_ms - 32.1).abs() < 0.5, "paper: 32.1");
        assert!((vm.vm_twin_ms - 25.4).abs() < 0.5, "paper: 25.4");
        assert!((vm.total() - 123.3).abs() < 1.5, "paper: 123.3");
    }

    #[test]
    fn table5_water_row_reproduces() {
        let cost = CostModel::r3000_mach();
        let (trap, collect) = memory_refs_thousands(BackendKind::Rt, &water_rt(), &cost);
        assert!((trap - 43.2).abs() < 0.5, "paper: 43");
        assert!((collect - 95.5).abs() < 1.0, "paper: 96, got {collect}");
        let (vtrap, vcollect) = memory_refs_thousands(BackendKind::Vm, &water_vm(), &cost);
        assert!((vtrap - 528.4).abs() < 1.0, "paper: 510 (approx)");
        assert!((vcollect - 768.1).abs() < 2.0, "paper: 768, got {vcollect}");
    }

    #[test]
    fn check_counts_row_covers_every_kind_plus_total() {
        let mut r = CheckReport {
            counts: [3, 0, 2, 1],
            ..CheckReport::default()
        };
        r.events = 10;
        let row = check_counts(&r);
        assert_eq!(row.len(), FindingKind::ALL.len() + 1);
        for (k, (label, n)) in FindingKind::ALL.iter().zip(&row) {
            assert_eq!(*label, k.label());
            assert_eq!(*n, r.count(*k));
        }
        assert_eq!(row.last(), Some(&("total", 6)));
    }

    #[test]
    fn other_backends_report_zero() {
        let avg = water_rt();
        let cost = CostModel::r3000_mach();
        assert_eq!(trapping_millis(BackendKind::Blast, &avg, &cost), 0.0);
        assert_eq!(
            collection_millis(BackendKind::Blast, &avg, &cost).total(),
            0.0
        );
    }
}
