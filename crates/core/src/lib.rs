//! The Midway distributed shared memory reproduction.
//!
//! This crate implements the system of *"Software Write Detection for a
//! Distributed Shared Memory"* (Zekauskas, Sawdon & Bershad, OSDI '94):
//! an entry-consistency DSM with pluggable write-detection backends —
//! RT-DSM (compiler/runtime dirtybits, the paper's contribution), VM-DSM
//! (page protection, twins and diffs), plus the §3.5 alternatives (blast
//! and twin-everything) — running on a deterministic virtual-time cluster
//! simulator.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use midway_core::{BackendKind, Midway, MidwayConfig, SystemBuilder};
//!
//! // Two processors increment a shared counter under a lock.
//! let mut b = SystemBuilder::new();
//! let counter = b.shared_array::<u64>("counter", 1, 1);
//! let lock = b.lock(vec![counter.full_range()]);
//! let spec = b.build();
//!
//! let run = Midway::run(MidwayConfig::new(2, BackendKind::Rt), &spec, |p| {
//!     for _ in 0..10 {
//!         p.acquire(lock);
//!         let v = p.read(&counter, 0);
//!         p.write(&counter, 0, v + 1);
//!         p.release(lock);
//!     }
//!     p.acquire(lock);
//!     let v = p.read(&counter, 0);
//!     p.release(lock);
//!     v
//! })
//! .unwrap();
//! // Whoever read last saw all 20 increments.
//! assert_eq!(*run.results.iter().max().unwrap(), 20);
//! ```

mod api;
mod config;
mod counters;
pub mod detect;
mod msg;
mod node;
pub mod report;
mod run;
mod setup;
pub mod trace;
mod wire;

pub use api::Proc;
pub use config::{BackendKind, BarrierShape, MidwayConfig};
pub use counters::{AvgCounters, Counters};
pub use detect::{DetectCx, WriteDetector};
pub use msg::{DsmMsg, GrantPayload, NetMsg};
pub use run::{Midway, MidwayRun};
pub use setup::{Scalar, SharedArray, SystemBuilder, SystemSpec};
pub use trace::{AllocSpec, BarrierSpec, SpecBlueprint, TraceOp};

// Re-export the identifiers applications need.
pub use midway_check::{ApplyStats, CheckReport, CheckSpec, Finding, FindingKind, Staleness};
pub use midway_mem::AddrRange;
pub use midway_net::{RealConfig, RealError, RealMode, RealTransport, Transport};
pub use midway_proto::{BarrierId, HomeMap, LinkStats, LockId, Mode, ReliableParams};
pub use midway_sim::SchedStats;
pub use midway_sim::{FaultPlan, FaultStats, NetModel, SimError, SplitMix64, VirtualTime};
pub use midway_stats::CostModel;
