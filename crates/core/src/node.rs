//! The per-processor DSM runtime: a backend-agnostic entry-consistency
//! protocol engine.
//!
//! All backend-specific behavior — trapping, collection, application,
//! last-seen bookkeeping — lives behind the [`WriteDetector`] trait in
//! [`crate::detect`]; this module and its submodules own only the protocol
//! state (bindings, hold state, homes, barrier sites) and the message
//! plumbing:
//!
//! * [`locks`] — the acquire/release/rebind path;
//! * [`barriers`] — the barrier arrive/release path;
//! * [`transfer`] — grant construction, transfer routing, and grant
//!   application.

use std::sync::Arc;

use midway_check::CheckLog;
use midway_mem::{Addr, LocalStore};
use midway_net::Transport;
use midway_proto::{
    BarrierId, BarrierSite, Binding, HomeLock, LamportClock, LockId, Mode, TreeSite, TreeTopology,
};
use midway_sim::Category;

use crate::config::{BarrierShape, MidwayConfig};
use crate::counters::Counters;
use crate::detect::{DetectCx, WriteDetector};
use crate::msg::{DsmMsg, NetMsg};
use crate::setup::SystemSpec;

use self::link::LinkLayer;
use self::recover::{RecoveryLog, SyncSnapshot};

mod barriers;
mod link;
mod locks;
mod recover;
mod transfer;

/// Per-lock protocol state (backend state lives in the detector).
struct LockNode {
    binding: Binding,
    held: Option<Mode>,
}

/// This processor's share of one barrier's coordination, shaped by
/// [`BarrierShape`].
enum BarrierCoord {
    /// Flat: only the manager holds a site; everyone else holds nothing.
    Flat(Option<BarrierSite>),
    /// Combining tree: every processor is a tree node.
    Tree(TreeSite),
}

/// Per-barrier protocol state.
struct BarrierNode {
    binding: Binding,
    partition: Option<Binding>,
    episode: u64,
    /// The logical time as of which this processor saw the barrier's data
    /// consistent (the last-seen time RT-style detectors scan from).
    last_consist: u64,
    released: bool,
}

/// One processor's DSM runtime.
pub(crate) struct DsmNode {
    me: usize,
    procs: usize,
    cfg: MidwayConfig,
    spec: Arc<SystemSpec>,
    pub(crate) store: LocalStore,
    clock: LamportClock,
    detect: Box<dyn WriteDetector>,
    locks: Vec<LockNode>,
    homes: Vec<Option<HomeLock>>,
    barriers: Vec<BarrierNode>,
    sites: Vec<BarrierCoord>,
    tick_pending: bool,
    pub(crate) link: LinkLayer,
    pub(crate) counters: Counters,
    /// Crash fence: messages and timers *delivered* before this cycle were
    /// in flight while the processor was dark and are dropped (0 = never
    /// crashed). Reliable-channel retransmission repairs the losses.
    fence_before: u64,
    /// Stable-storage recovery log (checkpoints + write-ahead log);
    /// `None` when checkpointing is off, which keeps every hot path and
    /// charge bit-identical to the pre-crash-tolerance runtime.
    recovery: Option<Box<RecoveryLog>>,
    /// The dynamic checker's event log, present when
    /// [`MidwayConfig::check`] is on. Strictly off-clock: appended to
    /// outside the virtual-time accounting, never consulted by the
    /// protocol.
    pub(crate) check: Option<CheckLog>,
}

/// Builds a [`DetectCx`] from disjoint borrows of a node plus a charging
/// closure over the transport handle, and runs `$body` with `$det` bound
/// to the detector. A macro (not a method) so the borrow checker sees the
/// field-level split: the detector never aliases the context it receives.
macro_rules! with_detector {
    ($node:expr, $h:expr, |$det:ident, $cx:ident| $body:expr) => {{
        let node = &mut *$node;
        let h = &mut *$h;
        let mut charge = |cat: Category, cycles: u64| h.charge(cat, cycles);
        let mut $cx = DetectCx {
            store: &mut node.store,
            spec: node.spec.as_ref(),
            cost: node.cfg.cost,
            clock: &mut node.clock,
            counters: &mut node.counters,
            charge: &mut charge,
        };
        let $det = &mut *node.detect;
        $body
    }};
}
pub(crate) use with_detector;

impl DsmNode {
    pub fn new(me: usize, cfg: MidwayConfig, spec: Arc<SystemSpec>) -> DsmNode {
        let procs = cfg.procs;
        let detect = cfg.backend.new_detector(&cfg, &spec);
        let locks: Vec<LockNode> = spec
            .locks
            .iter()
            .map(|b| LockNode {
                binding: b.clone(),
                held: None,
            })
            .collect();
        let homes = (0..spec.locks.len())
            .map(|i| {
                let home = cfg.home_map.lock_home(LockId(i as u32), procs);
                (home == me).then(|| HomeLock::new(home))
            })
            .collect();
        let barriers: Vec<BarrierNode> = spec
            .barriers
            .iter()
            .map(|(b, parts)| BarrierNode {
                binding: b.clone(),
                partition: parts.as_ref().map(|p| p[me].clone()),
                episode: 0,
                last_consist: midway_mem::EPOCH,
                released: false,
            })
            .collect();
        let sites = (0..spec.barriers.len())
            .map(|i| {
                let mgr = cfg.home_map.barrier_manager(BarrierId(i as u32), procs);
                match cfg.barrier {
                    BarrierShape::Flat => {
                        BarrierCoord::Flat((mgr == me).then(|| BarrierSite::new(procs)))
                    }
                    BarrierShape::Tree { arity } => BarrierCoord::Tree(TreeSite::new(
                        me,
                        TreeTopology::new(procs, arity as usize, mgr),
                    )),
                }
            })
            .collect();
        let recovery = cfg.effective_checkpoint_every().map(|k| {
            Box::new(RecoveryLog::new(
                k,
                SyncSnapshot::capture(&locks, &barriers),
            ))
        });
        DsmNode {
            me,
            procs,
            cfg,
            store: LocalStore::new(Arc::clone(&spec.layout)),
            clock: LamportClock::new(),
            detect,
            locks,
            homes,
            barriers,
            sites,
            tick_pending: false,
            link: LinkLayer::new(procs, cfg.faults.enabled, cfg.reliable),
            counters: Counters::default(),
            fence_before: 0,
            recovery,
            check: cfg.check.then(CheckLog::new),
            spec,
        }
    }

    /// Posts this processor's scheduled crash notices as self-delivered
    /// timer events. Called once, right after construction: a pending
    /// crash notice keeps the scheduler's queue non-empty, so the cluster
    /// cannot quiesce past a scheduled crash and every crash is delivered
    /// deterministically at its planned cycle.
    pub fn schedule_crashes<T: Transport<Msg = NetMsg>>(&self, h: &mut T) {
        for c in self.cfg.faults.crashes_for(self.me) {
            h.post_self(NetMsg::Crash { down: c.down }, c.at);
        }
    }

    /// Waits `cycles` of virtual time while serving protocol requests.
    ///
    /// Applications use this for backoff in polling loops (task queues,
    /// dependence counters). Unlike pure compute, an idle wait lets other
    /// processors' messages through — including requests this processor
    /// must answer for anyone to make progress.
    pub fn idle<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, cycles: u64) {
        debug_assert!(!self.tick_pending, "nested idle");
        self.tick_pending = true;
        h.post_self(NetMsg::Tick, cycles);
        self.pump_until(h, |n| !n.tick_pending);
    }

    /// Traps a store of `len` bytes at `addr` *before* the data is written
    /// (paper §3.1 / §3.3; the mechanism is the detector's).
    pub fn trap_write<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, addr: Addr, len: usize) {
        with_detector!(self, h, |det, cx| det.trap_write(&mut cx, addr, len));
    }

    /// The binding this node currently knows for `lock`.
    pub fn binding(&self, lock: LockId) -> &Binding {
        &self.locks[lock.0 as usize].binding
    }

    /// The detector's buffer-pool `(hits, misses)` — host-side allocation
    /// attribution only.
    pub fn alloc_stats(&self) -> (u64, u64) {
        self.detect.alloc_stats()
    }

    /// Serves protocol messages until `done` holds.
    fn pump_until<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        done: impl Fn(&DsmNode) -> bool,
    ) {
        while !done(self) {
            let (t, src, msg) = h.recv();
            self.handle_net(h, t.cycles(), src, msg);
        }
    }

    /// Serves protocol messages until the whole cluster quiesces.
    pub fn finalize<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T) {
        while let Some((t, src, msg)) = h.drain_recv() {
            self.handle_net(h, t.cycles(), src, msg);
        }
    }

    /// Dispatches one transport-level message delivered at cycle `t`: the
    /// crash fence drops pre-crash stragglers, then the link layer peels
    /// framing, timers, and acks; protocol messages that survive
    /// sequencing go to [`Self::handle_dsm`] in order.
    fn handle_net<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        t: u64,
        src: usize,
        msg: NetMsg,
    ) {
        if t < self.fence_before {
            // Delivered while this processor was dark: the NIC was off and
            // a restart does not replay the wire. Dropped data frames come
            // back via the sender's retransmit timer; dropped acks via the
            // duplicate-triggered re-ack path; dropped local timers are
            // re-armed by recovery.
            self.counters.fenced_messages += 1;
            return;
        }
        match msg {
            NetMsg::Tick => {
                self.tick_pending = false;
            }
            NetMsg::RetxCheck { peer } => self.link.on_timer(h, peer),
            NetMsg::Raw(m) => self.handle_dsm(h, src, m),
            NetMsg::Data {
                seq,
                ack,
                epoch,
                msg,
            } => {
                let mut deliver = Vec::new();
                let header = link::FrameHeader { seq, ack, epoch };
                self.link.on_data(h, src, header, msg, &mut deliver);
                for m in deliver {
                    self.handle_dsm(h, src, m);
                }
                // Any response the handlers sent to `src` carried the ack;
                // otherwise acknowledge explicitly.
                self.link.flush_ack(h, src);
            }
            NetMsg::Ack { ack, epoch } => self.link.on_ack(h, src, ack, epoch),
            NetMsg::Crash { down } => self.on_crash(h, down),
        }
    }

    /// The processor fails now and restarts `down` cycles later (the
    /// fault plan delivered this as a self-posted notice). Fail-stop with
    /// stable storage: everything in flight to the dark NIC is fenced,
    /// while the durable state is re-proven by reconstructing the store
    /// and synchronization state from checkpoint + log and asserting them
    /// identical to the live node before resuming — detectable recovery,
    /// never a silent one.
    fn on_crash<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, down: u64) {
        let recovered_at = h.now().cycles() + down;
        self.counters.crashes += 1;
        self.counters.downtime_cycles += down;
        h.charge(Category::Wait, down);
        self.fence_before = recovered_at;
        // An in-flight idle Tick was fenced with everything else; cut the
        // wait short rather than blocking on a timer that never arrives.
        self.tick_pending = false;
        let epoch = self.link.epoch + 1;
        self.link.on_recover(h, epoch);
        self.recover(h);
        let seq = self.recovery.as_ref().map_or(0, |r| r.seq());
        h.note_recovery_status(epoch, seq);
    }

    /// Replays stable storage — the newest valid checkpoint image plus
    /// the write-ahead log — into a fresh store and sync state, asserts
    /// both match the live node, and swaps the rebuilt store in.
    fn recover<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T) {
        let Some(rec) = self.recovery.as_deref() else {
            h.protocol_violation(format!(
                "processor {} crashed with checkpointing disabled: nothing to recover from",
                self.me
            ));
        };
        let out = match rec.reconstruct(self.store.layout()) {
            Ok(out) => out,
            Err(e) => h.protocol_violation(format!("processor {} recovery failed: {e}", self.me)),
        };
        self.counters.recovery_replay_bytes += out.replay_bytes;
        let cycles = self.cfg.cost.copy_cycles(out.replay_bytes as usize, false);
        self.counters.recovery_cycles += cycles;
        h.charge(Category::Protocol, cycles);
        if out.store.digest() != self.store.digest() {
            h.protocol_violation(format!(
                "processor {} recovered a divergent store: checkpoint + log replay does not \
                 reproduce the pre-crash memory",
                self.me
            ));
        }
        let live = SyncSnapshot::capture(&self.locks, &self.barriers);
        if out.sync != live {
            h.protocol_violation(format!(
                "processor {} recovered divergent synchronization state: lock bindings or \
                 barrier episodes do not match the pre-crash protocol state",
                self.me
            ));
        }
        self.store = out.store;
    }

    /// Appends the post-image of a just-performed store write to the
    /// write-ahead log. Post-images — read back *after* the write lands —
    /// make log replay insensitive to updates the detector chose not to
    /// apply: replaying what memory actually held can never resurrect
    /// overwritten data.
    pub(crate) fn wal_write<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        addr: Addr,
        len: usize,
    ) {
        if self.recovery.is_none() || len == 0 {
            return;
        }
        let mut logged = 0;
        for piece in midway_mem::split_by_region(addr.raw()..addr.raw() + len as u64) {
            let plen = (piece.end - piece.start) as usize;
            let bytes = self.store.bytes(Addr(piece.start), plen);
            let rec = self.recovery.as_deref_mut().expect("checked above");
            logged += rec.log_write(piece.start, bytes);
        }
        self.charge_wal(h, logged);
    }

    /// Logs `lock`'s hold state and binding to the write-ahead log
    /// (called whenever either changes).
    pub(crate) fn wal_lock<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, idx: usize) {
        let Some(rec) = self.recovery.as_deref_mut() else {
            return;
        };
        let l = &self.locks[idx];
        let logged = rec.log_lock(idx, recover::held_code(l.held), l.binding.ranges());
        self.charge_wal(h, logged);
    }

    /// Logs `barrier`'s episode progress to the write-ahead log.
    pub(crate) fn wal_barrier<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, idx: usize) {
        let Some(rec) = self.recovery.as_deref_mut() else {
            return;
        };
        let b = &self.barriers[idx];
        let logged = rec.log_barrier(idx, b.episode, b.last_consist);
        self.charge_wal(h, logged);
    }

    fn charge_wal<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, logged: u64) {
        self.counters.wal_bytes_logged += logged;
        h.charge(
            Category::Protocol,
            self.cfg.cost.copy_cycles(logged as usize, false),
        );
    }

    /// Counts one synchronization boundary (a release or a completed
    /// barrier) against the checkpoint interval, writing a checksummed
    /// image of the store and synchronization state on every K-th.
    pub(crate) fn checkpoint_boundary<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T) {
        let Some(mut rec) = self.recovery.take() else {
            return;
        };
        if rec.note_boundary() {
            let sync = SyncSnapshot::capture(&self.locks, &self.barriers);
            let img =
                recover::encode_checkpoint(rec.seq() + 1, self.link.epoch, &self.store, &sync);
            let bytes = img.len() as u64;
            rec.install_image(img);
            self.counters.checkpoints_written += 1;
            self.counters.checkpoint_bytes += bytes;
            h.charge(
                Category::Protocol,
                self.cfg.cost.copy_cycles(bytes as usize, false),
            );
            h.note_recovery_status(self.link.epoch, rec.seq());
        }
        self.recovery = Some(rec);
    }

    fn handle_dsm<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, src: usize, msg: DsmMsg) {
        match msg {
            DsmMsg::AcquireReq { lock, mode, seen } => {
                let Some(home) = self.homes[lock.0 as usize].as_mut() else {
                    h.protocol_violation(format!(
                        "acquire for {lock:?} from processor {src} routed to processor {}, \
                         which is not the lock's home",
                        self.me
                    ));
                };
                let transfers = home.acquire(src, mode, seen);
                self.do_transfers(h, lock, transfers);
            }
            DsmMsg::ReleaseNotify { lock, mode } => {
                let Some(home) = self.homes[lock.0 as usize].as_mut() else {
                    h.protocol_violation(format!(
                        "release of {lock:?} from processor {src} routed to processor {}, \
                         which is not the lock's home",
                        self.me
                    ));
                };
                let transfers = home.release(src, mode);
                self.do_transfers(h, lock, transfers);
            }
            DsmMsg::TransferReq {
                lock,
                requester,
                mode,
                seen,
            } => {
                debug_assert_ne!(requester, self.me, "home short-circuits self-transfers");
                let payload = self.collect_for(h, lock, seen);
                self.send_grant(h, lock, mode, requester, payload);
            }
            DsmMsg::Grant {
                lock,
                mode,
                payload,
            } => {
                self.apply_grant(h, lock, mode, payload);
            }
            DsmMsg::BarrierArrive { barrier, set, time } => {
                self.handle_barrier_arrive(h, barrier, src, set, time);
            }
            DsmMsg::BarrierRelease { barrier, set, time } => {
                self.handle_barrier_release(h, barrier, set, time);
            }
        }
    }
}
