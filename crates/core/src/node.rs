//! The per-processor DSM runtime: a backend-agnostic entry-consistency
//! protocol engine.
//!
//! All backend-specific behavior — trapping, collection, application,
//! last-seen bookkeeping — lives behind the [`WriteDetector`] trait in
//! [`crate::detect`]; this module and its submodules own only the protocol
//! state (bindings, hold state, homes, barrier sites) and the message
//! plumbing:
//!
//! * [`locks`] — the acquire/release/rebind path;
//! * [`barriers`] — the barrier arrive/release path;
//! * [`transfer`] — grant construction, transfer routing, and grant
//!   application.

use std::sync::Arc;

use midway_check::CheckLog;
use midway_mem::{Addr, LocalStore};
use midway_net::Transport;
use midway_proto::{
    BarrierId, BarrierSite, Binding, HomeLock, LamportClock, LockId, Mode, TreeSite, TreeTopology,
};
use midway_sim::Category;

use crate::config::{BarrierShape, MidwayConfig};
use crate::counters::Counters;
use crate::detect::{DetectCx, WriteDetector};
use crate::msg::{DsmMsg, NetMsg};
use crate::setup::SystemSpec;

use self::link::LinkLayer;

mod barriers;
mod link;
mod locks;
mod transfer;

/// Per-lock protocol state (backend state lives in the detector).
struct LockNode {
    binding: Binding,
    held: Option<Mode>,
}

/// This processor's share of one barrier's coordination, shaped by
/// [`BarrierShape`].
enum BarrierCoord {
    /// Flat: only the manager holds a site; everyone else holds nothing.
    Flat(Option<BarrierSite>),
    /// Combining tree: every processor is a tree node.
    Tree(TreeSite),
}

/// Per-barrier protocol state.
struct BarrierNode {
    binding: Binding,
    partition: Option<Binding>,
    episode: u64,
    /// The logical time as of which this processor saw the barrier's data
    /// consistent (the last-seen time RT-style detectors scan from).
    last_consist: u64,
    released: bool,
}

/// One processor's DSM runtime.
pub(crate) struct DsmNode {
    me: usize,
    procs: usize,
    cfg: MidwayConfig,
    spec: Arc<SystemSpec>,
    pub(crate) store: LocalStore,
    clock: LamportClock,
    detect: Box<dyn WriteDetector>,
    locks: Vec<LockNode>,
    homes: Vec<Option<HomeLock>>,
    barriers: Vec<BarrierNode>,
    sites: Vec<BarrierCoord>,
    tick_pending: bool,
    pub(crate) link: LinkLayer,
    pub(crate) counters: Counters,
    /// The dynamic checker's event log, present when
    /// [`MidwayConfig::check`] is on. Strictly off-clock: appended to
    /// outside the virtual-time accounting, never consulted by the
    /// protocol.
    pub(crate) check: Option<CheckLog>,
}

/// Builds a [`DetectCx`] from disjoint borrows of a node plus a charging
/// closure over the transport handle, and runs `$body` with `$det` bound
/// to the detector. A macro (not a method) so the borrow checker sees the
/// field-level split: the detector never aliases the context it receives.
macro_rules! with_detector {
    ($node:expr, $h:expr, |$det:ident, $cx:ident| $body:expr) => {{
        let node = &mut *$node;
        let h = &mut *$h;
        let mut charge = |cat: Category, cycles: u64| h.charge(cat, cycles);
        let mut $cx = DetectCx {
            store: &mut node.store,
            spec: node.spec.as_ref(),
            cost: node.cfg.cost,
            clock: &mut node.clock,
            counters: &mut node.counters,
            charge: &mut charge,
        };
        let $det = &mut *node.detect;
        $body
    }};
}
pub(crate) use with_detector;

impl DsmNode {
    pub fn new(me: usize, cfg: MidwayConfig, spec: Arc<SystemSpec>) -> DsmNode {
        let procs = cfg.procs;
        let detect = cfg.backend.new_detector(&cfg, &spec);
        let locks = spec
            .locks
            .iter()
            .map(|b| LockNode {
                binding: b.clone(),
                held: None,
            })
            .collect();
        let homes = (0..spec.locks.len())
            .map(|i| {
                let home = cfg.home_map.lock_home(LockId(i as u32), procs);
                (home == me).then(|| HomeLock::new(home))
            })
            .collect();
        let barriers = spec
            .barriers
            .iter()
            .map(|(b, parts)| BarrierNode {
                binding: b.clone(),
                partition: parts.as_ref().map(|p| p[me].clone()),
                episode: 0,
                last_consist: midway_mem::EPOCH,
                released: false,
            })
            .collect();
        let sites = (0..spec.barriers.len())
            .map(|i| {
                let mgr = cfg.home_map.barrier_manager(BarrierId(i as u32), procs);
                match cfg.barrier {
                    BarrierShape::Flat => {
                        BarrierCoord::Flat((mgr == me).then(|| BarrierSite::new(procs)))
                    }
                    BarrierShape::Tree { arity } => BarrierCoord::Tree(TreeSite::new(
                        me,
                        TreeTopology::new(procs, arity as usize, mgr),
                    )),
                }
            })
            .collect();
        DsmNode {
            me,
            procs,
            cfg,
            store: LocalStore::new(Arc::clone(&spec.layout)),
            clock: LamportClock::new(),
            detect,
            locks,
            homes,
            barriers,
            sites,
            tick_pending: false,
            link: LinkLayer::new(procs, cfg.faults.enabled, cfg.reliable),
            counters: Counters::default(),
            check: cfg.check.then(CheckLog::new),
            spec,
        }
    }

    /// Waits `cycles` of virtual time while serving protocol requests.
    ///
    /// Applications use this for backoff in polling loops (task queues,
    /// dependence counters). Unlike pure compute, an idle wait lets other
    /// processors' messages through — including requests this processor
    /// must answer for anyone to make progress.
    pub fn idle<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, cycles: u64) {
        debug_assert!(!self.tick_pending, "nested idle");
        self.tick_pending = true;
        h.post_self(NetMsg::Tick, cycles);
        self.pump_until(h, |n| !n.tick_pending);
    }

    /// Traps a store of `len` bytes at `addr` *before* the data is written
    /// (paper §3.1 / §3.3; the mechanism is the detector's).
    pub fn trap_write<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, addr: Addr, len: usize) {
        with_detector!(self, h, |det, cx| det.trap_write(&mut cx, addr, len));
    }

    /// The binding this node currently knows for `lock`.
    pub fn binding(&self, lock: LockId) -> &Binding {
        &self.locks[lock.0 as usize].binding
    }

    /// Serves protocol messages until `done` holds.
    fn pump_until<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        done: impl Fn(&DsmNode) -> bool,
    ) {
        while !done(self) {
            let (_t, src, msg) = h.recv();
            self.handle_net(h, src, msg);
        }
    }

    /// Serves protocol messages until the whole cluster quiesces.
    pub fn finalize<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T) {
        while let Some((_t, src, msg)) = h.drain_recv() {
            self.handle_net(h, src, msg);
        }
    }

    /// Dispatches one transport-level message: the link layer peels
    /// framing, timers, and acks; protocol messages that survive
    /// sequencing go to [`Self::handle_dsm`] in order.
    fn handle_net<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, src: usize, msg: NetMsg) {
        match msg {
            NetMsg::Tick => {
                self.tick_pending = false;
            }
            NetMsg::RetxCheck { peer } => self.link.on_timer(h, peer),
            NetMsg::Raw(m) => self.handle_dsm(h, src, m),
            NetMsg::Data { seq, ack, msg } => {
                let mut deliver = Vec::new();
                self.link.on_data(h, src, seq, ack, msg, &mut deliver);
                for m in deliver {
                    self.handle_dsm(h, src, m);
                }
                // Any response the handlers sent to `src` carried the ack;
                // otherwise acknowledge explicitly.
                self.link.flush_ack(h, src);
            }
            NetMsg::Ack { ack } => self.link.on_ack(h, src, ack),
        }
    }

    fn handle_dsm<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, src: usize, msg: DsmMsg) {
        match msg {
            DsmMsg::AcquireReq { lock, mode, seen } => {
                let Some(home) = self.homes[lock.0 as usize].as_mut() else {
                    h.protocol_violation(format!(
                        "acquire for {lock:?} from processor {src} routed to processor {}, \
                         which is not the lock's home",
                        self.me
                    ));
                };
                let transfers = home.acquire(src, mode, seen);
                self.do_transfers(h, lock, transfers);
            }
            DsmMsg::ReleaseNotify { lock, mode } => {
                let Some(home) = self.homes[lock.0 as usize].as_mut() else {
                    h.protocol_violation(format!(
                        "release of {lock:?} from processor {src} routed to processor {}, \
                         which is not the lock's home",
                        self.me
                    ));
                };
                let transfers = home.release(src, mode);
                self.do_transfers(h, lock, transfers);
            }
            DsmMsg::TransferReq {
                lock,
                requester,
                mode,
                seen,
            } => {
                debug_assert_ne!(requester, self.me, "home short-circuits self-transfers");
                let payload = self.collect_for(h, lock, seen);
                self.send_grant(h, lock, mode, requester, payload);
            }
            DsmMsg::Grant {
                lock,
                mode,
                payload,
            } => {
                self.apply_grant(h, lock, mode, payload);
            }
            DsmMsg::BarrierArrive { barrier, set, time } => {
                self.handle_barrier_arrive(h, barrier, src, set, time);
            }
            DsmMsg::BarrierRelease { barrier, set, time } => {
                self.handle_barrier_release(h, barrier, set, time);
            }
        }
    }
}
