//! The per-processor DSM runtime: write trapping, write collection, and
//! the entry-consistency protocol engine.

use std::collections::HashMap;
use std::sync::Arc;

use midway_mem::{Addr, LocalStore, MemClass, PageTable, PAGE_SHIFT, PAGE_SIZE};
use midway_proto::{
    blast, rt, vm, BarrierId, BarrierSite, Binding, HomeLock, LamportClock, LockId, Mode, Update,
    UpdateItem, UpdateSet,
};
use midway_sim::{Category, ProcHandle};

use crate::config::{BackendKind, MidwayConfig};
use crate::counters::Counters;
use crate::msg::{DsmMsg, GrantPayload};
use crate::setup::SystemSpec;

/// Per-backend node state.
enum BackendState {
    None,
    Rt {
        dirty: rt::DirtyMap,
    },
    Vm {
        pages: PageTable,
    },
    Blast,
    TwinAll {
        twins: HashMap<(usize, usize), Box<[u8]>>,
    },
}

/// Per-lock node state.
struct LockNode {
    binding: Binding,
    held: Option<Mode>,
    /// RT: the logical time as of which this processor's cache of the
    /// lock's data is consistent.
    rt_last_seen: u64,
    /// VM: (incarnation, binding version) last seen.
    vm_last_seen: (u64, u64),
    /// VM: current incarnation (meaningful at the owner of record).
    vm_incarnation: u64,
    /// VM: the update history this processor knows.
    vm_history: vm::LockHistory,
}

/// Per-barrier node state.
struct BarrierNode {
    binding: Binding,
    partition: Option<Binding>,
    episode: u64,
    rt_last_consist: u64,
    released: bool,
}

/// One processor's DSM runtime.
pub(crate) struct DsmNode {
    me: usize,
    procs: usize,
    cfg: MidwayConfig,
    spec: Arc<SystemSpec>,
    pub(crate) store: LocalStore,
    clock: LamportClock,
    backend: BackendState,
    locks: Vec<LockNode>,
    homes: Vec<Option<HomeLock>>,
    barriers: Vec<BarrierNode>,
    sites: Vec<Option<BarrierSite>>,
    tick_pending: bool,
    pub(crate) counters: Counters,
}

impl DsmNode {
    pub fn new(me: usize, cfg: MidwayConfig, spec: Arc<SystemSpec>) -> DsmNode {
        let procs = cfg.procs;
        let layout = Arc::clone(&spec.layout);
        let backend = match cfg.backend {
            BackendKind::None => BackendState::None,
            BackendKind::Rt => BackendState::Rt {
                dirty: rt::DirtyMap::new(&layout),
            },
            BackendKind::Vm => BackendState::Vm {
                pages: PageTable::new(Arc::clone(&layout)),
            },
            BackendKind::Blast => BackendState::Blast,
            BackendKind::TwinAll => BackendState::TwinAll {
                twins: HashMap::new(),
            },
        };
        let locks = spec
            .locks
            .iter()
            .map(|b| LockNode {
                binding: b.clone(),
                held: None,
                rt_last_seen: midway_mem::EPOCH,
                vm_last_seen: (0, 0),
                vm_incarnation: 0,
                vm_history: vm::LockHistory::new(cfg.history_cap),
            })
            .collect();
        let homes = (0..spec.locks.len())
            .map(|i| {
                let home = LockId(i as u32).home(procs);
                (home == me).then(|| HomeLock::new(home))
            })
            .collect();
        let barriers = spec
            .barriers
            .iter()
            .map(|(b, parts)| BarrierNode {
                binding: b.clone(),
                partition: parts.as_ref().map(|p| p[me].clone()),
                episode: 0,
                rt_last_consist: midway_mem::EPOCH,
                released: false,
            })
            .collect();
        let sites = (0..spec.barriers.len())
            .map(|i| {
                let mgr = BarrierId(i as u32).manager(procs);
                (mgr == me).then(|| BarrierSite::new(procs))
            })
            .collect();
        DsmNode {
            me,
            procs,
            cfg,
            store: LocalStore::new(layout),
            clock: LamportClock::new(),
            backend,
            locks,
            homes,
            barriers,
            sites,
            tick_pending: false,
            counters: Counters::default(),
            spec,
        }
    }

    /// Waits `cycles` of virtual time while serving protocol requests.
    ///
    /// Applications use this for backoff in polling loops (task queues,
    /// dependence counters). Unlike pure compute, an idle wait lets other
    /// processors' messages through — including requests this processor
    /// must answer for anyone to make progress.
    pub fn idle(&mut self, h: &mut ProcHandle<DsmMsg>, cycles: u64) {
        debug_assert!(!self.tick_pending, "nested idle");
        self.tick_pending = true;
        h.post_self(DsmMsg::Tick, cycles);
        self.pump_until(h, |n| !n.tick_pending);
    }

    // ------------------------------------------------------------------
    // Write trapping (paper §3.1 / §3.3)
    // ------------------------------------------------------------------

    /// Traps a store of `len` bytes at `addr` *before* the data is written.
    pub fn trap_write(&mut self, h: &mut ProcHandle<DsmMsg>, addr: Addr, len: usize) {
        match &mut self.backend {
            BackendState::None | BackendState::Blast | BackendState::TwinAll { .. } => {}
            BackendState::Rt { dirty } => {
                let desc = self.spec.layout.region_of(addr);
                let template = self.spec.templates[desc.id].expect("allocated region has template");
                let bits = dirty.bits_mut(&self.spec.layout, desc.id);
                let hit = template.invoke(
                    bits,
                    addr,
                    midway_mem::StoreKind::of_len(len),
                    &self.cfg.cost,
                );
                h.charge(Category::WriteTrap, hit.cycles);
                if hit.misclassified {
                    self.counters.dirtybits_misclassified += 1;
                } else {
                    self.counters.dirtybits_set += hit.lines_marked;
                }
            }
            BackendState::Vm { pages } => {
                let desc = self.spec.layout.region_of(addr);
                if desc.class == MemClass::Private {
                    return;
                }
                let first = addr.page_in_region();
                let last = Addr(addr.raw() + len.max(1) as u64 - 1).page_in_region();
                for page in first..=last {
                    if pages.store_probe(desc.id, page) == midway_mem::WriteAccess::Fault {
                        let offset = page << PAGE_SHIFT;
                        let plen = PAGE_SIZE.min(desc.used - offset);
                        let snapshot = self.store.bytes(desc.base() + offset as u64, plen).to_vec();
                        pages.fault_in(desc.id, page, &snapshot);
                        h.charge(Category::WriteTrap, self.cfg.cost.page_write_fault);
                        self.counters.write_faults += 1;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Locks
    // ------------------------------------------------------------------

    /// Acquires `lock` in `mode`, blocking until granted and consistent.
    pub fn acquire(&mut self, h: &mut ProcHandle<DsmMsg>, lock: LockId, mode: Mode) {
        let idx = lock.0 as usize;
        assert!(
            self.locks[idx].held.is_none(),
            "proc {} re-acquiring held lock {lock:?}",
            self.me
        );
        self.clock.tick();
        let seen = self.seen_token(idx);
        let home = lock.home(self.procs);
        if home == self.me {
            let transfers = self.homes[idx]
                .as_mut()
                .expect("home state exists")
                .acquire(self.me, mode, seen);
            self.do_transfers(h, lock, transfers);
        } else {
            let msg = DsmMsg::AcquireReq { lock, mode, seen };
            let size = msg.wire_size();
            h.send(home, msg, size);
        }
        self.pump_until(h, |n| n.locks[idx].held.is_some());
        self.counters.lock_acquires += 1;
    }

    /// Releases `lock`. Local and asynchronous, as in Midway: data moves
    /// only when another processor asks for it.
    pub fn release(&mut self, h: &mut ProcHandle<DsmMsg>, lock: LockId, mode: Mode) {
        let idx = lock.0 as usize;
        assert_eq!(
            self.locks[idx].held,
            Some(mode),
            "proc {} releasing lock {lock:?} it does not hold in that mode",
            self.me
        );
        self.locks[idx].held = None;
        self.clock.tick();
        let home = lock.home(self.procs);
        if home == self.me {
            let transfers = self.homes[idx]
                .as_mut()
                .expect("home state exists")
                .release(self.me, mode);
            self.do_transfers(h, lock, transfers);
        } else {
            let msg = DsmMsg::ReleaseNotify { lock, mode };
            let size = msg.wire_size();
            h.send(home, msg, size);
        }
    }

    /// Rebinds `lock` to `ranges`. The caller must hold it exclusively.
    pub fn rebind(&mut self, lock: LockId, ranges: Vec<midway_mem::AddrRange>) {
        let idx = lock.0 as usize;
        assert_eq!(
            self.locks[idx].held,
            Some(Mode::Exclusive),
            "rebinding requires exclusive ownership"
        );
        self.locks[idx].binding.rebind(ranges);
        if matches!(self.backend, BackendState::Vm { .. }) {
            // Old updates describe ranges that may no longer be bound; the
            // version bump forces the next transfer to ship full data.
            self.locks[idx].vm_history.clear();
        }
    }

    /// The binding this node currently knows for `lock`.
    pub fn binding(&self, lock: LockId) -> &Binding {
        &self.locks[lock.0 as usize].binding
    }

    // ------------------------------------------------------------------
    // Barriers
    // ------------------------------------------------------------------

    /// Crosses `barrier`: ships local modifications of the bound data,
    /// waits for everyone, applies everyone else's.
    pub fn barrier(&mut self, h: &mut ProcHandle<DsmMsg>, barrier: BarrierId) {
        let idx = barrier.0 as usize;
        self.clock.tick();
        let set = self.collect_barrier(h, idx);
        self.counters.data_bytes_sent += set.data_bytes();
        let mgr = barrier.manager(self.procs);
        let time = self.clock.now();
        if mgr == self.me {
            self.handle_barrier_arrive(h, barrier, self.me, set, time);
        } else {
            // Packet construction for the shipped data.
            h.charge(
                Category::Protocol,
                self.cfg.cost.copy_cycles(set.data_bytes() as usize, true),
            );
            let msg = DsmMsg::BarrierArrive { barrier, set, time };
            let size = msg.wire_size();
            h.send(mgr, msg, size);
        }
        self.pump_until(h, |n| n.barriers[idx].released);
        self.barriers[idx].released = false;
        self.counters.barrier_waits += 1;
    }

    // ------------------------------------------------------------------
    // Engine
    // ------------------------------------------------------------------

    /// Serves protocol messages until `done` holds.
    fn pump_until(&mut self, h: &mut ProcHandle<DsmMsg>, done: impl Fn(&DsmNode) -> bool) {
        while !done(self) {
            let (_t, src, msg) = h.recv();
            self.handle(h, src, msg);
        }
    }

    /// Serves protocol messages until the whole cluster quiesces.
    pub fn finalize(&mut self, h: &mut ProcHandle<DsmMsg>) {
        while let Some((_t, src, msg)) = h.drain_recv() {
            self.handle(h, src, msg);
        }
    }

    fn handle(&mut self, h: &mut ProcHandle<DsmMsg>, src: usize, msg: DsmMsg) {
        match msg {
            DsmMsg::Tick => {
                self.tick_pending = false;
            }
            DsmMsg::AcquireReq { lock, mode, seen } => {
                let transfers = self.homes[lock.0 as usize]
                    .as_mut()
                    .expect("acquire sent to home")
                    .acquire(src, mode, seen);
                self.do_transfers(h, lock, transfers);
            }
            DsmMsg::ReleaseNotify { lock, mode } => {
                let transfers = self.homes[lock.0 as usize]
                    .as_mut()
                    .expect("release sent to home")
                    .release(src, mode);
                self.do_transfers(h, lock, transfers);
            }
            DsmMsg::TransferReq {
                lock,
                requester,
                mode,
                seen,
            } => {
                debug_assert_ne!(requester, self.me, "home short-circuits self-transfers");
                let payload = self.collect_for(h, lock, seen);
                self.send_grant(h, lock, mode, requester, payload);
            }
            DsmMsg::Grant {
                lock,
                mode,
                payload,
            } => {
                self.apply_grant(h, lock, mode, payload);
            }
            DsmMsg::BarrierArrive { barrier, set, time } => {
                self.handle_barrier_arrive(h, barrier, src, set, time);
            }
            DsmMsg::BarrierRelease { barrier, set, time } => {
                self.finish_barrier(h, barrier, set, time);
            }
        }
    }

    /// Executes the transfers a home decision produced.
    fn do_transfers(
        &mut self,
        h: &mut ProcHandle<DsmMsg>,
        lock: LockId,
        transfers: Vec<midway_proto::Transfer>,
    ) {
        for t in transfers {
            if t.old_owner == t.requester {
                // The requester's cache is already current: no data moves.
                if t.requester == self.me {
                    self.locks[lock.0 as usize].held = Some(t.mode);
                } else {
                    let msg = DsmMsg::Grant {
                        lock,
                        mode: t.mode,
                        payload: GrantPayload::Current,
                    };
                    let size = msg.wire_size();
                    h.send(t.requester, msg, size);
                }
            } else if t.old_owner == self.me {
                let payload = self.collect_for(h, lock, t.seen);
                self.send_grant(h, lock, t.mode, t.requester, payload);
            } else {
                let msg = DsmMsg::TransferReq {
                    lock,
                    requester: t.requester,
                    mode: t.mode,
                    seen: t.seen,
                };
                let size = msg.wire_size();
                h.send(t.old_owner, msg, size);
            }
        }
    }

    fn send_grant(
        &mut self,
        h: &mut ProcHandle<DsmMsg>,
        lock: LockId,
        mode: Mode,
        requester: usize,
        payload: GrantPayload,
    ) {
        debug_assert_ne!(requester, self.me);
        self.counters.data_bytes_sent += payload.data_bytes();
        // Packet construction for the shipped data.
        h.charge(
            Category::Protocol,
            self.cfg
                .cost
                .copy_cycles(payload.data_bytes() as usize, true),
        );
        let msg = DsmMsg::Grant {
            lock,
            mode,
            payload,
        };
        let size = msg.wire_size();
        h.send(requester, msg, size);
    }

    // ------------------------------------------------------------------
    // Write collection (paper §3.2 / §3.4)
    // ------------------------------------------------------------------

    fn seen_token(&self, idx: usize) -> (u64, u64) {
        let st = &self.locks[idx];
        match self.cfg.backend {
            BackendKind::Rt => (st.rt_last_seen, st.binding.version()),
            BackendKind::Vm => st.vm_last_seen,
            BackendKind::TwinAll => st.vm_last_seen,
            _ => (0, 0),
        }
    }

    /// Runs write collection as the owner of record on behalf of a
    /// requester whose last-seen token is `seen`.
    fn collect_for(
        &mut self,
        h: &mut ProcHandle<DsmMsg>,
        lock: LockId,
        seen: (u64, u64),
    ) -> GrantPayload {
        let idx = lock.0 as usize;
        self.counters.lock_transfers_served += 1;
        let cost = self.cfg.cost;
        match &mut self.backend {
            BackendState::None => {
                unreachable!("standalone runs never transfer data")
            }
            BackendState::Rt { dirty } => {
                let now = self.clock.tick();
                let st = &self.locks[idx];
                // A requester with a stale binding has never seen the
                // rebound ranges: scan from the epoch — its per-line
                // timestamps still filter duplicates on application.
                let last_seen = if seen.1 == st.binding.version() {
                    seen.0
                } else {
                    midway_mem::EPOCH
                };
                let scan = rt::collect(
                    &mut self.store,
                    dirty,
                    &self.spec.layout,
                    &st.binding,
                    last_seen,
                    now,
                );
                h.charge(
                    Category::WriteCollect,
                    scan.clean_reads * cost.dirtybit_read_clean
                        + scan.dirty_reads * cost.dirtybit_read_dirty,
                );
                self.counters.clean_dirtybits_read += scan.clean_reads;
                self.counters.dirty_dirtybits_read += scan.dirty_reads;
                GrantPayload::Rt {
                    set: scan.set,
                    consist_time: now,
                    binding: st.binding.clone(),
                }
            }
            BackendState::Vm { pages } => {
                let st = &mut self.locks[idx];
                st.vm_incarnation = st.vm_history.newest().unwrap_or(st.vm_incarnation) + 1;
                if seen.1 != st.binding.version() {
                    // The requester's binding is stale (the lock was
                    // rebound): "the incarnation number is incremented
                    // which causes all data bound to the lock to be sent
                    // without performing a diff" (paper §4, quicksort).
                    let binding = st.binding.clone();
                    let incarnation = st.vm_incarnation;
                    let full = vm::snapshot(&mut self.store, &binding);
                    self.counters.full_data_sends += 1;
                    h.charge(
                        Category::Protocol,
                        cost.copy_cycles(full.data_bytes() as usize, false),
                    );
                    let st = &mut self.locks[idx];
                    st.vm_history.clear();
                    st.vm_history.push(Update {
                        incarnation,
                        set: full.clone(),
                        full: true,
                    });
                    return GrantPayload::Vm {
                        updates: Vec::new(),
                        full: Some(full),
                        incarnation,
                        binding,
                    };
                }
                let col = vm::collect(&mut self.store, pages, &self.spec.layout, &st.binding);
                for (runs, words) in &col.diff_runs {
                    h.charge(Category::WriteCollect, cost.page_diff_cycles(*runs, *words));
                }
                h.charge(Category::WriteCollect, col.pages_cleaned * cost.protect_ro);
                self.counters.pages_diffed += col.pages_diffed;
                self.counters.pages_write_protected += col.pages_cleaned;
                st.vm_history.push(Update {
                    incarnation: st.vm_incarnation,
                    set: col.update,
                    full: false,
                });

                let binding = st.binding.clone();
                let bound_bytes = binding.data_bytes();
                let chain = if seen.1 == binding.version() {
                    st.vm_history.since(seen.0)
                } else {
                    None
                };
                let updates_ok = chain.as_ref().is_some_and(|us| {
                    us.iter().map(|u| u.set.data_bytes()).sum::<u64>() <= bound_bytes
                });
                if updates_ok {
                    GrantPayload::Vm {
                        updates: chain.expect("checked above"),
                        full: None,
                        incarnation: st.vm_incarnation,
                        binding,
                    }
                } else {
                    // History cannot serve this requester (or the
                    // concatenated updates exceed the data): full send. The
                    // snapshot subsumes all earlier incarnations, so it
                    // also becomes the base of this owner's history —
                    // otherwise one full send would beget full sends
                    // forever.
                    let full = vm::snapshot(&mut self.store, &binding);
                    self.counters.full_data_sends += 1;
                    h.charge(
                        Category::Protocol,
                        cost.copy_cycles(full.data_bytes() as usize, false),
                    );
                    let st = &mut self.locks[idx];
                    st.vm_history.clear();
                    st.vm_history.push(Update {
                        incarnation: st.vm_incarnation,
                        set: full.clone(),
                        full: true,
                    });
                    GrantPayload::Vm {
                        updates: Vec::new(),
                        full: Some(full),
                        incarnation: self.locks[idx].vm_incarnation,
                        binding: self.locks[idx].binding.clone(),
                    }
                }
            }
            BackendState::Blast => {
                let st = &self.locks[idx];
                let set = blast::snapshot(&mut self.store, &st.binding);
                self.counters.full_data_sends += 1;
                h.charge(
                    Category::Protocol,
                    cost.copy_cycles(set.data_bytes() as usize, false),
                );
                GrantPayload::Flat {
                    set,
                    binding: st.binding.clone(),
                }
            }
            BackendState::TwinAll { twins } => {
                // §3.5: "this approach would still require management of
                // the update incarnations to ensure that a chain of
                // processor updates are correctly propagated" — so TwinAll
                // keeps the same per-lock incarnation history as VM-DSM.
                let st = &mut self.locks[idx];
                st.vm_incarnation = st.vm_history.newest().unwrap_or(st.vm_incarnation) + 1;
                let set = twin_all_collect(
                    twins,
                    &mut self.store,
                    &self.spec,
                    &st.binding,
                    &cost,
                    h,
                    &mut self.counters,
                );
                let st = &mut self.locks[idx];
                st.vm_history.push(Update {
                    incarnation: st.vm_incarnation,
                    set,
                    full: false,
                });
                let binding = st.binding.clone();
                let bound_bytes = binding.data_bytes();
                let chain = if seen.1 == binding.version() {
                    st.vm_history.since(seen.0)
                } else {
                    None
                };
                let updates_ok = chain.as_ref().is_some_and(|us| {
                    us.iter().map(|u| u.set.data_bytes()).sum::<u64>() <= bound_bytes
                });
                if updates_ok {
                    GrantPayload::Vm {
                        updates: chain.expect("checked above"),
                        full: None,
                        incarnation: self.locks[idx].vm_incarnation,
                        binding,
                    }
                } else {
                    let full = vm::snapshot(&mut self.store, &binding);
                    self.counters.full_data_sends += 1;
                    h.charge(
                        Category::Protocol,
                        cost.copy_cycles(full.data_bytes() as usize, false),
                    );
                    let st = &mut self.locks[idx];
                    st.vm_history.clear();
                    st.vm_history.push(Update {
                        incarnation: st.vm_incarnation,
                        set: full.clone(),
                        full: true,
                    });
                    GrantPayload::Vm {
                        updates: Vec::new(),
                        full: Some(full),
                        incarnation: self.locks[idx].vm_incarnation,
                        binding,
                    }
                }
            }
        }
    }

    /// Applies a grant's payload and marks the lock held.
    fn apply_grant(
        &mut self,
        h: &mut ProcHandle<DsmMsg>,
        lock: LockId,
        mode: Mode,
        payload: GrantPayload,
    ) {
        let idx = lock.0 as usize;
        let cost = self.cfg.cost;
        match payload {
            GrantPayload::Current => {}
            GrantPayload::Rt {
                set,
                consist_time,
                binding,
            } => {
                let BackendState::Rt { dirty } = &mut self.backend else {
                    panic!("RT grant on non-RT node");
                };
                let res = rt::apply(&mut self.store, dirty, &self.spec.layout, &set);
                h.charge(
                    Category::WriteCollect,
                    res.dirtybits_updated * cost.dirtybit_update
                        + cost.copy_cycles(res.bytes_applied as usize, true),
                );
                self.counters.dirtybits_updated += res.dirtybits_updated;
                self.counters.data_bytes_received += set.data_bytes();
                self.counters.redundant_bytes_received += res.bytes_redundant;
                let st = &mut self.locks[idx];
                st.rt_last_seen = consist_time;
                st.binding.install(binding);
                self.clock.observe(consist_time);
            }
            GrantPayload::Vm {
                updates,
                full,
                incarnation,
                binding,
            } => {
                // Shared by the VM and TwinAll backends (TwinAll manages
                // incarnations the same way, per §3.5).
                let mut applied = vm::VmApply::default();
                let mut received = 0;
                {
                    let sets = full
                        .iter()
                        .chain(updates.iter().map(|u| &u.set))
                        .collect::<Vec<_>>();
                    for set in sets {
                        received += set.data_bytes();
                        match &mut self.backend {
                            BackendState::Vm { pages } => {
                                let a = vm::apply(&mut self.store, pages, set);
                                applied.bytes_applied += a.bytes_applied;
                                applied.twin_bytes_updated += a.twin_bytes_updated;
                            }
                            BackendState::TwinAll { twins } => {
                                let bytes = twin_all_apply(twins, &mut self.store, &self.spec, set);
                                applied.bytes_applied += bytes;
                                applied.twin_bytes_updated += bytes;
                            }
                            _ => panic!("VM grant on incompatible node"),
                        }
                    }
                }
                h.charge(
                    Category::WriteCollect,
                    cost.copy_cycles(applied.bytes_applied as usize, true)
                        + cost.copy_cycles(applied.twin_bytes_updated as usize, true),
                );
                self.counters.data_bytes_received += received;
                self.counters.twin_bytes_updated += applied.twin_bytes_updated;
                let st = &mut self.locks[idx];
                st.binding.install(binding);
                st.vm_last_seen = (incarnation, st.binding.version());
                st.vm_incarnation = incarnation;
                if let Some(full) = full {
                    // The full snapshot stands in for the whole history.
                    st.vm_history.clear();
                    st.vm_history.push(Update {
                        incarnation,
                        set: full,
                        full: true,
                    });
                } else {
                    st.vm_history.absorb(&updates);
                }
            }
            GrantPayload::Flat { set, binding } => {
                let bytes = match &mut self.backend {
                    BackendState::Blast => blast::apply(&mut self.store, &set),
                    BackendState::TwinAll { twins } => {
                        twin_all_apply(twins, &mut self.store, &self.spec, &set)
                    }
                    _ => panic!("flat grant on incompatible node"),
                };
                h.charge(
                    Category::WriteCollect,
                    cost.copy_cycles(bytes as usize, true),
                );
                self.counters.data_bytes_received += bytes;
                self.locks[idx].binding.install(binding);
            }
        }
        self.locks[idx].held = Some(mode);
    }

    // ------------------------------------------------------------------
    // Barrier collection / application
    // ------------------------------------------------------------------

    fn collect_barrier(&mut self, h: &mut ProcHandle<DsmMsg>, idx: usize) -> UpdateSet {
        let cost = self.cfg.cost;
        // With a partitioned binding each processor scans only the ranges
        // it may have written — the discipline the paper's applications
        // follow ("only data at the edges of each partition are shared").
        let scan_binding = self.barriers[idx]
            .partition
            .clone()
            .unwrap_or_else(|| self.barriers[idx].binding.clone());
        match &mut self.backend {
            BackendState::None => UpdateSet::new(),
            BackendState::Rt { dirty } => {
                if scan_binding.ranges().is_empty() {
                    return UpdateSet::new();
                }
                let now = self.clock.tick();
                let b = &self.barriers[idx];
                let scan = rt::collect(
                    &mut self.store,
                    dirty,
                    &self.spec.layout,
                    &scan_binding,
                    b.rt_last_consist,
                    now,
                );
                h.charge(
                    Category::WriteCollect,
                    scan.clean_reads * cost.dirtybit_read_clean
                        + scan.dirty_reads * cost.dirtybit_read_dirty,
                );
                self.counters.clean_dirtybits_read += scan.clean_reads;
                self.counters.dirty_dirtybits_read += scan.dirty_reads;
                scan.set
            }
            BackendState::Vm { pages } => {
                if scan_binding.ranges().is_empty() {
                    return UpdateSet::new();
                }
                let col = vm::collect(&mut self.store, pages, &self.spec.layout, &scan_binding);
                for (runs, words) in &col.diff_runs {
                    h.charge(Category::WriteCollect, cost.page_diff_cycles(*runs, *words));
                }
                h.charge(Category::WriteCollect, col.pages_cleaned * cost.protect_ro);
                self.counters.pages_diffed += col.pages_diffed;
                self.counters.pages_write_protected += col.pages_cleaned;
                col.update
            }
            BackendState::Blast => {
                if scan_binding.ranges().is_empty() {
                    return UpdateSet::new();
                }
                assert!(
                    self.barriers[idx].partition.is_some(),
                    "blast backend needs a partitioned barrier binding: \
                     without write detection it cannot know what this \
                     processor modified"
                );
                let set = blast::snapshot(&mut self.store, &scan_binding);
                self.counters.full_data_sends += 1;
                set
            }
            BackendState::TwinAll { twins } => {
                if scan_binding.ranges().is_empty() {
                    return UpdateSet::new();
                }
                twin_all_collect(
                    twins,
                    &mut self.store,
                    &self.spec,
                    &scan_binding,
                    &cost,
                    h,
                    &mut self.counters,
                )
            }
        }
    }

    fn handle_barrier_arrive(
        &mut self,
        h: &mut ProcHandle<DsmMsg>,
        barrier: BarrierId,
        from: usize,
        set: UpdateSet,
        time: u64,
    ) {
        self.clock.observe(time);
        let release = self.sites[barrier.0 as usize]
            .as_mut()
            .expect("arrive sent to manager")
            .arrive(from, set);
        if let Some(release) = release {
            let now = self.clock.tick();
            let mut own = UpdateSet::new();
            for (q, set) in release.per_proc.into_iter().enumerate() {
                if q == self.me {
                    own = set;
                } else {
                    self.counters.data_bytes_sent += set.data_bytes();
                    h.charge(
                        Category::Protocol,
                        self.cfg.cost.copy_cycles(set.data_bytes() as usize, true),
                    );
                    let msg = DsmMsg::BarrierRelease {
                        barrier,
                        set,
                        time: now,
                    };
                    let size = msg.wire_size();
                    h.send(q, msg, size);
                }
            }
            self.finish_barrier(h, barrier, own, now);
        }
    }

    fn finish_barrier(
        &mut self,
        h: &mut ProcHandle<DsmMsg>,
        barrier: BarrierId,
        set: UpdateSet,
        time: u64,
    ) {
        let idx = barrier.0 as usize;
        let cost = self.cfg.cost;
        self.counters.data_bytes_received += set.data_bytes();
        match &mut self.backend {
            BackendState::None => {}
            BackendState::Rt { dirty } => {
                let res = rt::apply(&mut self.store, dirty, &self.spec.layout, &set);
                h.charge(
                    Category::WriteCollect,
                    res.dirtybits_updated * cost.dirtybit_update
                        + cost.copy_cycles(res.bytes_applied as usize, true),
                );
                self.counters.dirtybits_updated += res.dirtybits_updated;
                self.counters.redundant_bytes_received += res.bytes_redundant;
            }
            BackendState::Vm { pages } => {
                let a = vm::apply(&mut self.store, pages, &set);
                h.charge(
                    Category::WriteCollect,
                    cost.copy_cycles(a.bytes_applied as usize, true)
                        + cost.copy_cycles(a.twin_bytes_updated as usize, true),
                );
                self.counters.twin_bytes_updated += a.twin_bytes_updated;
            }
            BackendState::Blast => {
                let bytes = blast::apply(&mut self.store, &set);
                h.charge(
                    Category::WriteCollect,
                    cost.copy_cycles(bytes as usize, true),
                );
            }
            BackendState::TwinAll { twins } => {
                let bytes = twin_all_apply(twins, &mut self.store, &self.spec, &set);
                h.charge(
                    Category::WriteCollect,
                    cost.copy_cycles(bytes as usize, true),
                );
            }
        }
        let node = &mut self.barriers[idx];
        node.episode += 1;
        node.released = true;
        self.clock.observe(time);
        node.rt_last_consist = self.clock.now();
    }
}

// ----------------------------------------------------------------------
// TwinAll (§3.5 second alternative): twin everything, diff on demand.
// ----------------------------------------------------------------------

fn twin_all_collect(
    twins: &mut HashMap<(usize, usize), Box<[u8]>>,
    store: &mut LocalStore,
    spec: &SystemSpec,
    binding: &Binding,
    cost: &midway_stats::CostModel,
    h: &mut ProcHandle<DsmMsg>,
    counters: &mut Counters,
) -> UpdateSet {
    let mut set = UpdateSet::new();
    for (region_id, page_range) in binding.page_spans(&spec.layout) {
        let desc = spec.layout.region(region_id).expect("bound region exists");
        for page in page_range {
            let offset = page << PAGE_SHIFT;
            let len = PAGE_SIZE.min(desc.used - offset);
            let page_base = desc.base() + offset as u64;
            let current = store.bytes(page_base, len).to_vec();
            let twin = twins.entry((region_id, page)).or_insert_with(|| {
                // §3.5: the twin logically exists from the moment the data
                // does; materialize it as the page's initial (zero) state
                // so local writes made before the first transfer are seen.
                h.charge(Category::WriteCollect, cost.copy_cycles(len, false));
                vec![0u8; len].into_boxed_slice()
            });
            let diff = midway_mem::diff::PageDiff::compute(&current, twin);
            h.charge(
                Category::WriteCollect,
                cost.page_diff_cycles(diff.run_count(), len / 4),
            );
            counters.pages_diffed += 1;
            let bound = binding.ranges_in_page(region_id, page);
            let restricted = diff.restrict(&bound);
            for run in &restricted.runs {
                set.items.push(UpdateItem {
                    addr: page_base.raw() + run.offset as u64,
                    data: run.data.clone(),
                    ts: 0,
                });
            }
            // Refresh the twin so the next diff is incremental.
            let end = len.min(twin.len());
            restricted.apply(&mut twin[..end]);
        }
    }
    set.items.sort_by_key(|i| i.addr);
    set
}

fn twin_all_apply(
    twins: &mut HashMap<(usize, usize), Box<[u8]>>,
    store: &mut LocalStore,
    spec: &SystemSpec,
    set: &UpdateSet,
) -> u64 {
    let mut bytes = 0;
    for item in &set.items {
        store.write_bytes(Addr(item.addr), &item.data);
        bytes += item.data.len() as u64;
        // Patch twins so incoming data is not re-shipped as a local change
        // (creating the zero-state twin if the page has none yet).
        let mut pos = 0usize;
        while pos < item.data.len() {
            let addr = Addr(item.addr + pos as u64);
            let region = addr.region_index();
            let page = addr.page_in_region();
            let in_page = PAGE_SIZE - addr.page_offset();
            let chunk = in_page.min(item.data.len() - pos);
            let plen = PAGE_SIZE.min(
                spec.layout
                    .region(region)
                    .expect("update region exists")
                    .used
                    - (page << PAGE_SHIFT),
            );
            let twin = twins
                .entry((region, page))
                .or_insert_with(|| vec![0u8; plen].into_boxed_slice());
            let start = addr.page_offset();
            let end = (start + chunk).min(twin.len());
            if start < end {
                twin[start..end].copy_from_slice(&item.data[pos..pos + (end - start)]);
            }
            pos += chunk;
        }
    }
    bytes
}
