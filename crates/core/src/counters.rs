//! Per-processor invocation counters (the rows of the paper's Table 2).

/// Counts of every primitive operation a processor performed, plus general
/// protocol activity. Tables 2–5 and Figures 3–4 are derived from these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    // --- RT-DSM (Table 2, upper half) ---
    /// Dirtybits set by the write-trapping templates.
    pub dirtybits_set: u64,
    /// Writes to private memory that went through a shared-path template.
    pub dirtybits_misclassified: u64,
    /// Clean dirtybits read during collection scans.
    pub clean_dirtybits_read: u64,
    /// Dirty dirtybits read during collection scans.
    pub dirty_dirtybits_read: u64,
    /// Dirtybits stamped with a new timestamp at the requesting processor.
    pub dirtybits_updated: u64,

    // --- VM-DSM (Table 2, lower half) ---
    /// Page write faults serviced (includes twin + protection).
    pub write_faults: u64,
    /// Pages diffed against their twins.
    pub pages_diffed: u64,
    /// Pages write-protected after cleaning.
    pub pages_write_protected: u64,
    /// Bytes of incoming updates applied to twins of dirty pages.
    pub twin_bytes_updated: u64,

    // --- shared ---
    /// Application data bytes this processor sent in consistency traffic.
    pub data_bytes_sent: u64,
    /// Application data bytes received.
    pub data_bytes_received: u64,
    /// Received bytes that were already current locally (RT's exactly-once
    /// filter dropped them).
    pub redundant_bytes_received: u64,
    /// Lock acquisitions completed.
    pub lock_acquires: u64,
    /// Lock data transfers performed as the releasing side.
    pub lock_transfers_served: u64,
    /// Transfers that shipped the full bound data instead of a diff/history
    /// (VM incarnation fallback, rebinding, or blast).
    pub full_data_sends: u64,
    /// Barrier episodes completed.
    pub barrier_waits: u64,

    // --- crash tolerance ---
    /// Crashes this processor suffered (and recovered from).
    pub crashes: u64,
    /// Cycles spent dark across all crashes (restart downtime).
    pub downtime_cycles: u64,
    /// Messages and timers discarded because they were in flight to this
    /// processor while it was down (its NIC was dark).
    pub fenced_messages: u64,
    /// Checkpoint images written to stable storage.
    pub checkpoints_written: u64,
    /// Total bytes of checkpoint images written.
    pub checkpoint_bytes: u64,
    /// Bytes appended to the stable-storage write-ahead log.
    pub wal_bytes_logged: u64,
    /// Bytes read back (checkpoint image + log) during recoveries.
    pub recovery_replay_bytes: u64,
    /// Cycles charged for recovery work itself (decode + log replay),
    /// excluding the downtime.
    pub recovery_cycles: u64,
}

impl Counters {
    /// Element-wise sum (for cluster-wide aggregation).
    pub fn add(&mut self, other: &Counters) {
        self.dirtybits_set += other.dirtybits_set;
        self.dirtybits_misclassified += other.dirtybits_misclassified;
        self.clean_dirtybits_read += other.clean_dirtybits_read;
        self.dirty_dirtybits_read += other.dirty_dirtybits_read;
        self.dirtybits_updated += other.dirtybits_updated;
        self.write_faults += other.write_faults;
        self.pages_diffed += other.pages_diffed;
        self.pages_write_protected += other.pages_write_protected;
        self.twin_bytes_updated += other.twin_bytes_updated;
        self.data_bytes_sent += other.data_bytes_sent;
        self.data_bytes_received += other.data_bytes_received;
        self.redundant_bytes_received += other.redundant_bytes_received;
        self.lock_acquires += other.lock_acquires;
        self.lock_transfers_served += other.lock_transfers_served;
        self.full_data_sends += other.full_data_sends;
        self.barrier_waits += other.barrier_waits;
        self.crashes += other.crashes;
        self.downtime_cycles += other.downtime_cycles;
        self.fenced_messages += other.fenced_messages;
        self.checkpoints_written += other.checkpoints_written;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.wal_bytes_logged += other.wal_bytes_logged;
        self.recovery_replay_bytes += other.recovery_replay_bytes;
        self.recovery_cycles += other.recovery_cycles;
    }

    /// A copy with every crash-tolerance counter zeroed: what the
    /// processor did at the *application and protocol* level, comparable
    /// across runs that differ only in crash schedule or checkpoint
    /// interval.
    pub fn sans_recovery(&self) -> Counters {
        Counters {
            crashes: 0,
            downtime_cycles: 0,
            fenced_messages: 0,
            checkpoints_written: 0,
            checkpoint_bytes: 0,
            wal_bytes_logged: 0,
            recovery_replay_bytes: 0,
            recovery_cycles: 0,
            ..*self
        }
    }

    /// The per-processor average of a set of counters, as the paper's
    /// Table 2 reports ("averages for all processors in an 8-way run").
    pub fn average(all: &[Counters]) -> AvgCounters {
        let n = all.len().max(1) as f64;
        let mut sum = Counters::default();
        for c in all {
            sum.add(c);
        }
        AvgCounters { sum, n }
    }

    /// Fraction of scanned dirtybits that were dirty (Table 2's "percent
    /// dirty data" analogue for RT).
    pub fn percent_dirty(&self) -> f64 {
        let scanned = self.clean_dirtybits_read + self.dirty_dirtybits_read;
        if scanned == 0 {
            return 0.0;
        }
        100.0 * self.dirty_dirtybits_read as f64 / scanned as f64
    }
}

/// Per-processor averages, exposed field-by-field as `f64`.
#[derive(Clone, Copy, Debug)]
pub struct AvgCounters {
    sum: Counters,
    n: f64,
}

impl AvgCounters {
    /// The underlying cluster-wide totals.
    pub fn totals(&self) -> &Counters {
        &self.sum
    }

    /// Number of processors averaged over.
    pub fn procs(&self) -> f64 {
        self.n
    }

    /// Average of an arbitrary counter field, selected by closure.
    pub fn avg(&self, f: impl Fn(&Counters) -> u64) -> f64 {
        f(&self.sum) as f64 / self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_element_wise() {
        let mut a = Counters {
            dirtybits_set: 10,
            write_faults: 2,
            ..Counters::default()
        };
        let b = Counters {
            dirtybits_set: 5,
            data_bytes_sent: 100,
            ..Counters::default()
        };
        a.add(&b);
        assert_eq!(a.dirtybits_set, 15);
        assert_eq!(a.write_faults, 2);
        assert_eq!(a.data_bytes_sent, 100);
    }

    #[test]
    fn average_divides_by_processor_count() {
        let a = Counters {
            dirtybits_set: 10,
            ..Counters::default()
        };
        let b = Counters {
            dirtybits_set: 30,
            ..Counters::default()
        };
        let avg = Counters::average(&[a, b]);
        assert_eq!(avg.avg(|c| c.dirtybits_set), 20.0);
        assert_eq!(avg.totals().dirtybits_set, 40);
    }

    #[test]
    fn sans_recovery_zeroes_only_crash_fields() {
        let c = Counters {
            lock_acquires: 9,
            crashes: 2,
            downtime_cycles: 1000,
            fenced_messages: 3,
            checkpoints_written: 4,
            checkpoint_bytes: 5000,
            wal_bytes_logged: 600,
            recovery_replay_bytes: 700,
            recovery_cycles: 800,
            ..Counters::default()
        };
        let s = c.sans_recovery();
        assert_eq!(s.lock_acquires, 9);
        assert_eq!(
            s,
            Counters {
                lock_acquires: 9,
                ..Counters::default()
            }
        );
    }

    #[test]
    fn percent_dirty_handles_zero_scans() {
        assert_eq!(Counters::default().percent_dirty(), 0.0);
        let c = Counters {
            clean_dirtybits_read: 75,
            dirty_dirtybits_read: 25,
            ..Counters::default()
        };
        assert!((c.percent_dirty() - 25.0).abs() < 1e-9);
    }
}
