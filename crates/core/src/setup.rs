//! System setup: the shared layout, typed array handles, and
//! synchronization objects.
//!
//! A Midway program declares its shared data and synchronization objects
//! once; every processor runs against the same [`SystemSpec`] (a real
//! Midway program gets this for free by running one binary everywhere).

use std::marker::PhantomData;
use std::sync::Arc;

use midway_mem::{Addr, AddrRange, Layout, LayoutBuilder, LocalStore, MemClass, Template};
use midway_proto::{BarrierId, Binding, LockId};

/// Scalar element types storable in a [`SharedArray`].
pub trait Scalar: Copy + Send + Sync + 'static {
    /// Element size in bytes (a power of two).
    const SIZE: usize;
    /// Reads one element from a local store.
    fn load(store: &mut LocalStore, addr: Addr) -> Self;
    /// Writes one element to a local store.
    fn store_to(store: &mut LocalStore, addr: Addr, v: Self);
}

macro_rules! scalar_impl {
    ($t:ty, $size:expr, $read:ident, $write:ident) => {
        impl Scalar for $t {
            const SIZE: usize = $size;
            fn load(store: &mut LocalStore, addr: Addr) -> Self {
                store.$read(addr)
            }
            fn store_to(store: &mut LocalStore, addr: Addr, v: Self) {
                store.$write(addr, v)
            }
        }
    };
}

scalar_impl!(f64, 8, read_f64, write_f64);
scalar_impl!(u64, 8, read_u64, write_u64);
scalar_impl!(u32, 4, read_u32, write_u32);
scalar_impl!(i32, 4, read_i32, write_i32);

impl Scalar for i64 {
    const SIZE: usize = 8;
    fn load(store: &mut LocalStore, addr: Addr) -> Self {
        store.read_u64(addr) as i64
    }
    fn store_to(store: &mut LocalStore, addr: Addr, v: Self) {
        store.write_u64(addr, v as u64)
    }
}

/// A handle to a shared (or private) array of scalars.
///
/// The handle is plain data — the actual bytes live in each processor's
/// local cache and are accessed through the per-processor API, which is
/// where write detection happens.
#[derive(Debug)]
pub struct SharedArray<T> {
    base: Addr,
    len: usize,
    _t: PhantomData<T>,
}

// Manual impls: `derive` would needlessly require `T: Clone`.
impl<T> Clone for SharedArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedArray<T> {}

impl<T: Scalar> SharedArray<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn addr(&self, i: usize) -> Addr {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base + (i * T::SIZE) as u64
    }

    /// The address range of elements `r` (for bindings).
    pub fn range(&self, r: std::ops::Range<usize>) -> AddrRange {
        assert!(r.end <= self.len, "range end {} out of bounds", r.end);
        let start = self.base.raw() + (r.start * T::SIZE) as u64;
        let end = self.base.raw() + (r.end * T::SIZE) as u64;
        start..end
    }

    /// The address range of the whole array.
    pub fn full_range(&self) -> AddrRange {
        self.range(0..self.len)
    }
}

/// Declares the shared memory image and synchronization objects.
pub struct SystemBuilder {
    layout: LayoutBuilder,
    locks: Vec<Binding>,
    barriers: Vec<(Binding, Option<Vec<Binding>>)>,
}

impl SystemBuilder {
    /// An empty system.
    pub fn new() -> SystemBuilder {
        SystemBuilder {
            layout: LayoutBuilder::new(),
            locks: Vec::new(),
            barriers: Vec::new(),
        }
    }

    /// Allocates a shared array of `len` elements with cache lines of
    /// `elems_per_line` elements (the paper's per-region line size; one
    /// element per line is the "doubleword line" common case for `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two in `[4, page]`.
    pub fn shared_array<T: Scalar>(
        &mut self,
        name: &str,
        len: usize,
        elems_per_line: usize,
    ) -> SharedArray<T> {
        let line = T::SIZE * elems_per_line;
        assert!(
            line.is_power_of_two(),
            "line size {line} must be a power of two"
        );
        let alloc = self
            .layout
            .alloc(name, len * T::SIZE, MemClass::Shared, line.trailing_zeros());
        SharedArray {
            base: alloc.addr,
            len,
            _t: PhantomData,
        }
    }

    /// Allocates a *private* array: per-processor data that pays only the
    /// misclassification penalty when written through the shared path.
    pub fn private_array<T: Scalar>(&mut self, name: &str, len: usize) -> SharedArray<T> {
        let alloc = self.layout.alloc(
            name,
            len * T::SIZE,
            MemClass::Private,
            3.max(T::SIZE.trailing_zeros()),
        );
        SharedArray {
            base: alloc.addr,
            len,
            _t: PhantomData,
        }
    }

    /// Declares a lock bound to `ranges`.
    pub fn lock(&mut self, ranges: Vec<AddrRange>) -> LockId {
        let id = LockId(self.locks.len() as u32);
        self.locks.push(Binding::new(ranges));
        id
    }

    /// Declares a barrier bound to `ranges` (empty for pure synchronization).
    pub fn barrier(&mut self, ranges: Vec<AddrRange>) -> BarrierId {
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push((Binding::new(ranges), None));
        id
    }

    /// Declares a barrier with per-processor write partitions.
    ///
    /// The union binding is what RT/VM-DSM scan; the partitions tell
    /// detection-free backends (blast) which ranges each processor may have
    /// written, since they have no way to discover it.
    pub fn barrier_partitioned(
        &mut self,
        ranges: Vec<AddrRange>,
        partitions: Vec<Vec<AddrRange>>,
    ) -> BarrierId {
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push((
            Binding::new(ranges),
            Some(partitions.into_iter().map(Binding::new).collect()),
        ));
        id
    }

    /// Finishes setup.
    pub fn build(self) -> Arc<SystemSpec> {
        let layout = self.layout.build();
        let templates = (0..layout.region_slots())
            .map(|id| layout.region(id).map(Template::for_region))
            .collect();
        Arc::new(SystemSpec {
            layout,
            templates,
            locks: self.locks,
            barriers: self.barriers,
        })
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

/// The immutable system description shared by every processor.
pub struct SystemSpec {
    pub(crate) layout: Arc<Layout>,
    pub(crate) templates: Vec<Option<Template>>,
    pub(crate) locks: Vec<Binding>,
    pub(crate) barriers: Vec<(Binding, Option<Vec<Binding>>)>,
}

impl SystemSpec {
    /// The memory layout.
    pub fn layout(&self) -> &Arc<Layout> {
        &self.layout
    }

    /// Number of declared locks.
    pub fn locks(&self) -> usize {
        self.locks.len()
    }

    /// Number of declared barriers.
    pub fn barriers(&self) -> usize {
        self.barriers.len()
    }

    /// The system description the dynamic entry-consistency checker
    /// analyzes accesses against: the layout plus every initial lock and
    /// barrier binding.
    pub fn check_spec(&self) -> midway_check::CheckSpec {
        midway_check::CheckSpec {
            layout: Arc::clone(&self.layout),
            locks: self.locks.iter().map(|b| b.ranges().to_vec()).collect(),
            barriers: self
                .barriers
                .iter()
                .map(|(b, parts)| midway_check::BarrierRanges {
                    ranges: b.ranges().to_vec(),
                    partitions: parts
                        .as_ref()
                        .map(|ps| ps.iter().map(|p| p.ranges().to_vec()).collect()),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_addresses_are_element_strided() {
        let mut b = SystemBuilder::new();
        let a = b.shared_array::<f64>("x", 16, 1);
        assert_eq!(a.len(), 16);
        assert_eq!(a.addr(1).raw() - a.addr(0).raw(), 8);
        let r = a.range(2..4);
        assert_eq!(r.end - r.start, 16);
    }

    #[test]
    fn line_size_follows_elems_per_line() {
        let mut b = SystemBuilder::new();
        let a = b.shared_array::<f64>("x", 16, 4); // 32-byte lines
        let spec = b.build();
        let desc = spec.layout.region_of(a.addr(0));
        assert_eq!(desc.line_size(), 32);
    }

    #[test]
    fn private_arrays_live_in_private_regions() {
        let mut b = SystemBuilder::new();
        let p = b.private_array::<u64>("scratch", 8);
        let spec = b.build();
        assert_eq!(spec.layout.region_of(p.addr(0)).class, MemClass::Private);
    }

    #[test]
    fn locks_and_barriers_get_sequential_ids() {
        let mut b = SystemBuilder::new();
        let a = b.shared_array::<u64>("x", 8, 1);
        let l0 = b.lock(vec![a.range(0..4)]);
        let l1 = b.lock(vec![a.range(4..8)]);
        let bar = b.barrier(vec![]);
        assert_eq!(l0, LockId(0));
        assert_eq!(l1, LockId(1));
        assert_eq!(bar, BarrierId(0));
        let spec = b.build();
        assert_eq!(spec.locks(), 2);
        assert_eq!(spec.barriers(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let mut b = SystemBuilder::new();
        let a = b.shared_array::<u32>("x", 4, 1);
        a.addr(4);
    }
}
