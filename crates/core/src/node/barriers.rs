//! The barrier path: collection on arrival, merging (flat manager or
//! combining tree), and application on release.
//!
//! Two coordination shapes share this module (see
//! [`BarrierShape`](crate::BarrierShape)):
//!
//! * **Flat** — every processor ships its updates to the manager, which
//!   merges P arrivals and sends each processor a personalized release
//!   (merged minus its own contribution). The historical protocol.
//! * **Tree** — processors form a combining tree rooted at the manager:
//!   subtree contributions merge upward, the fully merged set fans
//!   downward, and each node filters out its own contribution locally.
//!   No node handles more than `arity` barrier messages per episode.

use std::sync::Arc;

use midway_net::Transport;
use midway_proto::{BarrierId, TreeStep, UpdateSet};
use midway_sim::Category;

use crate::detect::DetectCx;
use crate::msg::{DsmMsg, NetMsg};

use super::{with_detector, BarrierCoord, DsmNode};

impl DsmNode {
    /// Crosses `barrier`: ships local modifications of the bound data,
    /// waits for everyone, applies everyone else's.
    pub fn barrier<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, barrier: BarrierId) {
        let idx = barrier.0 as usize;
        self.clock.tick();
        let set = self.collect_barrier(h, idx);
        let time = self.clock.now();
        match self.sites[idx] {
            BarrierCoord::Flat(_) => {
                self.counters.data_bytes_sent += set.data_bytes();
                let mgr = self.cfg.home_map.barrier_manager(barrier, self.procs);
                if mgr == self.me {
                    self.handle_barrier_arrive(h, barrier, self.me, set, time);
                } else {
                    // Packet construction for the shipped data.
                    h.charge(
                        Category::Protocol,
                        self.cfg.cost.copy_cycles(set.data_bytes() as usize, true),
                    );
                    self.link
                        .send(h, mgr, DsmMsg::BarrierArrive { barrier, set, time });
                }
            }
            BarrierCoord::Tree(ref mut site) => {
                let step = match site.arrive_own(set) {
                    Ok(step) => step,
                    Err(e) => {
                        h.protocol_violation(format!("{barrier:?} at tree node {}: {e}", self.me))
                    }
                };
                self.tree_step(h, barrier, step);
            }
        }
        self.pump_until(h, |n| n.barriers[idx].released);
        self.barriers[idx].released = false;
        self.counters.barrier_waits += 1;
        // A completed barrier is a synchronization boundary and therefore
        // a checkpointing point.
        self.checkpoint_boundary(h);
    }

    fn collect_barrier<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, idx: usize) -> UpdateSet {
        // With a partitioned binding each processor scans only the ranges
        // it may have written — the discipline the paper's applications
        // follow ("only data at the edges of each partition are shared").
        let b = &self.barriers[idx];
        let partitioned = b.partition.is_some();
        let scan = b.partition.clone().unwrap_or_else(|| b.binding.clone());
        if scan.ranges().is_empty() {
            return UpdateSet::new();
        }
        let last_consist = b.last_consist;
        with_detector!(self, h, |det, cx| det.collect_barrier(
            &mut cx,
            &scan,
            last_consist,
            partitioned
        ))
    }

    pub(super) fn handle_barrier_arrive<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        barrier: BarrierId,
        from: usize,
        set: UpdateSet,
        time: u64,
    ) {
        self.clock.observe(time);
        match self.sites[barrier.0 as usize] {
            BarrierCoord::Flat(None) => h.protocol_violation(format!(
                "arrival at {barrier:?} from processor {from} routed to processor {}, \
                 which is not the barrier's manager",
                self.me
            )),
            BarrierCoord::Flat(Some(ref mut site)) => {
                let release = match site.arrive(from, set) {
                    Ok(release) => release,
                    Err(e) => {
                        h.protocol_violation(format!("{barrier:?} at manager {}: {e}", self.me))
                    }
                };
                if let Some(release) = release {
                    let now = self.clock.tick();
                    let mut own = UpdateSet::new();
                    for (q, set) in release.per_proc.into_iter().enumerate() {
                        if q == self.me {
                            own = set;
                        } else {
                            self.counters.data_bytes_sent += set.data_bytes();
                            h.charge(
                                Category::Protocol,
                                self.cfg.cost.copy_cycles(set.data_bytes() as usize, true),
                            );
                            let msg = DsmMsg::BarrierRelease {
                                barrier,
                                set: Arc::new(set),
                                time: now,
                            };
                            self.link.send(h, q, msg);
                        }
                    }
                    self.finish_barrier(h, barrier, &own, now);
                }
            }
            BarrierCoord::Tree(ref mut site) => {
                let step = match site.arrive_child(from, set) {
                    Ok(step) => step,
                    Err(e) => {
                        h.protocol_violation(format!("{barrier:?} at tree node {}: {e}", self.me))
                    }
                };
                self.tree_step(h, barrier, step);
            }
        }
    }

    /// Acts on a combining-tree site's instruction after an arrival.
    fn tree_step<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        barrier: BarrierId,
        step: TreeStep,
    ) {
        match step {
            TreeStep::Wait => {}
            TreeStep::SendUp { parent, set } => {
                self.counters.data_bytes_sent += set.data_bytes();
                h.charge(
                    Category::Protocol,
                    self.cfg.cost.copy_cycles(set.data_bytes() as usize, true),
                );
                let time = self.clock.now();
                self.link
                    .send(h, parent, DsmMsg::BarrierArrive { barrier, set, time });
            }
            TreeStep::Release { merged } => {
                // The root: the whole cluster has arrived; start the
                // fan-down with the fully merged set.
                let now = self.clock.tick();
                self.tree_fan_down(h, barrier, Arc::new(merged), now);
            }
        }
    }

    /// One hop of the release fan-down: advance this node's site, forward
    /// the merged set to its children, and apply the non-own subset.
    fn tree_fan_down<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        barrier: BarrierId,
        set: Arc<UpdateSet>,
        time: u64,
    ) {
        let BarrierCoord::Tree(ref mut site) = self.sites[barrier.0 as usize] else {
            h.protocol_violation(format!(
                "tree release for {barrier:?} reached processor {}, whose barrier is flat",
                self.me
            ));
        };
        let (children, local) = site.on_release(&set);
        for child in children {
            self.counters.data_bytes_sent += set.data_bytes();
            h.charge(
                Category::Protocol,
                self.cfg.cost.copy_cycles(set.data_bytes() as usize, true),
            );
            let msg = DsmMsg::BarrierRelease {
                barrier,
                set: Arc::clone(&set),
                time,
            };
            self.link.send(h, child, msg);
        }
        self.finish_barrier(h, barrier, &local, time);
    }

    pub(super) fn handle_barrier_release<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        barrier: BarrierId,
        set: Arc<UpdateSet>,
        time: u64,
    ) {
        match self.sites[barrier.0 as usize] {
            BarrierCoord::Flat(_) => self.finish_barrier(h, barrier, &set, time),
            BarrierCoord::Tree(_) => {
                // Keep release times monotone down the tree: observe the
                // parent's stamp, restamp with this node's clock, forward.
                self.clock.observe(time);
                let now = self.clock.tick();
                self.tree_fan_down(h, barrier, set, now);
            }
        }
    }

    pub(super) fn finish_barrier<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        barrier: BarrierId,
        set: &UpdateSet,
        time: u64,
    ) {
        let idx = barrier.0 as usize;
        self.counters.data_bytes_received += set.data_bytes();
        if let Some(log) = &mut self.check {
            log.apply(h.now().cycles(), set.data_bytes());
        }
        with_detector!(self, h, |det, cx| det.apply_barrier(&mut cx, set));
        // Post-images of everything the detector just applied, read back
        // from the store so replay reproduces exactly what memory holds.
        for i in 0..set.items.len() {
            let (addr, len) = (set.items[i].addr, set.items[i].data.len());
            self.wal_write(h, midway_mem::Addr(addr), len);
        }
        let node = &mut self.barriers[idx];
        node.episode += 1;
        node.released = true;
        self.clock.observe(time);
        node.last_consist = self.clock.now();
        self.wal_barrier(h, idx);
    }
}

#[cfg(test)]
mod tests {
    use midway_proto::UpdateSet;
    use midway_sim::SimError;

    use crate::api::Proc;
    use crate::config::{BackendKind, MidwayConfig};
    use crate::msg::DsmMsg;
    use crate::run::Midway;
    use crate::setup::SystemBuilder;

    // These tests forge raw protocol messages through the node's link
    // layer — something no correct application can do through the public
    // API — to check that a duplicate barrier arrival surfaces as a
    // reported protocol violation, not a panic inside the site.

    #[test]
    fn duplicate_flat_arrival_is_a_protocol_violation() {
        let mut b = SystemBuilder::new();
        let data = b.shared_array::<u64>("data", 4, 1);
        let bar = b.barrier(vec![data.full_range()]);
        let spec = b.build();
        let err = Midway::run(
            MidwayConfig::new(2, BackendKind::Rt),
            &spec,
            |p: &mut Proc| {
                if p.id() == 1 {
                    // Two forged arrivals ahead of the real one: the
                    // manager must eventually see processor 1 arrive twice
                    // in one episode.
                    for time in [1, 2] {
                        let msg = DsmMsg::BarrierArrive {
                            barrier: bar,
                            set: UpdateSet::new(),
                            time,
                        };
                        p.node.link.send(p.h, 0, msg);
                    }
                }
                p.barrier(bar);
            },
        )
        .unwrap_err();
        match err {
            SimError::ProtocolViolation { proc, message } => {
                assert_eq!(proc, 0, "the manager reports the violation");
                assert!(message.contains("arrived twice"), "{message}");
            }
            other => panic!("expected protocol violation, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_tree_arrival_is_a_protocol_violation() {
        // 3 processors, arity 2, manager 0: processors 1 and 2 are both
        // children of the root, so the root sees the duplicate directly.
        let mut b = SystemBuilder::new();
        let data = b.shared_array::<u64>("data", 4, 1);
        let bar = b.barrier(vec![data.full_range()]);
        let spec = b.build();
        let err = Midway::run(
            MidwayConfig::new(3, BackendKind::Rt).tree_barriers(2),
            &spec,
            |p: &mut Proc| {
                if p.id() == 1 {
                    for time in [1, 2] {
                        let msg = DsmMsg::BarrierArrive {
                            barrier: bar,
                            set: UpdateSet::new(),
                            time,
                        };
                        p.node.link.send(p.h, 0, msg);
                    }
                }
                p.barrier(bar);
            },
        )
        .unwrap_err();
        match err {
            SimError::ProtocolViolation { proc, message } => {
                assert_eq!(proc, 0, "the tree root reports the violation");
                assert!(message.contains("arrived twice"), "{message}");
            }
            other => panic!("expected protocol violation, got {other:?}"),
        }
    }
}
