//! The barrier path: collection on arrival, manager-side merging, and
//! application on release.

use midway_net::Transport;
use midway_proto::{BarrierId, UpdateSet};
use midway_sim::Category;

use crate::detect::DetectCx;
use crate::msg::{DsmMsg, NetMsg};

use super::{with_detector, DsmNode};

impl DsmNode {
    /// Crosses `barrier`: ships local modifications of the bound data,
    /// waits for everyone, applies everyone else's.
    pub fn barrier<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, barrier: BarrierId) {
        let idx = barrier.0 as usize;
        self.clock.tick();
        let set = self.collect_barrier(h, idx);
        self.counters.data_bytes_sent += set.data_bytes();
        let mgr = barrier.manager(self.procs);
        let time = self.clock.now();
        if mgr == self.me {
            self.handle_barrier_arrive(h, barrier, self.me, set, time);
        } else {
            // Packet construction for the shipped data.
            h.charge(
                Category::Protocol,
                self.cfg.cost.copy_cycles(set.data_bytes() as usize, true),
            );
            self.link
                .send(h, mgr, DsmMsg::BarrierArrive { barrier, set, time });
        }
        self.pump_until(h, |n| n.barriers[idx].released);
        self.barriers[idx].released = false;
        self.counters.barrier_waits += 1;
    }

    fn collect_barrier<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, idx: usize) -> UpdateSet {
        // With a partitioned binding each processor scans only the ranges
        // it may have written — the discipline the paper's applications
        // follow ("only data at the edges of each partition are shared").
        let b = &self.barriers[idx];
        let partitioned = b.partition.is_some();
        let scan = b.partition.clone().unwrap_or_else(|| b.binding.clone());
        if scan.ranges().is_empty() {
            return UpdateSet::new();
        }
        let last_consist = b.last_consist;
        with_detector!(self, h, |det, cx| det.collect_barrier(
            &mut cx,
            &scan,
            last_consist,
            partitioned
        ))
    }

    pub(super) fn handle_barrier_arrive<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        barrier: BarrierId,
        from: usize,
        set: UpdateSet,
        time: u64,
    ) {
        self.clock.observe(time);
        let Some(site) = self.sites[barrier.0 as usize].as_mut() else {
            h.protocol_violation(format!(
                "arrival at {barrier:?} from processor {from} routed to processor {}, \
                 which is not the barrier's manager",
                self.me
            ));
        };
        let release = site.arrive(from, set);
        if let Some(release) = release {
            let now = self.clock.tick();
            let mut own = UpdateSet::new();
            for (q, set) in release.per_proc.into_iter().enumerate() {
                if q == self.me {
                    own = set;
                } else {
                    self.counters.data_bytes_sent += set.data_bytes();
                    h.charge(
                        Category::Protocol,
                        self.cfg.cost.copy_cycles(set.data_bytes() as usize, true),
                    );
                    let msg = DsmMsg::BarrierRelease {
                        barrier,
                        set,
                        time: now,
                    };
                    self.link.send(h, q, msg);
                }
            }
            self.finish_barrier(h, barrier, own, now);
        }
    }

    pub(super) fn finish_barrier<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        barrier: BarrierId,
        set: UpdateSet,
        time: u64,
    ) {
        let idx = barrier.0 as usize;
        self.counters.data_bytes_received += set.data_bytes();
        if let Some(log) = &mut self.check {
            log.apply(h.now().cycles(), set.data_bytes());
        }
        with_detector!(self, h, |det, cx| det.apply_barrier(&mut cx, &set));
        let node = &mut self.barriers[idx];
        node.episode += 1;
        node.released = true;
        self.clock.observe(time);
        node.last_consist = self.clock.now();
    }
}
