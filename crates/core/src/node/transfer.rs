//! The grant/transfer path: routing home decisions, running write
//! collection at the owner of record, and applying grants at the
//! requester (paper §3.2 / §3.4 — through the detector).

use midway_net::Transport;
use midway_proto::{LockId, Mode, SeenToken};
use midway_sim::Category;

use crate::detect::DetectCx;
use crate::msg::{DsmMsg, GrantPayload, NetMsg};

use super::{with_detector, DsmNode};

impl DsmNode {
    /// Executes the transfers a home decision produced.
    pub(super) fn do_transfers<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        lock: LockId,
        transfers: Vec<midway_proto::Transfer>,
    ) {
        for t in transfers {
            if t.old_owner == t.requester {
                // The requester's cache is already current: no data moves.
                if t.requester == self.me {
                    self.locks[lock.0 as usize].held = Some(t.mode);
                } else {
                    let msg = DsmMsg::Grant {
                        lock,
                        mode: t.mode,
                        payload: GrantPayload::Current,
                    };
                    self.link.send(h, t.requester, msg);
                }
            } else if t.old_owner == self.me {
                let payload = self.collect_for(h, lock, t.seen);
                self.send_grant(h, lock, t.mode, t.requester, payload);
            } else {
                let msg = DsmMsg::TransferReq {
                    lock,
                    requester: t.requester,
                    mode: t.mode,
                    seen: t.seen,
                };
                self.link.send(h, t.old_owner, msg);
            }
        }
    }

    /// Runs write collection as the owner of record on behalf of a
    /// requester whose last-seen token is `seen`.
    pub(super) fn collect_for<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        lock: LockId,
        seen: SeenToken,
    ) -> GrantPayload {
        let idx = lock.0 as usize;
        self.counters.lock_transfers_served += 1;
        let binding = self.locks[idx].binding.clone();
        with_detector!(self, h, |det, cx| det
            .collect_for(&mut cx, idx, &binding, seen))
    }

    pub(super) fn send_grant<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        lock: LockId,
        mode: Mode,
        requester: usize,
        payload: GrantPayload,
    ) {
        debug_assert_ne!(requester, self.me);
        self.counters.data_bytes_sent += payload.data_bytes();
        // Packet construction for the shipped data.
        h.charge(
            Category::Protocol,
            self.cfg
                .cost
                .copy_cycles(payload.data_bytes() as usize, true),
        );
        let msg = DsmMsg::Grant {
            lock,
            mode,
            payload,
        };
        self.link.send(h, requester, msg);
    }

    /// Applies a grant's payload and marks the lock held.
    pub(super) fn apply_grant<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        lock: LockId,
        mode: Mode,
        payload: GrantPayload,
    ) {
        let idx = lock.0 as usize;
        self.counters.data_bytes_received += payload.data_bytes();
        if let Some(log) = &mut self.check {
            log.apply(h.now().cycles(), payload.data_bytes());
        }
        // The detector consumes the payload, so capture the ranges it
        // covers first; their post-images are logged after application.
        let logged = self.recovery.is_some().then(|| payload_ranges(&payload));
        if !matches!(payload, GrantPayload::Current) {
            // Temporarily detach the binding so the detector can install
            // the payload's binding without aliasing the node.
            let mut binding = std::mem::take(&mut self.locks[idx].binding);
            with_detector!(self, h, |det, cx| det.apply_update(
                &mut cx,
                idx,
                &mut binding,
                payload
            ));
            self.locks[idx].binding = binding;
        }
        if let Some(ranges) = logged {
            for (addr, len) in ranges {
                self.wal_write(h, midway_mem::Addr(addr), len);
            }
        }
        self.locks[idx].held = Some(mode);
    }
}

/// Every `(addr, len)` range a grant payload may write; post-images over
/// these after application capture exactly what the grant changed (and
/// harmlessly re-log current content for updates the detector skipped).
fn payload_ranges(payload: &GrantPayload) -> Vec<(u64, usize)> {
    let mut out = Vec::new();
    let mut push_set = |set: &midway_proto::UpdateSet| {
        out.extend(set.items.iter().map(|i| (i.addr, i.data.len())));
    };
    match payload {
        GrantPayload::Current => {}
        GrantPayload::Rt { set, .. } | GrantPayload::Flat { set, .. } => push_set(set),
        GrantPayload::Vm { updates, full, .. } => {
            for u in updates {
                push_set(&u.set);
            }
            if let Some(u) = full {
                push_set(&u.set);
            }
        }
    }
    out
}
