//! The lock path: acquire, release, and dynamic rebinding.

use midway_net::Transport;
use midway_proto::{LockId, Mode};

use crate::msg::{DsmMsg, NetMsg};

use super::DsmNode;

impl DsmNode {
    /// Acquires `lock` in `mode`, blocking until granted and consistent.
    pub fn acquire<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, lock: LockId, mode: Mode) {
        let idx = lock.0 as usize;
        assert!(
            self.locks[idx].held.is_none(),
            "proc {} re-acquiring held lock {lock:?}",
            self.me
        );
        self.clock.tick();
        let seen = self.detect.seen_token(idx, &self.locks[idx].binding);
        let home = self.cfg.home_map.lock_home(lock, self.procs);
        if home == self.me {
            let transfers = self.homes[idx]
                .as_mut()
                .expect("home state exists")
                .acquire(self.me, mode, seen);
            self.do_transfers(h, lock, transfers);
        } else {
            self.link
                .send(h, home, DsmMsg::AcquireReq { lock, mode, seen });
        }
        self.pump_until(h, |n| n.locks[idx].held.is_some());
        self.counters.lock_acquires += 1;
        // The grant installed the hold (and possibly a rebound binding):
        // log the new lock state so a recovery reproduces it.
        self.wal_lock(h, idx);
    }

    /// Releases `lock`. Local and asynchronous, as in Midway: data moves
    /// only when another processor asks for it.
    pub fn release<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, lock: LockId, mode: Mode) {
        let idx = lock.0 as usize;
        assert_eq!(
            self.locks[idx].held,
            Some(mode),
            "proc {} releasing lock {lock:?} it does not hold in that mode",
            self.me
        );
        self.locks[idx].held = None;
        self.clock.tick();
        let home = self.cfg.home_map.lock_home(lock, self.procs);
        if home == self.me {
            let transfers = self.homes[idx]
                .as_mut()
                .expect("home state exists")
                .release(self.me, mode);
            self.do_transfers(h, lock, transfers);
        } else {
            self.link
                .send(h, home, DsmMsg::ReleaseNotify { lock, mode });
        }
        self.wal_lock(h, idx);
        // A release is a synchronization boundary: released update sets
        // are now observable, so it is a checkpointing point.
        self.checkpoint_boundary(h);
    }

    /// Rebinds `lock` to `ranges`. The caller must hold it exclusively.
    pub fn rebind<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        lock: LockId,
        ranges: Vec<midway_mem::AddrRange>,
    ) {
        let idx = lock.0 as usize;
        assert_eq!(
            self.locks[idx].held,
            Some(Mode::Exclusive),
            "rebinding requires exclusive ownership"
        );
        self.locks[idx].binding.rebind(ranges);
        self.detect.on_rebind(idx);
        self.wal_lock(h, idx);
    }
}
