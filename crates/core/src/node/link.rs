//! The node's link layer: reliable delivery over the simulated network.
//!
//! Every protocol message leaves the node through [`LinkLayer::send`]. On
//! a trusted network (faults disabled) the layer is a pass-through that
//! emits bare [`NetMsg::Raw`] frames — no sequence numbers, no acks, no
//! timers, and exactly the wire sizes the protocol had before this layer
//! existed. With faults enabled it runs one reliable channel
//! ([`SendChannel`]/[`RecvChannel`]) per peer:
//!
//! * outgoing messages are staged, framed as [`NetMsg::Data`] with a
//!   piggybacked cumulative ack, and retransmitted on a timer with
//!   exponential backoff until acked;
//! * incoming frames are sequenced — duplicates dropped, early arrivals
//!   buffered — and handed to the protocol engine strictly in send order;
//! * receipt is acknowledged on the next reverse data frame, or by an
//!   explicit [`NetMsg::Ack`] when the protocol has nothing to say back.
//!
//! Per-peer channel state is allocated lazily, on the first frame
//! exchanged with that peer in either direction. DSM traffic is sparse in
//! the pair graph — a processor talks to lock homes, barrier managers,
//! and previous holders, not to everyone — so eager allocation would put
//! O(procs²) channel state in a large cluster where O(touched pairs)
//! suffices.
//!
//! Timer discipline (this is what lets a run still quiesce): a peer's
//! retransmit timer is armed iff frames to that peer are unacked; a timer
//! that fires with an empty inflight queue disarms without re-posting, so
//! once all acks are in, no self-posted events remain and the cluster's
//! drain protocol sees a quiet network. Timer fires and retransmissions
//! are charged to the virtual clock, so reliability overhead shows up in
//! finish times.
//!
//! The timer period is a *fixed* `rto_cycles`; whether a fire actually
//! retransmits is decided against a per-peer deadline (oldest frame's
//! send or last ack-progress time plus the backed-off timeout). Two
//! reasons: self-posted events cannot be cancelled, so a timer armed
//! with a long backed-off delay would sit in the queue after the ack
//! arrives and drag the processor's final clock (and the run's finish
//! time) far past quiescence — the fixed period bounds that drag to one
//! period; and a stale timer armed for an older, since-acked exchange
//! would otherwise cut a fresh frame's timeout short and retransmit it
//! spuriously — the deadline makes such fires re-arm and wait.

use midway_net::Transport;
use midway_proto::channel::{Accept, LinkStats, RecvChannel, ReliableParams, SendChannel};
use midway_sim::Category;

use crate::msg::{DsmMsg, NetMsg};

/// Reliable-channel state for one peer, allocated on first contact.
struct PeerLink {
    tx: SendChannel<DsmMsg>,
    rx: RecvChannel<DsmMsg>,
    /// The highest cumulative ack advertised to the peer so far (in any
    /// frame); an explicit ack is owed when the receive channel is ahead
    /// of this.
    last_acked: u64,
    /// Set when a duplicate arrives from the peer: the retransmission
    /// means our previous ack was lost, so re-ack even though the
    /// cumulative ack did not advance.
    force_ack: bool,
    /// Earliest cycle at which another duplicate-triggered ack may go to
    /// the peer. A burst of queued duplicates (a peer that timed out
    /// while we computed) is answered with ONE ack per timeout window,
    /// not one per duplicate, keeping ack storms off the critical path.
    force_ack_ok_at: u64,
    /// Whether a `RetxCheck` self-post is outstanding for the peer.
    timer_armed: bool,
    /// Earliest cycle at which a retransmission to the peer is
    /// justified: one (backed-off) timeout after the oldest unacked
    /// frame was sent or last made cumulative-ack progress. Timer fires
    /// ahead of the deadline — e.g. a timer armed for an older,
    /// since-acked frame — re-arm without retransmitting.
    retx_deadline: u64,
    /// Highest incarnation epoch seen in frames from this peer. A frame
    /// carrying an older epoch is a pre-crash straggler and is fenced.
    peer_epoch: u32,
}

impl PeerLink {
    fn new() -> PeerLink {
        PeerLink {
            tx: SendChannel::new(),
            rx: RecvChannel::new(),
            last_acked: 0,
            force_ack: false,
            force_ack_ok_at: 0,
            timer_armed: false,
            retx_deadline: 0,
            peer_epoch: 0,
        }
    }
}

pub(crate) struct LinkLayer {
    /// Whether reliable framing is on (= the run's fault plan is enabled).
    reliable: bool,
    params: ReliableParams,
    /// Per-peer channels, indexed by processor id; `None` until the first
    /// frame to or from that peer. Stays all-`None` on a trusted network.
    peers: Vec<Option<Box<PeerLink>>>,
    /// This node's incarnation epoch: 0 until its first crash, bumped at
    /// every recovery. Stamped on every outgoing frame (and charged on the
    /// wire) only once nonzero, so never-crashed traffic is byte-identical
    /// to the epoch-less format.
    pub(crate) epoch: u32,
    pub(crate) stats: LinkStats,
}

/// Sequencing header of an incoming data frame: the per-pair sequence
/// number, the piggybacked cumulative ack, and the sender's epoch.
pub struct FrameHeader {
    pub seq: u64,
    pub ack: u64,
    pub epoch: u32,
}

impl LinkLayer {
    pub fn new(procs: usize, reliable: bool, params: ReliableParams) -> LinkLayer {
        LinkLayer {
            reliable,
            params,
            peers: (0..procs).map(|_| None).collect(),
            epoch: 0,
            stats: LinkStats::default(),
        }
    }

    /// The channel state for `peer`, allocated on first use.
    fn peer(&mut self, peer: usize) -> &mut PeerLink {
        self.peers[peer].get_or_insert_with(|| Box::new(PeerLink::new()))
    }

    /// Sends `msg` to `dst`, reliably when the network is untrusted.
    pub fn send<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, dst: usize, msg: DsmMsg) {
        let bytes = msg.wire_size();
        if !self.reliable {
            h.send(dst, NetMsg::Raw(msg), bytes);
            return;
        }
        let rto = self.params.rto_cycles;
        let now = h.now().cycles();
        let p = self.peer(dst);
        if !p.tx.has_inflight() {
            // This frame is the new oldest: its wait starts now.
            p.retx_deadline = now + rto;
        }
        let seq = p.tx.stage(msg.clone(), bytes);
        let ack = p.rx.cum_ack();
        p.last_acked = ack;
        p.force_ack = false;
        self.stats.data_frames_sent += 1;
        let epoch = self.epoch;
        let frame = NetMsg::Data {
            seq,
            ack,
            epoch,
            msg,
        };
        let wire = frame.wire_size();
        h.send(dst, frame, wire);
        self.arm_timer(h, dst, rto);
    }

    /// Epoch fence: whether a frame from `src` stamped `epoch` is a
    /// pre-crash straggler (older than the sender's current incarnation)
    /// and must be discarded. Also tracks peer recoveries: a *newer*
    /// epoch is how this node learns the peer crashed and came back.
    fn fence_stale_epoch(&mut self, src: usize, epoch: u32) -> bool {
        let p = self.peer(src);
        if epoch < p.peer_epoch {
            self.stats.stale_epoch_fenced += 1;
            return true;
        }
        if epoch > p.peer_epoch {
            p.peer_epoch = epoch;
            self.stats.peer_recoveries_observed += 1;
        }
        false
    }

    /// Processes an incoming data frame from `src`: applies the
    /// piggybacked ack, sequences the payload, and appends every message
    /// now deliverable in order to `deliver`.
    pub fn on_data<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        src: usize,
        header: FrameHeader,
        msg: DsmMsg,
        deliver: &mut Vec<DsmMsg>,
    ) {
        let FrameHeader { seq, ack, epoch } = header;
        if self.fence_stale_epoch(src, epoch) {
            return;
        }
        self.apply_ack(h, src, ack);
        let p = self.peer(src);
        match p.rx.on_data(seq, msg, deliver) {
            Accept::InOrder => {}
            Accept::Buffered => self.stats.out_of_order_buffered += 1,
            Accept::Duplicate => {
                // The peer resent (or the network duplicated) a frame we
                // already have; our ack may have been lost, so owe a fresh
                // one even though the cumulative ack is unchanged.
                p.force_ack = true;
                self.stats.dup_frames_dropped += 1;
            }
        }
    }

    /// Applies a cumulative ack from `src` to the send channel.
    pub fn on_ack<T: Transport<Msg = NetMsg>>(
        &mut self,
        h: &mut T,
        src: usize,
        ack: u64,
        epoch: u32,
    ) {
        if self.fence_stale_epoch(src, epoch) {
            return;
        }
        self.apply_ack(h, src, ack);
    }

    fn apply_ack<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, src: usize, ack: u64) {
        let now = h.now().cycles();
        let rto = self.params.rto_cycles;
        let p = self.peer(src);
        if p.tx.on_ack(ack) && p.tx.has_inflight() {
            // Progress with frames still waiting: restart the timeout for
            // the new oldest frame (TCP-style timer restart; retries were
            // reset by the channel).
            p.retx_deadline = now + rto;
        }
    }

    /// Sends an explicit ack to `src` if one is owed — called after the
    /// protocol engine has handled a delivered frame, so any reverse data
    /// frame it produced has already carried the ack.
    pub fn flush_ack<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, src: usize) {
        let now = h.now().cycles();
        let rto = self.params.rto_cycles;
        let p = self.peer(src);
        let cum = p.rx.cum_ack();
        let forced = p.force_ack && now >= p.force_ack_ok_at;
        p.force_ack = false;
        if cum > p.last_acked || forced {
            p.last_acked = cum;
            p.force_ack_ok_at = now + rto;
            self.stats.acks_sent += 1;
            let frame = NetMsg::Ack {
                ack: cum,
                epoch: self.epoch,
            };
            let wire = frame.wire_size();
            h.send(src, frame, wire);
        }
    }

    /// Handles a retransmit timer for the channel to `peer`: resends the
    /// oldest unacked frame (unless backoff says to sit this fire out),
    /// or disarms when everything has been acked.
    pub fn on_timer<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, peer: usize) {
        self.stats.timer_fires += 1;
        let timer_cost = self.params.timer_cost_cycles;
        let now = h.now().cycles();
        let params = self.params;
        let p = self.peer(peer);
        p.timer_armed = false;
        h.charge(Category::Protocol, timer_cost);
        if !p.tx.has_inflight() {
            // Inflight empty: leave the timer disarmed so the cluster can
            // quiesce. A new send re-arms it.
            return;
        }
        if now < p.retx_deadline {
            // Too early — the timer was armed for an older exchange.
        } else if let Some((seq, msg, _bytes)) = p.tx.oldest_unacked() {
            self.stats.retransmits += 1;
            let p = self.peer(peer);
            let next_rto = p.tx.note_retransmit(&params);
            p.retx_deadline = now + next_rto;
            let ack = p.rx.cum_ack();
            p.last_acked = ack;
            p.force_ack = false;
            let frame = NetMsg::Data {
                seq,
                ack,
                epoch: self.epoch,
                msg,
            };
            let wire = frame.wire_size();
            h.send(peer, frame, wire);
        }
        self.arm_timer(h, peer, params.rto_cycles);
    }

    /// Post-recovery repair: stamps the new incarnation epoch on all
    /// future frames and re-arms the retransmit machinery. Every timer
    /// that was pending when the node went dark has been fenced, so any
    /// peer with unacked inflight frames needs a fresh timer (and a fresh
    /// deadline — the downtime must not be counted as timeout backoff).
    pub fn on_recover<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, epoch: u32) {
        self.epoch = epoch;
        let now = h.now().cycles();
        let rto = self.params.rto_cycles;
        for peer in 0..self.peers.len() {
            let Some(p) = self.peers[peer].as_deref_mut() else {
                continue;
            };
            p.timer_armed = false;
            if p.tx.has_inflight() {
                p.retx_deadline = now + rto;
                self.arm_timer(h, peer, rto);
            }
        }
    }

    fn arm_timer<T: Transport<Msg = NetMsg>>(&mut self, h: &mut T, peer: usize, delay: u64) {
        let p = self.peer(peer);
        if !p.timer_armed {
            p.timer_armed = true;
            h.post_self(NetMsg::RetxCheck { peer }, delay);
        }
    }
}
