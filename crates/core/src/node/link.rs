//! The node's link layer: reliable delivery over the simulated network.
//!
//! Every protocol message leaves the node through [`LinkLayer::send`]. On
//! a trusted network (faults disabled) the layer is a pass-through that
//! emits bare [`NetMsg::Raw`] frames — no sequence numbers, no acks, no
//! timers, and exactly the wire sizes the protocol had before this layer
//! existed. With faults enabled it runs one reliable channel
//! ([`SendChannel`]/[`RecvChannel`]) per peer:
//!
//! * outgoing messages are staged, framed as [`NetMsg::Data`] with a
//!   piggybacked cumulative ack, and retransmitted on a timer with
//!   exponential backoff until acked;
//! * incoming frames are sequenced — duplicates dropped, early arrivals
//!   buffered — and handed to the protocol engine strictly in send order;
//! * receipt is acknowledged on the next reverse data frame, or by an
//!   explicit [`NetMsg::Ack`] when the protocol has nothing to say back.
//!
//! Timer discipline (this is what lets a run still quiesce): a peer's
//! retransmit timer is armed iff frames to that peer are unacked; a timer
//! that fires with an empty inflight queue disarms without re-posting, so
//! once all acks are in, no self-posted events remain and the cluster's
//! drain protocol sees a quiet network. Timer fires and retransmissions
//! are charged to the virtual clock, so reliability overhead shows up in
//! finish times.
//!
//! The timer period is a *fixed* `rto_cycles`; whether a fire actually
//! retransmits is decided against a per-peer deadline (oldest frame's
//! send or last ack-progress time plus the backed-off timeout). Two
//! reasons: self-posted events cannot be cancelled, so a timer armed
//! with a long backed-off delay would sit in the queue after the ack
//! arrives and drag the processor's final clock (and the run's finish
//! time) far past quiescence — the fixed period bounds that drag to one
//! period; and a stale timer armed for an older, since-acked exchange
//! would otherwise cut a fresh frame's timeout short and retransmit it
//! spuriously — the deadline makes such fires re-arm and wait.

use midway_proto::channel::{
    Accept, LinkStats, RecvChannel, ReliableParams, SendChannel, RELIABLE_HEADER_BYTES,
};
use midway_sim::{Category, ProcHandle};

use crate::msg::{DsmMsg, NetMsg, ACK_FRAME_BYTES};

pub(crate) struct LinkLayer {
    /// Whether reliable framing is on (= the run's fault plan is enabled).
    reliable: bool,
    params: ReliableParams,
    /// Per-peer channels, indexed by processor id (self slots unused).
    tx: Vec<SendChannel<DsmMsg>>,
    rx: Vec<RecvChannel<DsmMsg>>,
    /// The highest cumulative ack advertised to each peer so far (in any
    /// frame); an explicit ack is owed when the receive channel is ahead
    /// of this.
    last_acked: Vec<u64>,
    /// Set when a duplicate arrives from the peer: the retransmission
    /// means our previous ack was lost, so re-ack even though the
    /// cumulative ack did not advance.
    force_ack: Vec<bool>,
    /// Earliest cycle at which another duplicate-triggered ack may go to
    /// the peer. A burst of queued duplicates (a peer that timed out
    /// while we computed) is answered with ONE ack per timeout window,
    /// not one per duplicate, keeping ack storms off the critical path.
    force_ack_ok_at: Vec<u64>,
    /// Whether a `RetxCheck` self-post is outstanding for the peer.
    timer_armed: Vec<bool>,
    /// Earliest cycle at which a retransmission to the peer is
    /// justified: one (backed-off) timeout after the oldest unacked
    /// frame was sent or last made cumulative-ack progress. Timer fires
    /// ahead of the deadline — e.g. a timer armed for an older,
    /// since-acked frame — re-arm without retransmitting.
    retx_deadline: Vec<u64>,
    pub(crate) stats: LinkStats,
}

impl LinkLayer {
    pub fn new(procs: usize, reliable: bool, params: ReliableParams) -> LinkLayer {
        LinkLayer {
            reliable,
            params,
            tx: (0..procs).map(|_| SendChannel::new()).collect(),
            rx: (0..procs).map(|_| RecvChannel::new()).collect(),
            last_acked: vec![0; procs],
            force_ack: vec![false; procs],
            force_ack_ok_at: vec![0; procs],
            timer_armed: vec![false; procs],
            retx_deadline: vec![0; procs],
            stats: LinkStats::default(),
        }
    }

    /// Sends `msg` to `dst`, reliably when the network is untrusted.
    pub fn send(&mut self, h: &mut ProcHandle<NetMsg>, dst: usize, msg: DsmMsg) {
        let bytes = msg.wire_size();
        if !self.reliable {
            h.send(dst, NetMsg::Raw(msg), bytes);
            return;
        }
        if !self.tx[dst].has_inflight() {
            // This frame is the new oldest: its wait starts now.
            self.retx_deadline[dst] = h.now().cycles() + self.params.rto_cycles;
        }
        let seq = self.tx[dst].stage(msg.clone(), bytes);
        let ack = self.rx[dst].cum_ack();
        self.last_acked[dst] = ack;
        self.force_ack[dst] = false;
        self.stats.data_frames_sent += 1;
        h.send(
            dst,
            NetMsg::Data { seq, ack, msg },
            bytes + RELIABLE_HEADER_BYTES,
        );
        self.arm_timer(h, dst, self.params.rto_cycles);
    }

    /// Processes an incoming data frame from `src`: applies the
    /// piggybacked ack, sequences the payload, and appends every message
    /// now deliverable in order to `deliver`.
    pub fn on_data(
        &mut self,
        h: &mut ProcHandle<NetMsg>,
        src: usize,
        seq: u64,
        ack: u64,
        msg: DsmMsg,
        deliver: &mut Vec<DsmMsg>,
    ) {
        self.apply_ack(h, src, ack);
        match self.rx[src].on_data(seq, msg, deliver) {
            Accept::InOrder => {}
            Accept::Buffered => self.stats.out_of_order_buffered += 1,
            Accept::Duplicate => {
                self.stats.dup_frames_dropped += 1;
                // The peer resent (or the network duplicated) a frame we
                // already have; our ack may have been lost, so owe a fresh
                // one even though the cumulative ack is unchanged.
                self.force_ack[src] = true;
            }
        }
    }

    /// Applies a cumulative ack from `src` to the send channel.
    pub fn on_ack(&mut self, h: &mut ProcHandle<NetMsg>, src: usize, ack: u64) {
        self.apply_ack(h, src, ack);
    }

    fn apply_ack(&mut self, h: &mut ProcHandle<NetMsg>, src: usize, ack: u64) {
        if self.tx[src].on_ack(ack) && self.tx[src].has_inflight() {
            // Progress with frames still waiting: restart the timeout for
            // the new oldest frame (TCP-style timer restart; retries were
            // reset by the channel).
            self.retx_deadline[src] = h.now().cycles() + self.params.rto_cycles;
        }
    }

    /// Sends an explicit ack to `src` if one is owed — called after the
    /// protocol engine has handled a delivered frame, so any reverse data
    /// frame it produced has already carried the ack.
    pub fn flush_ack(&mut self, h: &mut ProcHandle<NetMsg>, src: usize) {
        let cum = self.rx[src].cum_ack();
        let now = h.now().cycles();
        let forced = self.force_ack[src] && now >= self.force_ack_ok_at[src];
        self.force_ack[src] = false;
        if cum > self.last_acked[src] || forced {
            self.last_acked[src] = cum;
            self.force_ack_ok_at[src] = now + self.params.rto_cycles;
            self.stats.acks_sent += 1;
            h.send(src, NetMsg::Ack { ack: cum }, ACK_FRAME_BYTES);
        }
    }

    /// Handles a retransmit timer for the channel to `peer`: resends the
    /// oldest unacked frame (unless backoff says to sit this fire out),
    /// or disarms when everything has been acked.
    pub fn on_timer(&mut self, h: &mut ProcHandle<NetMsg>, peer: usize) {
        self.stats.timer_fires += 1;
        self.timer_armed[peer] = false;
        h.charge(Category::Protocol, self.params.timer_cost_cycles);
        if !self.tx[peer].has_inflight() {
            // Inflight empty: leave the timer disarmed so the cluster can
            // quiesce. A new send re-arms it.
            return;
        }
        if h.now().cycles() < self.retx_deadline[peer] {
            // Too early — the timer was armed for an older exchange.
        } else if let Some((seq, msg, bytes)) = self.tx[peer].oldest_unacked() {
            self.stats.retransmits += 1;
            let next_rto = self.tx[peer].note_retransmit(&self.params);
            self.retx_deadline[peer] = h.now().cycles() + next_rto;
            let ack = self.rx[peer].cum_ack();
            self.last_acked[peer] = ack;
            self.force_ack[peer] = false;
            h.send(
                peer,
                NetMsg::Data { seq, ack, msg },
                bytes + RELIABLE_HEADER_BYTES,
            );
        }
        self.arm_timer(h, peer, self.params.rto_cycles);
    }

    fn arm_timer(&mut self, h: &mut ProcHandle<NetMsg>, peer: usize, delay: u64) {
        if !self.timer_armed[peer] {
            self.timer_armed[peer] = true;
            h.post_self(NetMsg::RetxCheck { peer }, delay);
        }
    }
}
