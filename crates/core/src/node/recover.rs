//! Stable-storage crash recovery: checkpoint images, the write-ahead
//! log, and the reconstruction protocol.
//!
//! The crash model is fail-stop with stable storage (the classic
//! checkpoint/log recovery discipline): a processor that crashes loses
//! whatever was in flight to its NIC, but its durable state — the last
//! two checkpoint images plus the write-ahead log — survives. Recovery
//! rebuilds the processor's memory and synchronization state from that
//! storage and *proves* the rebuild by asserting it byte-identical to
//! the state the protocol would have had without the crash; any
//! divergence is a protocol violation, never a silent resume.
//!
//! Three kinds of record go to the log, each appended at the moment the
//! state it describes changes:
//!
//! * **write post-images** — `(addr, bytes)` read back from the store
//!   *after* a write (an application store, a grant application, or a
//!   barrier application) lands. Post-images make replay insensitive to
//!   updates a detector chose not to apply: replaying what memory
//!   actually held can never resurrect overwritten data, which a
//!   payload-image log could (RT's exactly-once filter drops stale
//!   lines whose payload would otherwise clobber newer content on
//!   replay).
//! * **lock records** — a lock's hold mode and binding, logged whenever
//!   either changes (acquire, release, rebind).
//! * **barrier records** — a barrier's episode counter and consistency
//!   time, logged when an episode completes.
//!
//! Checkpoint images — the full store plus the same synchronization
//! state, FNV-checksummed — are written every K-th synchronization
//! boundary (release or barrier). The log keeps two segments aligned
//! with the two retained images: `wal` since the latest image and
//! `wal_prev` between the previous image and the latest, so a corrupt
//! latest image degrades to `prev + wal_prev + wal` instead of data
//! loss. A checkpoint that fails its checksum is *never* applied.

use midway_mem::{Addr, AddrRange, Layout, LocalStore};
use midway_proto::Mode;
use std::sync::Arc;

use super::{BarrierNode, LockNode};

/// Checkpoint image magic.
const MAGIC: &[u8; 4] = b"MWCK";

/// WAL record tags.
const REC_WRITE: u8 = 0;
const REC_LOCK: u8 = 1;
const REC_BARRIER: u8 = 2;

/// Encodes a lock hold state in one byte.
pub(crate) fn held_code(m: Option<Mode>) -> u8 {
    match m {
        None => 0,
        Some(Mode::Shared) => 1,
        Some(Mode::Exclusive) => 2,
    }
}

/// The synchronization state a checkpoint captures and a recovery must
/// reproduce: per-lock hold mode and binding, per-barrier episode
/// progress.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub(crate) struct SyncSnapshot {
    /// Per lock: (held code, binding ranges).
    pub locks: Vec<(u8, Vec<AddrRange>)>,
    /// Per barrier: (episode, last_consist).
    pub barriers: Vec<(u64, u64)>,
}

impl SyncSnapshot {
    /// Captures the live synchronization state of a node's lock and
    /// barrier tables.
    pub fn capture(locks: &[LockNode], barriers: &[BarrierNode]) -> SyncSnapshot {
        SyncSnapshot {
            locks: locks
                .iter()
                .map(|l| (held_code(l.held), l.binding.ranges().to_vec()))
                .collect(),
            barriers: barriers
                .iter()
                .map(|b| (b.episode, b.last_consist))
                .collect(),
        }
    }
}

/// What a reconstruction produced.
pub(crate) struct Recovered {
    /// The rebuilt store.
    pub store: LocalStore,
    /// The rebuilt synchronization state.
    pub sync: SyncSnapshot,
    /// Stable-storage bytes read back (image + replayed log segments).
    pub replay_bytes: u64,
    /// Whether the latest image failed its checksum and recovery fell
    /// back to the previous one. Simulated crashes never corrupt storage,
    /// so the live protocol only asserts on it in tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub used_fallback: bool,
}

/// One processor's stable storage: two checkpoint images and the
/// write-ahead log segments between and after them.
pub(crate) struct RecoveryLog {
    /// Checkpoint interval, in synchronization boundaries.
    interval: u32,
    /// Boundaries (releases + completed barriers) seen so far.
    boundaries: u64,
    /// Sequence number of the latest image (0 = none written yet).
    seq: u64,
    /// The latest checkpoint image.
    latest: Option<Vec<u8>>,
    /// The image before it (fallback when `latest` is corrupt).
    prev: Option<Vec<u8>>,
    /// Log records appended since `latest` was written (or since the
    /// start of the run, before the first checkpoint).
    wal: Vec<u8>,
    /// Log records between `prev` and `latest`.
    wal_prev: Vec<u8>,
    /// The synchronization state at the start of the run, the replay
    /// base when no checkpoint image exists or survives.
    initial: SyncSnapshot,
}

impl RecoveryLog {
    pub fn new(interval: u32, initial: SyncSnapshot) -> RecoveryLog {
        RecoveryLog {
            interval: interval.max(1),
            boundaries: 0,
            seq: 0,
            latest: None,
            prev: None,
            wal: Vec::new(),
            wal_prev: Vec::new(),
            initial,
        }
    }

    /// Sequence number of the latest checkpoint (0 before the first).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Appends a write post-image; returns the bytes appended.
    pub fn log_write(&mut self, addr: u64, bytes: &[u8]) -> u64 {
        let before = self.wal.len();
        self.wal.push(REC_WRITE);
        put_varint(&mut self.wal, addr);
        put_varint(&mut self.wal, bytes.len() as u64);
        self.wal.extend_from_slice(bytes);
        (self.wal.len() - before) as u64
    }

    /// Appends a lock-state record; returns the bytes appended.
    pub fn log_lock(&mut self, idx: usize, held: u8, ranges: &[AddrRange]) -> u64 {
        let before = self.wal.len();
        self.wal.push(REC_LOCK);
        put_varint(&mut self.wal, idx as u64);
        self.wal.push(held);
        put_varint(&mut self.wal, ranges.len() as u64);
        for r in ranges {
            put_varint(&mut self.wal, r.start);
            put_varint(&mut self.wal, r.end);
        }
        (self.wal.len() - before) as u64
    }

    /// Appends a barrier-state record; returns the bytes appended.
    pub fn log_barrier(&mut self, idx: usize, episode: u64, last_consist: u64) -> u64 {
        let before = self.wal.len();
        self.wal.push(REC_BARRIER);
        put_varint(&mut self.wal, idx as u64);
        put_varint(&mut self.wal, episode);
        put_varint(&mut self.wal, last_consist);
        (self.wal.len() - before) as u64
    }

    /// Counts one synchronization boundary; returns true when this is a
    /// K-th boundary and a checkpoint image is due.
    pub fn note_boundary(&mut self) -> bool {
        self.boundaries += 1;
        self.boundaries.is_multiple_of(u64::from(self.interval))
    }

    /// Installs a freshly encoded checkpoint image, rotating the
    /// previous one and the log segments.
    pub fn install_image(&mut self, image: Vec<u8>) {
        self.seq += 1;
        self.prev = self.latest.take();
        self.wal_prev = std::mem::take(&mut self.wal);
        self.latest = Some(image);
    }

    /// Rebuilds the store and synchronization state from stable storage:
    /// the newest checkpoint image that passes its checksum, plus every
    /// log record after it, replayed in order.
    ///
    /// # Errors
    ///
    /// Fails when both retained images are corrupt — the records from
    /// before the previous image are gone, so an honest recovery is
    /// impossible and the caller must report, not guess.
    pub fn reconstruct(&self, layout: &Arc<Layout>) -> Result<Recovered, String> {
        let mut used_fallback = false;
        let mut replay_bytes = 0u64;
        let (mut store, mut sync, segments): (_, _, Vec<&[u8]>) = match &self.latest {
            Some(img) => match decode_checkpoint(img, layout) {
                Ok((store, sync)) => {
                    replay_bytes += img.len() as u64;
                    (store, sync, vec![&self.wal])
                }
                Err(latest_err) => {
                    used_fallback = true;
                    match &self.prev {
                        Some(prev) => match decode_checkpoint(prev, layout) {
                            Ok((store, sync)) => {
                                replay_bytes += prev.len() as u64;
                                (store, sync, vec![&self.wal_prev, &self.wal])
                            }
                            Err(prev_err) => {
                                return Err(format!(
                                    "both checkpoint images are corrupt \
                                     (latest: {latest_err}; previous: {prev_err})"
                                ));
                            }
                        },
                        // Only one checkpoint was ever written and it is
                        // corrupt: wal_prev still reaches back to the
                        // start of the run, so replay from zero.
                        None => (
                            LocalStore::new(Arc::clone(layout)),
                            self.initial.clone(),
                            vec![&self.wal_prev, &self.wal],
                        ),
                    }
                }
            },
            None => (
                LocalStore::new(Arc::clone(layout)),
                self.initial.clone(),
                vec![&self.wal_prev, &self.wal],
            ),
        };
        for seg in segments {
            replay_bytes += seg.len() as u64;
            replay_log(seg, &mut store, &mut sync)?;
        }
        Ok(Recovered {
            store,
            sync,
            replay_bytes,
            used_fallback,
        })
    }

    /// Test/corruption hook: mutable access to the latest image.
    #[cfg(test)]
    pub fn latest_image_mut(&mut self) -> Option<&mut Vec<u8>> {
        self.latest.as_mut()
    }
}

/// Serializes a checkpoint image: store content, synchronization state,
/// sequence number and link epoch, with an FNV-1a 64 checksum footer.
pub(crate) fn encode_checkpoint(
    seq: u64,
    epoch: u32,
    store: &LocalStore,
    sync: &SyncSnapshot,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_varint(&mut out, seq);
    put_varint(&mut out, u64::from(epoch));
    let layout = store.layout();
    let materialized: Vec<usize> = (0..layout.region_slots())
        .filter(|&id| store.region_data(id).is_some())
        .collect();
    put_varint(&mut out, materialized.len() as u64);
    for id in materialized {
        let data = store.region_data(id).expect("filtered to materialized");
        put_varint(&mut out, id as u64);
        put_varint(&mut out, data.len() as u64);
        out.extend_from_slice(data);
    }
    put_varint(&mut out, sync.locks.len() as u64);
    for (held, ranges) in &sync.locks {
        out.push(*held);
        put_varint(&mut out, ranges.len() as u64);
        for r in ranges {
            put_varint(&mut out, r.start);
            put_varint(&mut out, r.end);
        }
    }
    put_varint(&mut out, sync.barriers.len() as u64);
    for (episode, last_consist) in &sync.barriers {
        put_varint(&mut out, *episode);
        put_varint(&mut out, *last_consist);
    }
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes and checksum-verifies a checkpoint image.
pub(crate) fn decode_checkpoint(
    img: &[u8],
    layout: &Arc<Layout>,
) -> Result<(LocalStore, SyncSnapshot), String> {
    if img.len() < MAGIC.len() + 8 {
        return Err(format!("image truncated to {} bytes", img.len()));
    }
    let (body, footer) = img.split_at(img.len() - 8);
    let stored = u64::from_le_bytes(footer.try_into().expect("8 bytes"));
    let actual = fnv1a(body);
    if stored != actual {
        return Err(format!(
            "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        ));
    }
    let mut cur = Cursor::new(body);
    if cur.take(MAGIC.len())? != MAGIC {
        return Err("bad image magic".to_string());
    }
    let _seq = cur.varint()?;
    let _epoch = cur.varint()?;
    let mut store = LocalStore::new(Arc::clone(layout));
    let nregions = cur.varint()?;
    for _ in 0..nregions {
        let id = cur.varint()? as usize;
        let len = cur.varint()? as usize;
        let data = cur.take(len)?;
        let desc = layout
            .region(id)
            .ok_or_else(|| format!("image references unknown region {id}"))?;
        if desc.used != len {
            return Err(format!(
                "region {id} image is {len} bytes but the layout uses {}",
                desc.used
            ));
        }
        store.write_bytes(desc.base(), data);
    }
    let mut sync = SyncSnapshot::default();
    let nlocks = cur.varint()?;
    for _ in 0..nlocks {
        let held = cur.u8()?;
        let nranges = cur.varint()?;
        let mut ranges = Vec::with_capacity(nranges as usize);
        for _ in 0..nranges {
            let start = cur.varint()?;
            let end = cur.varint()?;
            ranges.push(start..end);
        }
        sync.locks.push((held, ranges));
    }
    let nbarriers = cur.varint()?;
    for _ in 0..nbarriers {
        let episode = cur.varint()?;
        let last_consist = cur.varint()?;
        sync.barriers.push((episode, last_consist));
    }
    if !cur.at_end() {
        return Err("trailing bytes after image".to_string());
    }
    Ok((store, sync))
}

/// Replays one log segment's records, in order, into the store and
/// synchronization state.
fn replay_log(seg: &[u8], store: &mut LocalStore, sync: &mut SyncSnapshot) -> Result<(), String> {
    let mut cur = Cursor::new(seg);
    while !cur.at_end() {
        match cur.u8()? {
            REC_WRITE => {
                let addr = cur.varint()?;
                let len = cur.varint()? as usize;
                let data = cur.take(len)?;
                store.write_bytes(Addr(addr), data);
            }
            REC_LOCK => {
                let idx = cur.varint()? as usize;
                let held = cur.u8()?;
                let nranges = cur.varint()?;
                let mut ranges = Vec::with_capacity(nranges as usize);
                for _ in 0..nranges {
                    let start = cur.varint()?;
                    let end = cur.varint()?;
                    ranges.push(start..end);
                }
                let slot = sync
                    .locks
                    .get_mut(idx)
                    .ok_or_else(|| format!("log references unknown lock {idx}"))?;
                *slot = (held, ranges);
            }
            REC_BARRIER => {
                let idx = cur.varint()? as usize;
                let episode = cur.varint()?;
                let last_consist = cur.varint()?;
                let slot = sync
                    .barriers
                    .get_mut(idx)
                    .ok_or_else(|| format!("log references unknown barrier {idx}"))?;
                *slot = (episode, last_consist);
            }
            tag => return Err(format!("unknown log record tag {tag}")),
        }
    }
    Ok(())
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Bounds-checked decode cursor over a byte slice.
struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn new(b: &'a [u8]) -> Cursor<'a> {
        Cursor { b, i: 0 }
    }

    fn at_end(&self) -> bool {
        self.i >= self.b.len()
    }

    fn u8(&mut self) -> Result<u8, String> {
        let v = *self
            .b
            .get(self.i)
            .ok_or_else(|| "record truncated".to_string())?;
        self.i += 1;
        Ok(v)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.i + n > self.b.len() {
            return Err("record truncated".to_string());
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err("varint overflows u64".to_string());
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

#[cfg(test)]
// Bindings genuinely are one-element range vectors in these fixtures.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use midway_mem::{LayoutBuilder, MemClass};

    fn layout_with(sizes: &[usize]) -> (Arc<Layout>, Vec<Addr>) {
        let mut b = LayoutBuilder::new();
        let addrs = sizes
            .iter()
            .enumerate()
            // Distinct line shifts force distinct regions.
            .map(|(i, &len)| b.alloc(&format!("a{i}"), len, MemClass::Shared, 3 + (i as u32 % 3)))
            .map(|a| a.addr)
            .collect();
        (b.build(), addrs)
    }

    fn sample_sync() -> SyncSnapshot {
        SyncSnapshot {
            locks: vec![(2, vec![0x40_0000..0x40_0040]), (0, vec![])],
            barriers: vec![(3, 17)],
        }
    }

    /// Deterministic LCG for the property-style round-trip tests (no
    /// external randomness allowed in this workspace).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    #[test]
    fn checkpoint_round_trips_store_and_sync() {
        let (layout, addrs) = layout_with(&[256, 1024]);
        let mut store = LocalStore::new(Arc::clone(&layout));
        store.write_u64(addrs[0], 0xDEAD_BEEF);
        store.write_bytes(addrs[1] + 100, &[1, 2, 3, 4, 5]);
        let sync = sample_sync();
        let img = encode_checkpoint(7, 2, &store, &sync);
        let (rebuilt, rsync) = decode_checkpoint(&img, &layout).expect("valid image");
        assert_eq!(rebuilt.digest(), store.digest());
        assert_eq!(rsync, sync);
    }

    #[test]
    fn checkpoint_round_trips_randomized_contents() {
        // Property-style: many seeded random stores and sync states all
        // survive encode → decode bit-for-bit.
        for seed in 0..20u64 {
            let (layout, addrs) = layout_with(&[512, 300, 64]);
            let mut store = LocalStore::new(Arc::clone(&layout));
            let mut rng = Lcg(seed.wrapping_mul(0x9E37_79B9) + 1);
            for _ in 0..(seed % 7) * 4 {
                let which = (rng.next() % addrs.len() as u64) as usize;
                let limit = [512, 300, 64][which] as u64 - 8;
                let off = rng.next() % limit;
                store.write_u64(addrs[which] + off, rng.next());
            }
            let sync = SyncSnapshot {
                locks: (0..rng.next() % 5)
                    .map(|_| {
                        let start = rng.next() % (1 << 30);
                        (
                            (rng.next() % 3) as u8,
                            vec![start..start + 1 + rng.next() % 4096],
                        )
                    })
                    .collect(),
                barriers: (0..rng.next() % 4)
                    .map(|_| (rng.next(), rng.next()))
                    .collect(),
            };
            let img = encode_checkpoint(seed, (seed % 4) as u32, &store, &sync);
            let (rebuilt, rsync) =
                decode_checkpoint(&img, &layout).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(rebuilt.digest(), store.digest(), "seed {seed}");
            assert_eq!(rsync, sync, "seed {seed}");
        }
    }

    #[test]
    fn corrupt_images_are_detected_never_applied() {
        let (layout, addrs) = layout_with(&[128]);
        let mut store = LocalStore::new(Arc::clone(&layout));
        store.write_u64(addrs[0], 42);
        let img = encode_checkpoint(1, 0, &store, &sample_sync());
        // Bit flip anywhere in the body fails the checksum.
        for pos in [0, 5, img.len() / 2, img.len() - 9] {
            let mut bad = img.clone();
            bad[pos] ^= 0x10;
            assert!(
                decode_checkpoint(&bad, &layout).is_err(),
                "flip at {pos} went undetected"
            );
        }
        // Truncation at any prefix fails too.
        for keep in [0, 3, img.len() / 2, img.len() - 1] {
            assert!(
                decode_checkpoint(&img[..keep], &layout).is_err(),
                "truncation to {keep} went undetected"
            );
        }
    }

    #[test]
    fn reconstruct_replays_log_over_checkpoint() {
        let (layout, addrs) = layout_with(&[256]);
        let mut live = LocalStore::new(Arc::clone(&layout));
        let initial = SyncSnapshot {
            locks: vec![(0, vec![])],
            barriers: vec![(0, 0)],
        };
        let mut log = RecoveryLog::new(2, initial);
        // Writes before the checkpoint...
        live.write_u64(addrs[0], 1);
        log.log_write(addrs[0].raw(), live.bytes(addrs[0], 8));
        assert!(!log.note_boundary());
        assert!(log.note_boundary(), "second boundary is the K-th");
        let sync_at_ckpt = SyncSnapshot {
            locks: vec![(2, vec![addrs[0].raw()..addrs[0].raw() + 64])],
            barriers: vec![(1, 9)],
        };
        log.install_image(encode_checkpoint(1, 0, &live, &sync_at_ckpt));
        // ...and after it.
        live.write_u64(addrs[0] + 8, 2);
        log.log_write((addrs[0] + 8).raw(), live.bytes(addrs[0] + 8, 8));
        log.log_lock(0, 0, &[]);
        log.log_barrier(0, 2, 30);
        let out = log.reconstruct(&layout).expect("reconstructs");
        assert!(!out.used_fallback);
        assert_eq!(out.store.digest(), live.digest());
        assert_eq!(out.sync.locks, vec![(0, vec![])]);
        assert_eq!(out.sync.barriers, vec![(2, 30)]);
        assert!(out.replay_bytes > 0);
    }

    #[test]
    fn corrupt_latest_image_falls_back_to_previous() {
        let (layout, addrs) = layout_with(&[64]);
        let mut live = LocalStore::new(Arc::clone(&layout));
        let initial = SyncSnapshot::default();
        let mut log = RecoveryLog::new(1, initial);
        live.write_u64(addrs[0], 7);
        log.log_write(addrs[0].raw(), live.bytes(addrs[0], 8));
        log.note_boundary();
        log.install_image(encode_checkpoint(1, 0, &live, &SyncSnapshot::default()));
        live.write_u64(addrs[0] + 8, 8);
        log.log_write((addrs[0] + 8).raw(), live.bytes(addrs[0] + 8, 8));
        log.note_boundary();
        log.install_image(encode_checkpoint(2, 0, &live, &SyncSnapshot::default()));
        live.write_u64(addrs[0] + 16, 9);
        log.log_write((addrs[0] + 16).raw(), live.bytes(addrs[0] + 16, 8));
        // Corrupt the latest image: recovery must fall back to the
        // previous image plus both log segments, not apply garbage.
        log.latest_image_mut().expect("has image")[10] ^= 0xff;
        let out = log.reconstruct(&layout).expect("falls back");
        assert!(out.used_fallback);
        assert_eq!(out.store.digest(), live.digest());
    }

    #[test]
    fn reconstruct_without_any_checkpoint_replays_from_zero() {
        let (layout, addrs) = layout_with(&[64]);
        let mut live = LocalStore::new(Arc::clone(&layout));
        let initial = SyncSnapshot {
            locks: vec![(0, vec![1..2])],
            barriers: vec![],
        };
        let mut log = RecoveryLog::new(8, initial.clone());
        live.write_u64(addrs[0], 3);
        log.log_write(addrs[0].raw(), live.bytes(addrs[0], 8));
        let out = log.reconstruct(&layout).expect("replays from zero");
        assert_eq!(out.store.digest(), live.digest());
        assert_eq!(out.sync, initial);
    }

    #[test]
    fn double_corruption_is_an_error_not_a_guess() {
        let (layout, addrs) = layout_with(&[64]);
        let mut live = LocalStore::new(Arc::clone(&layout));
        let mut log = RecoveryLog::new(1, SyncSnapshot::default());
        for k in 0..2u64 {
            live.write_u64(addrs[0] + 8 * k, k + 1);
            log.log_write((addrs[0] + 8 * k).raw(), live.bytes(addrs[0] + 8 * k, 8));
            log.note_boundary();
            log.install_image(encode_checkpoint(k + 1, 0, &live, &SyncSnapshot::default()));
        }
        log.latest_image_mut().expect("has image")[6] ^= 0x01;
        // Corrupt the previous image too, via a fresh install rotation.
        log.prev.as_mut().expect("has prev")[6] ^= 0x01;
        let err = match log.reconstruct(&layout) {
            Ok(_) => panic!("reconstruction must fail when both images are corrupt"),
            Err(e) => e,
        };
        assert!(err.contains("both checkpoint images are corrupt"), "{err}");
    }
}
