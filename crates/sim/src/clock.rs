//! Per-processor cycle clocks with charge-category breakdowns.

use crate::time::VirtualTime;

/// The accounting category a span of cycles is charged to.
///
/// The paper decomposes write-detection overhead into *trapping* and
/// *collection* (Tables 3 and 4); the remaining categories let the run
/// reports separate application compute, protocol handling, and time spent
/// waiting on the network or on other processors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Category {
    /// Application computation charged via `work()`.
    Compute = 0,
    /// Write trapping: dirtybit sets (RT) or fault/twin/protect work (VM).
    WriteTrap = 1,
    /// Write collection: dirtybit scans and stamps (RT) or diff/twin-update
    /// work (VM), plus update application.
    WriteCollect = 2,
    /// Protocol software overhead: building, sending and handling messages.
    Protocol = 3,
    /// Idle time: the clock jumped forward to a message's delivery time.
    Wait = 4,
}

/// Number of distinct [`Category`] values.
pub const CATEGORY_COUNT: usize = 5;

const CATEGORIES: [Category; CATEGORY_COUNT] = [
    Category::Compute,
    Category::WriteTrap,
    Category::WriteCollect,
    Category::Protocol,
    Category::Wait,
];

impl Category {
    /// All categories, in charge-index order.
    pub fn all() -> [Category; CATEGORY_COUNT] {
        CATEGORIES
    }

    /// A short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::WriteTrap => "trap",
            Category::WriteCollect => "collect",
            Category::Protocol => "protocol",
            Category::Wait => "wait",
        }
    }
}

/// A processor's virtual clock, with per-category charge totals.
#[derive(Clone, Debug, Default)]
pub struct CpuClock {
    now: VirtualTime,
    charged: [u64; CATEGORY_COUNT],
}

impl CpuClock {
    /// Creates a clock at time zero with nothing charged.
    pub fn new() -> CpuClock {
        CpuClock::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Advances the clock by `cycles`, attributing them to `cat`.
    pub fn charge(&mut self, cat: Category, cycles: u64) {
        self.now += cycles;
        self.charged[cat as usize] += cycles;
    }

    /// Jumps the clock forward to `t` (no-op if `t` is in the past),
    /// attributing the skipped span to [`Category::Wait`].
    pub fn advance_to(&mut self, t: VirtualTime) {
        if t > self.now {
            self.charged[Category::Wait as usize] += (t - self.now).cycles();
            self.now = t;
        }
    }

    /// Total cycles charged to `cat` so far.
    pub fn charged(&self, cat: Category) -> u64 {
        self.charged[cat as usize]
    }

    /// The full per-category breakdown, indexed by `Category as usize`.
    pub fn breakdown(&self) -> [u64; CATEGORY_COUNT] {
        self.charged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_advance_time_and_accumulate() {
        let mut c = CpuClock::new();
        c.charge(Category::Compute, 100);
        c.charge(Category::WriteTrap, 9);
        c.charge(Category::WriteTrap, 9);
        assert_eq!(c.now().cycles(), 118);
        assert_eq!(c.charged(Category::Compute), 100);
        assert_eq!(c.charged(Category::WriteTrap), 18);
        assert_eq!(c.charged(Category::Wait), 0);
    }

    #[test]
    fn advance_to_charges_wait_and_never_rewinds() {
        let mut c = CpuClock::new();
        c.charge(Category::Compute, 50);
        c.advance_to(VirtualTime(200));
        assert_eq!(c.now().cycles(), 200);
        assert_eq!(c.charged(Category::Wait), 150);
        // Messages from the past must not rewind the clock.
        c.advance_to(VirtualTime(10));
        assert_eq!(c.now().cycles(), 200);
        assert_eq!(c.charged(Category::Wait), 150);
    }

    #[test]
    fn breakdown_sums_to_now() {
        let mut c = CpuClock::new();
        c.charge(Category::Compute, 7);
        c.charge(Category::Protocol, 11);
        c.advance_to(VirtualTime(100));
        let total: u64 = c.breakdown().iter().sum();
        assert_eq!(total, c.now().cycles());
    }
}
