//! In-flight message events and their deterministic total order.

use crate::time::VirtualTime;

/// A message in flight, keyed for deterministic delivery.
///
/// Events are totally ordered by `(delivery time, source, per-source
/// sequence number)`. The per-source sequence number is assigned by the
/// sending processor's own counter, so the order is independent of how OS
/// threads happen to interleave.
#[derive(Debug)]
pub struct Event<M> {
    /// Virtual time at which the message arrives at `dst`.
    pub deliver_at: VirtualTime,
    /// Sending processor.
    pub src: usize,
    /// Sequence number within `src`'s send stream.
    pub seq: u64,
    /// Destination processor.
    pub dst: usize,
    /// Payload.
    pub msg: M,
}

impl<M> Event<M> {
    fn key(&self) -> (VirtualTime, usize, u64) {
        (self.deliver_at, self.src, self.seq)
    }
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn ev(t: u64, src: usize, seq: u64) -> Event<&'static str> {
        Event {
            deliver_at: VirtualTime(t),
            src,
            seq,
            dst: 0,
            msg: "x",
        }
    }

    #[test]
    fn orders_by_time_then_source_then_seq() {
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(ev(50, 1, 0)));
        heap.push(Reverse(ev(50, 0, 3)));
        heap.push(Reverse(ev(10, 2, 9)));
        heap.push(Reverse(ev(50, 0, 1)));
        let order: Vec<_> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.deliver_at.cycles(), e.src, e.seq))
            .collect();
        assert_eq!(order, vec![(10, 2, 9), (50, 0, 1), (50, 0, 3), (50, 1, 0)]);
    }
}
