//! The simulated interconnect cost model.

/// Cost model for the cluster interconnect.
///
/// The paper's platform is a 140 Mbit/s Fore ATM switch driven directly via
/// AAL3/4, bypassing the Unix server. The paper does not report message
/// latencies, so the software overheads here are documented estimates (see
/// `DESIGN.md`); the wire rate is the quoted 140 Mbit/s, which at 25 MHz is
/// about 1.43 cycles per byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetModel {
    /// Fixed wire/switch latency per message, in cycles.
    pub latency_cycles: u64,
    /// Wire time per byte, in milli-cycles (1000 = one cycle per byte).
    pub per_byte_millicycles: u64,
    /// Sender-side software overhead per message, in cycles.
    pub send_overhead_cycles: u64,
    /// Receiver-side software overhead per message, in cycles.
    pub recv_overhead_cycles: u64,
}

impl NetModel {
    /// The default model for the paper's ATM cluster at 25 MHz.
    ///
    /// 20 µs switch latency (500 cycles), 140 Mbit/s wire (1430
    /// milli-cycles/byte), and 300 µs (7500 cycles) of protocol software on
    /// each side.
    pub fn atm_cluster() -> NetModel {
        NetModel {
            latency_cycles: 500,
            per_byte_millicycles: 1430,
            send_overhead_cycles: 7_500,
            recv_overhead_cycles: 7_500,
        }
    }

    /// A zero-cost network, useful in tests.
    pub fn ideal() -> NetModel {
        NetModel {
            latency_cycles: 0,
            per_byte_millicycles: 0,
            send_overhead_cycles: 0,
            recv_overhead_cycles: 0,
        }
    }

    /// Returns this model with every cost scaled by `num/den`.
    ///
    /// Used by the network-sensitivity ablation.
    pub fn scaled(self, num: u64, den: u64) -> NetModel {
        let s = |v: u64| v * num / den;
        NetModel {
            latency_cycles: s(self.latency_cycles),
            per_byte_millicycles: s(self.per_byte_millicycles),
            send_overhead_cycles: s(self.send_overhead_cycles),
            recv_overhead_cycles: s(self.recv_overhead_cycles),
        }
    }

    /// Wire time (latency plus serialization) for a message of `bytes`.
    pub fn wire_cycles(&self, bytes: u64) -> u64 {
        self.latency_cycles + (bytes * self.per_byte_millicycles).div_ceil(1000)
    }
}

impl Default for NetModel {
    fn default() -> NetModel {
        NetModel::atm_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_size() {
        let n = NetModel::atm_cluster();
        let small = n.wire_cycles(64);
        let large = n.wire_cycles(4096);
        assert!(large > small);
        // 4096 bytes at 1.43 cycles/byte is ~5858 cycles plus latency.
        assert_eq!(large, 500 + (4096u64 * 1430).div_ceil(1000));
    }

    #[test]
    fn ideal_network_is_free() {
        let n = NetModel::ideal();
        assert_eq!(n.wire_cycles(1_000_000), 0);
        assert_eq!(n.send_overhead_cycles, 0);
    }

    #[test]
    fn scaling_halves_costs() {
        let n = NetModel::atm_cluster().scaled(1, 2);
        assert_eq!(n.latency_cycles, 250);
        assert_eq!(n.per_byte_millicycles, 715);
    }
}
