//! Deterministic virtual-time cluster simulator.
//!
//! This crate provides the execution substrate for the Midway DSM
//! reproduction: a fixed set of simulated processors, each with its own
//! virtual cycle clock, communicating only through a simulated
//! message-passing network (modelled on the ATM cluster used in the paper).
//!
//! # Determinism
//!
//! Each simulated processor runs on its own OS thread, but the scheduler
//! delivers a pending message only when *every* processor thread is blocked
//! (waiting to receive) or finished, and it always delivers the globally
//! minimal event under the total order `(delivery time, source, per-source
//! sequence number)`. A woken processor advances its clock to the delivery
//! time before it can send again, so deliveries are nondecreasing in virtual
//! time and the entire execution — every clock value, counter, and message —
//! is a pure function of the program being simulated.
//!
//! # Examples
//!
//! ```
//! use midway_sim::{Cluster, ClusterConfig, NetModel};
//!
//! // Two processors play ping-pong once.
//! let cfg = ClusterConfig::new(2).net(NetModel::ideal());
//! let outcome = Cluster::run(cfg, |p| {
//!     if p.id() == 0 {
//!         p.send(1, "ping", 4);
//!         let (_t, _src, msg) = p.recv();
//!         assert_eq!(msg, "pong");
//!     } else {
//!         let (_t, _src, msg) = p.recv();
//!         assert_eq!(msg, "ping");
//!         p.send(0, "pong", 4);
//!     }
//!     p.id()
//! })
//! .unwrap();
//! assert_eq!(outcome.results, vec![0, 1]);
//! ```

mod clock;
mod cluster;
mod event;
mod fault;
mod net;
mod queue;
mod rng;
mod sched;
mod time;

pub use clock::{Category, CpuClock, CATEGORY_COUNT};
pub use cluster::{Cluster, ClusterConfig, ProcHandle, ProcReport, RunOutcome, SimError};
pub use fault::{CrashEvent, FaultDecision, FaultPlan, FaultStats, MAX_CRASHES};
pub use net::NetModel;
pub use rng::SplitMix64;
pub use sched::SchedStats;
pub use time::VirtualTime;
