//! A tiny deterministic PRNG for workload generation.

/// SplitMix64: a fast, high-quality 64-bit PRNG with a trivial state.
///
/// The workload generators use this instead of the `rand` crate so that
/// generated inputs (and therefore every simulation counter) are stable
/// across `rand` releases and platforms.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; the slight modulo bias is irrelevant for
        // workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffles a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(9);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let v = r.next_range_f64(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&v));
        }
    }
}
