//! Deterministic network fault injection.
//!
//! A [`FaultPlan`] describes, per message, whether the simulated network
//! drops, duplicates, reorders or delays it. The decision for a message is
//! a pure function of `(plan seed, src, dst, per-source sequence number)`
//! — a private [`SplitMix64`] stream per message — so it does not depend
//! on OS-thread interleaving, heap layout, or anything else outside the
//! simulation: the same seed always produces the same fault schedule, and
//! a faulty run is exactly as replayable and sweepable as a fault-free
//! one.
//!
//! Rates are expressed in parts per million of messages (`10_000` ppm =
//! 1%). At most one fault applies per physical message; the rate fields
//! partition the probability space in declaration order (drop first, then
//! duplicate, reorder, delay).

use crate::rng::SplitMix64;

/// What the network does to one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Silently discard the message.
    Drop,
    /// Deliver the message *and* a second copy `extra_delay` cycles later.
    Duplicate {
        /// Extra latency of the second copy, in cycles (≥ 1).
        extra_delay: u64,
    },
    /// Add a short jitter intended to flip the order of adjacent
    /// deliveries.
    Reorder {
        /// Extra latency, in cycles (≥ 1).
        extra_delay: u64,
    },
    /// Stall the message well beyond normal wire time.
    Delay {
        /// Extra latency, in cycles (≥ 1).
        extra_delay: u64,
    },
}

/// Per-processor tallies of injected faults (published in
/// [`ProcReport`](crate::ProcReport)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages this processor sent that the network discarded.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages given reordering jitter.
    pub reordered: u64,
    /// Messages given a long stall.
    pub delayed: u64,
}

impl FaultStats {
    /// Element-wise sum, for cluster-wide aggregation.
    pub fn add(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.delayed += other.delayed;
    }

    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered + self.delayed
    }
}

/// One scheduled processor crash: processor `proc` fails at virtual cycle
/// `at` and restarts `down` cycles later. Between `at` and `at + down`
/// the processor is dark — everything addressed to it in that window is
/// lost (its NIC is down) and must be repaired by higher layers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashEvent {
    /// The processor that fails.
    pub proc: u32,
    /// Virtual cycle of the failure (clamped to ≥ 1 when scheduled).
    pub at: u64,
    /// Downtime before the restart, in cycles (clamped to ≥ 1).
    pub down: u64,
}

/// Upper bound on scheduled crashes per plan. A fixed-size array keeps
/// [`FaultPlan`] (and with it `MidwayConfig`) `Copy`; eight crashes per
/// run is far beyond anything the sweeps schedule.
pub const MAX_CRASHES: usize = 8;

/// A seeded, deterministic schedule of network faults.
///
/// The plan distinguishes *disabled* ([`FaultPlan::none`], the default:
/// the network is perfect and the fault machinery is completely inert)
/// from *enabled with zero rates* ([`FaultPlan::seeded`]): the latter
/// injects nothing but signals to higher layers (the DSM's reliable
/// delivery channel) that the network is untrusted, which is exactly the
/// configuration used to measure the reliability overhead at 0% loss.
///
/// A plan can also schedule processor crashes ([`FaultPlan::with_crash`]):
/// deterministic kill-and-restart events delivered through the scheduler,
/// so a crashed run is exactly as replayable as a lossy one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Whether the network is treated as faulty at all.
    pub enabled: bool,
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Probability of dropping a message, in parts per million.
    pub drop_ppm: u32,
    /// Probability of duplicating a message, in parts per million.
    pub dup_ppm: u32,
    /// Probability of reordering jitter, in parts per million.
    pub reorder_ppm: u32,
    /// Probability of a long stall, in parts per million.
    pub delay_ppm: u32,
    /// Upper bound on a [`FaultDecision::Delay`] stall, in cycles.
    pub max_delay_cycles: u64,
    /// Upper bound on [`FaultDecision::Reorder`] /
    /// [`FaultDecision::Duplicate`] jitter, in cycles. Sized around the
    /// wire latency so a jittered message lands after its successors.
    pub reorder_window_cycles: u64,
    /// Scheduled processor crashes; only the first `crash_len` entries
    /// are meaningful.
    pub crashes: [CrashEvent; MAX_CRASHES],
    /// Number of valid entries in `crashes`.
    pub crash_len: u8,
}

impl FaultPlan {
    /// A perfectly reliable network (the default).
    pub fn none() -> FaultPlan {
        FaultPlan {
            enabled: false,
            seed: 0,
            drop_ppm: 0,
            dup_ppm: 0,
            reorder_ppm: 0,
            delay_ppm: 0,
            max_delay_cycles: 0,
            reorder_window_cycles: 0,
            crashes: [CrashEvent::default(); MAX_CRASHES],
            crash_len: 0,
        }
    }

    /// An enabled plan with zero fault rates: injects nothing, but marks
    /// the network untrusted (higher layers run their reliability
    /// machinery). This is the 0%-loss overhead-measurement point.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            enabled: true,
            seed,
            drop_ppm: 0,
            dup_ppm: 0,
            reorder_ppm: 0,
            delay_ppm: 0,
            max_delay_cycles: 100_000,
            reorder_window_cycles: 5_000,
            crashes: [CrashEvent::default(); MAX_CRASHES],
            crash_len: 0,
        }
    }

    /// A plan that only drops messages, at `drop_ppm` parts per million.
    pub fn lossy(seed: u64, drop_ppm: u32) -> FaultPlan {
        FaultPlan {
            drop_ppm,
            ..FaultPlan::seeded(seed)
        }
    }

    /// A plan exercising every fault kind at the same rate.
    pub fn chaos(seed: u64, ppm: u32) -> FaultPlan {
        FaultPlan {
            drop_ppm: ppm,
            dup_ppm: ppm,
            reorder_ppm: ppm,
            delay_ppm: ppm,
            ..FaultPlan::seeded(seed)
        }
    }

    /// Replaces the drop rate.
    pub fn drop_ppm(mut self, ppm: u32) -> FaultPlan {
        self.drop_ppm = ppm;
        self
    }

    /// Replaces the duplication rate.
    pub fn dup_ppm(mut self, ppm: u32) -> FaultPlan {
        self.dup_ppm = ppm;
        self
    }

    /// Replaces the reorder rate.
    pub fn reorder_ppm(mut self, ppm: u32) -> FaultPlan {
        self.reorder_ppm = ppm;
        self
    }

    /// Replaces the delay rate.
    pub fn delay_ppm(mut self, ppm: u32) -> FaultPlan {
        self.delay_ppm = ppm;
        self
    }

    /// Whether any fault can actually occur.
    pub fn any_rates(&self) -> bool {
        self.enabled && (self.drop_ppm | self.dup_ppm | self.reorder_ppm | self.delay_ppm) != 0
    }

    /// Schedules a crash of processor `proc` at cycle `at`, restarting
    /// `down` cycles later. Enables the plan: a crash severs in-flight
    /// traffic, so the run needs the reliable channel to repair it.
    ///
    /// `at` and `down` are clamped to ≥ 1 (a crash at cycle 0 would race
    /// node construction, and a zero downtime is not a crash).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_CRASHES`] crashes are scheduled.
    pub fn with_crash(mut self, proc: usize, at: u64, down: u64) -> FaultPlan {
        let i = usize::from(self.crash_len);
        assert!(i < MAX_CRASHES, "at most {MAX_CRASHES} crashes per plan");
        self.crashes[i] = CrashEvent {
            proc: proc as u32,
            at: at.max(1),
            down: down.max(1),
        };
        self.crash_len += 1;
        self.enabled = true;
        self
    }

    /// The scheduled crashes, in scheduling order.
    pub fn crashes(&self) -> &[CrashEvent] {
        &self.crashes[..usize::from(self.crash_len)]
    }

    /// Whether the plan schedules any crash at all.
    pub fn has_crashes(&self) -> bool {
        self.crash_len > 0
    }

    /// The crashes of one processor, sorted by time and normalized so the
    /// windows never overlap: each crash fires no earlier than the cycle
    /// after the previous recovery completes. This is the schedule a node
    /// actually arms at construction.
    pub fn crashes_for(&self, proc: usize) -> Vec<CrashEvent> {
        let mut own: Vec<CrashEvent> = self
            .crashes()
            .iter()
            .copied()
            .filter(|c| c.proc as usize == proc)
            .collect();
        own.sort_by_key(|c| c.at);
        let mut next_free = 0u64;
        for c in &mut own {
            c.at = c.at.max(next_free);
            next_free = c.at + c.down + 1;
        }
        own
    }

    /// The fate of the message `src` sends to `dst` with per-source
    /// sequence number `seq`.
    ///
    /// Pure: the same `(plan, src, dst, seq)` always returns the same
    /// decision.
    pub fn decide(&self, src: usize, dst: usize, seq: u64) -> FaultDecision {
        if !self.enabled {
            return FaultDecision::Deliver;
        }
        let budget = u64::from(self.drop_ppm)
            + u64::from(self.dup_ppm)
            + u64::from(self.reorder_ppm)
            + u64::from(self.delay_ppm);
        if budget == 0 {
            return FaultDecision::Deliver;
        }
        let mut rng = self.message_rng(src, dst, seq);
        let roll = rng.next_below(1_000_000);
        let mut threshold = u64::from(self.drop_ppm);
        if roll < threshold {
            return FaultDecision::Drop;
        }
        threshold += u64::from(self.dup_ppm);
        if roll < threshold {
            return FaultDecision::Duplicate {
                extra_delay: 1 + rng.next_below(self.reorder_window_cycles.max(1)),
            };
        }
        threshold += u64::from(self.reorder_ppm);
        if roll < threshold {
            return FaultDecision::Reorder {
                extra_delay: 1 + rng.next_below(self.reorder_window_cycles.max(1)),
            };
        }
        threshold += u64::from(self.delay_ppm);
        if roll < threshold {
            return FaultDecision::Delay {
                extra_delay: 1 + rng.next_below(self.max_delay_cycles.max(1)),
            };
        }
        FaultDecision::Deliver
    }

    /// The per-message random stream: the seed and the message identity
    /// mixed through SplitMix64.
    fn message_rng(&self, src: usize, dst: usize, seq: u64) -> SplitMix64 {
        let mut state = self.seed ^ 0x6D79_6D73_6700_0000; // "mymsg"-ish salt
        for v in [src as u64, dst as u64, seq] {
            // One SplitMix64 scramble round per component: enough mixing
            // that adjacent (src, dst, seq) triples decorrelate fully.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
            state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            state ^= state >> 31;
        }
        SplitMix64::new(state)
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_always_delivers() {
        let p = FaultPlan::none();
        for seq in 0..1000 {
            assert_eq!(p.decide(0, 1, seq), FaultDecision::Deliver);
        }
        assert!(!p.any_rates());
    }

    #[test]
    fn seeded_zero_rate_plan_delivers_but_is_enabled() {
        let p = FaultPlan::seeded(42);
        assert!(p.enabled);
        assert!(!p.any_rates());
        for seq in 0..1000 {
            assert_eq!(p.decide(2, 3, seq), FaultDecision::Deliver);
        }
    }

    #[test]
    fn decisions_are_deterministic_per_message() {
        let p = FaultPlan::chaos(7, 100_000);
        for seq in 0..500 {
            assert_eq!(p.decide(1, 2, seq), p.decide(1, 2, seq));
        }
    }

    #[test]
    fn decisions_differ_across_seeds_and_messages() {
        let a = FaultPlan::lossy(1, 500_000);
        let b = FaultPlan::lossy(2, 500_000);
        let a_fates: Vec<_> = (0..256).map(|s| a.decide(0, 1, s)).collect();
        let b_fates: Vec<_> = (0..256).map(|s| b.decide(0, 1, s)).collect();
        assert_ne!(a_fates, b_fates, "seeds should change the schedule");
        let other_link: Vec<_> = (0..256).map(|s| a.decide(1, 0, s)).collect();
        assert_ne!(a_fates, other_link, "links should have independent fates");
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let p = FaultPlan::lossy(99, 10_000); // 1%
        let n = 200_000;
        let drops = (0..n)
            .filter(|&s| p.decide(0, 1, s) == FaultDecision::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!(
            (0.008..0.012).contains(&rate),
            "1% nominal, measured {rate}"
        );
    }

    #[test]
    fn at_most_one_fault_kind_per_message_and_delays_bounded() {
        let p = FaultPlan::chaos(5, 200_000);
        for seq in 0..20_000 {
            match p.decide(3, 4, seq) {
                FaultDecision::Deliver | FaultDecision::Drop => {}
                FaultDecision::Duplicate { extra_delay }
                | FaultDecision::Reorder { extra_delay } => {
                    assert!((1..=p.reorder_window_cycles).contains(&extra_delay));
                }
                FaultDecision::Delay { extra_delay } => {
                    assert!((1..=p.max_delay_cycles).contains(&extra_delay));
                }
            }
        }
    }

    #[test]
    fn crash_plan_enables_and_filters_per_proc() {
        let p = FaultPlan::none()
            .with_crash(2, 5_000, 1_000)
            .with_crash(0, 9_000, 500)
            .with_crash(2, 20_000, 2_000);
        assert!(p.enabled, "a crash plan needs the reliable channel");
        assert!(p.has_crashes());
        assert_eq!(p.crashes().len(), 3);
        assert_eq!(
            p.crashes_for(2),
            vec![
                CrashEvent {
                    proc: 2,
                    at: 5_000,
                    down: 1_000
                },
                CrashEvent {
                    proc: 2,
                    at: 20_000,
                    down: 2_000
                },
            ]
        );
        assert_eq!(p.crashes_for(1), vec![]);
        assert!(!p.any_rates(), "crashes are not message faults");
    }

    #[test]
    fn overlapping_crash_windows_are_normalized() {
        // Second crash scheduled inside the first's downtime: it must be
        // pushed past the recovery point, never overlap it.
        let p = FaultPlan::none()
            .with_crash(1, 1_000, 5_000)
            .with_crash(1, 2_000, 100);
        let own = p.crashes_for(1);
        assert_eq!(own[0].at, 1_000);
        assert_eq!(own[1].at, 1_000 + 5_000 + 1);
    }

    #[test]
    fn crash_times_are_clamped_positive() {
        let p = FaultPlan::none().with_crash(0, 0, 0);
        let c = p.crashes_for(0)[0];
        assert_eq!((c.at, c.down), (1, 1));
    }

    #[test]
    fn stats_aggregate() {
        let mut a = FaultStats {
            dropped: 1,
            duplicated: 2,
            reordered: 3,
            delayed: 4,
        };
        a.add(&FaultStats {
            dropped: 10,
            ..FaultStats::default()
        });
        assert_eq!(a.dropped, 11);
        assert_eq!(a.total(), 20);
    }
}
