//! The conservative virtual-time scheduler.
//!
//! Invariant: a pending event is delivered only when no processor thread is
//! `Running`, and the event chosen is the global minimum under
//! `(delivery time, src, seq)`. Because a woken processor first advances its
//! clock to the delivery time, every event it subsequently posts is later
//! than anything already delivered, so deliveries are nondecreasing in
//! virtual time and the execution is deterministic.
//!
//! Two scale-out refinements keep the dispatch path O(log queue) instead of
//! O(procs):
//!
//! * Waiter sets. Blocked and draining processors are tracked in indexed
//!   sets ([`ProcSet`]: swap-remove vector plus position map, O(1) each
//!   way), so deadlock detection is an `is_empty` check, the deadlock
//!   report is built lazily from the index only after a deadlock has been
//!   detected, and quiescence walks exactly the drainers instead of
//!   scanning every processor's state.
//! * Event batching. When consecutive heap minima are addressed to the
//!   same processor at the same instant, they are delivered as one batch
//!   and drained by the destination across successive `recv`s without
//!   rendezvousing with the scheduler in between. Batching only events
//!   with `src <= dst` keeps the schedule identical to one-at-a-time
//!   delivery: anything the woken processor posts sorts at
//!   `(t', dst, fresh seq)` with `t' >= t`, which the heap orders after
//!   every batched `(t, src <= dst, older seq)` entry.
//!
//! Two host-allocation refinements ride along (see [`crate::queue`] for the
//! event store itself): pending events live in a calendar ring instead of a
//! binary heap, and the per-batch `VecDeque`s are recycled through a small
//! freelist instead of being allocated per dispatch and dropped per drain.
//! [`SchedStats`] counts what each path did, purely for host-side perf
//! attribution — none of it feeds virtual time.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::event::Event;
use crate::queue::EventQueue;
use crate::time::VirtualTime;

/// Most batch deques kept for reuse; beyond this they drop normally.
const SPARE_CAP: usize = 64;

/// Host-side scheduler counters for performance attribution. Purely
/// observational: nothing here affects delivery order or virtual time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events delivered to destination slots.
    pub delivered: u64,
    /// Scheduler rendezvous (dispatch calls that delivered something).
    pub dispatches: u64,
    /// Events delivered as batch extras — beyond the first of each batch,
    /// so consumed without a scheduler rendezvous.
    pub batched: u64,
    /// Queue pops served by the calendar ring.
    pub near_pops: u64,
    /// Queue pops served by the overflow heap.
    pub far_pops: u64,
    /// Batch deques drawn from the freelist instead of freshly allocated.
    pub deques_recycled: u64,
}

/// Lifecycle state of a simulated processor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ProcState {
    /// The processor's thread is executing (compute or sends).
    Running,
    /// Blocked in `recv`: it must receive a message to make progress.
    Blocked,
    /// Blocked in `drain_recv`: it accepts messages but may also be released
    /// when the whole cluster quiesces.
    Draining,
    /// The processor's thread has finished.
    Done,
}

/// An indexed set of processor ids: O(1) insert, O(1) remove, O(members)
/// iteration. `pos[p]` is `p`'s index in `members`, or `usize::MAX` when
/// absent; removal swap-removes, so iteration order is arbitrary.
pub(crate) struct ProcSet {
    members: Vec<usize>,
    pos: Vec<usize>,
}

impl ProcSet {
    const ABSENT: usize = usize::MAX;

    fn new(procs: usize) -> ProcSet {
        ProcSet {
            members: Vec::with_capacity(procs),
            pos: vec![Self::ABSENT; procs],
        }
    }

    fn insert(&mut self, p: usize) {
        debug_assert_eq!(self.pos[p], Self::ABSENT, "proc {p} already in set");
        self.pos[p] = self.members.len();
        self.members.push(p);
    }

    fn remove(&mut self, p: usize) {
        let at = self.pos[p];
        debug_assert_ne!(at, Self::ABSENT, "proc {p} not in set");
        self.pos[p] = Self::ABSENT;
        self.members.swap_remove(at);
        if let Some(&moved) = self.members.get(at) {
            self.pos[moved] = at;
        }
    }

    fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members in ascending order (sorted on demand: this is the
    /// report path, not the hot path).
    fn sorted(&self) -> Vec<usize> {
        let mut v = self.members.clone();
        v.sort_unstable();
        v
    }
}

/// What the scheduler left in a processor's mailbox: a batch of
/// ready-to-consume deliveries, drained front-to-back.
pub(crate) enum Slot<M> {
    Empty,
    Msgs(VecDeque<(VirtualTime, usize, M)>),
    /// The cluster has quiesced; a draining processor may finish.
    Quiesce,
}

/// Why the simulation was aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Poison {
    /// No processor can make progress: `blocked` lists those stuck in `recv`.
    Deadlock { blocked: Vec<usize> },
    /// A message was addressed to a processor that had already finished.
    MessageToFinished { src: usize, dst: usize },
    /// An application closure panicked.
    Panic { proc: usize, message: String },
    /// A protocol layer detected an invariant violation (e.g. a message
    /// routed to a processor that does not own the addressed resource) and
    /// aborted deliberately instead of panicking.
    Protocol { proc: usize, message: String },
    /// The runtime detected an application-level misuse of the DSM API
    /// (e.g. an out-of-bounds shared write) and aborted deliberately.
    App { proc: usize, message: String },
}

pub(crate) struct SchedInner<M> {
    pub procs: Vec<ProcState>,
    pub running: usize,
    pub queue: EventQueue<M>,
    pub slots: Vec<Slot<M>>,
    pub poison: Option<Poison>,
    pub delivered: u64,
    /// Dispatches that delivered a batch (scheduler rendezvous count).
    dispatches: u64,
    /// Events delivered beyond the first of their batch.
    batched: u64,
    /// Batch deques drawn from `spare` instead of freshly allocated.
    recycled: u64,
    /// Freelist of emptied batch deques, reused by the next dispatch.
    spare: Vec<VecDeque<(VirtualTime, usize, M)>>,
    /// Processors currently in [`ProcState::Blocked`].
    blocked: ProcSet,
    /// Processors currently in [`ProcState::Draining`].
    draining: ProcSet,
}

/// The scheduler: one shared state mutex plus **one condvar per
/// processor**. Exactly one thread ever waits on `cvs[i]` — processor
/// `i`'s own — so delivering an event wakes only its destination
/// (`notify_one` on that slot) instead of storming every blocked thread
/// through a global condvar. On a host with fewer cores than simulated
/// processors the global-notify design made every delivery pay `procs`
/// wakeups and `procs` mutex reacquisitions; the per-processor slots cut
/// that to one.
pub(crate) struct Scheduler<M> {
    pub inner: Mutex<SchedInner<M>>,
    cvs: Vec<Condvar>,
}

impl<M> Scheduler<M> {
    /// Locks the shared state. An application panic unwinds through
    /// `catch_unwind` without holding this mutex (the guard is released
    /// before the closure runs), so std's poison flag carries no
    /// information here — application failures are reported through
    /// [`Poison`] instead, and a poisoned guard is simply recovered.
    fn lock(&self) -> MutexGuard<'_, SchedInner<M>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of the abort condition, if any (for the driver thread).
    pub fn poison(&self) -> Option<Poison> {
        self.lock().poison.clone()
    }

    pub fn new(procs: usize) -> Scheduler<M> {
        Scheduler {
            inner: Mutex::new(SchedInner {
                procs: vec![ProcState::Running; procs],
                running: procs,
                queue: EventQueue::new(),
                slots: (0..procs).map(|_| Slot::Empty).collect(),
                poison: None,
                delivered: 0,
                dispatches: 0,
                batched: 0,
                recycled: 0,
                spare: Vec::new(),
                blocked: ProcSet::new(procs),
                draining: ProcSet::new(procs),
            }),
            cvs: (0..procs).map(|_| Condvar::new()).collect(),
        }
    }

    /// Queues an in-flight message. Called only by a `Running` thread, so no
    /// dispatch can be due yet.
    pub fn post(&self, ev: Event<M>) {
        let mut inner = self.lock();
        inner.queue.push(ev);
    }

    /// Blocks processor `me` until a message arrives (or, when `draining`,
    /// until the cluster quiesces). Returns `Ok(None)` only on quiescence.
    ///
    /// When a prior dispatch left a batch in this processor's slot, the
    /// next delivery is consumed immediately — the thread stays `Running`
    /// and never rendezvouses with the scheduler.
    pub fn block_recv(
        &self,
        me: usize,
        draining: bool,
    ) -> Result<Option<(VirtualTime, usize, M)>, Poison> {
        let mut inner = self.lock();
        debug_assert_eq!(inner.procs[me], ProcState::Running);
        if let Some(p) = &inner.poison {
            return Err(p.clone());
        }
        if let Some(m) = Self::take_from_slot(&mut inner, me) {
            return Ok(Some(m));
        }
        inner.running -= 1;
        if draining {
            inner.procs[me] = ProcState::Draining;
            inner.draining.insert(me);
        } else {
            inner.procs[me] = ProcState::Blocked;
            inner.blocked.insert(me);
        }
        if inner.running == 0 {
            self.dispatch(&mut inner);
        }
        loop {
            if let Some(p) = &inner.poison {
                return Err(p.clone());
            }
            if let Slot::Quiesce = inner.slots[me] {
                debug_assert!(draining);
                inner.slots[me] = Slot::Empty;
                return Ok(None);
            }
            if let Some(m) = Self::take_from_slot(&mut inner, me) {
                debug_assert_eq!(inner.procs[me], ProcState::Running);
                return Ok(Some(m));
            }
            // Waiting on this processor's own slot: only a delivery
            // addressed here (or poison/quiesce) wakes this thread.
            inner = self.cvs[me]
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pops the next delivery from `me`'s slot batch, normalizing an
    /// emptied batch back to `Empty` and parking its deque on the
    /// freelist for the next dispatch.
    fn take_from_slot(inner: &mut SchedInner<M>, me: usize) -> Option<(VirtualTime, usize, M)> {
        let Slot::Msgs(q) = &mut inner.slots[me] else {
            return None;
        };
        let m = q.pop_front();
        if q.is_empty() {
            let Slot::Msgs(q) = std::mem::replace(&mut inner.slots[me], Slot::Empty) else {
                unreachable!("slot kind checked above")
            };
            if inner.spare.len() < SPARE_CAP {
                inner.spare.push(q);
            }
        }
        m
    }

    /// Marks `me` finished. Valid from `Running` (closure returned without
    /// draining) or `Draining` (released by quiescence).
    pub fn finish(&self, me: usize) {
        let mut inner = self.lock();
        match inner.procs[me] {
            ProcState::Running => {
                // A leftover batched delivery is a message to a finished
                // processor, exactly as if it were still in the heap.
                if let Slot::Msgs(q) = &inner.slots[me] {
                    if let Some(&(_, src, _)) = q.front() {
                        self.poison_locked(&mut inner, Poison::MessageToFinished { src, dst: me });
                        return;
                    }
                }
                inner.running -= 1;
                inner.procs[me] = ProcState::Done;
                if inner.running == 0 {
                    self.dispatch(&mut inner);
                }
            }
            ProcState::Draining => {
                // Already excluded from `running` by `block_recv`. The
                // quiescence decision does not need re-evaluation: it fires
                // only once all drainers are released together.
                inner.draining.remove(me);
                inner.procs[me] = ProcState::Done;
            }
            s => panic!("finish() from invalid state {s:?}"),
        }
    }

    /// Records a fatal condition and wakes every waiter.
    pub fn set_poison(&self, p: Poison) {
        let mut inner = self.lock();
        self.poison_locked(&mut inner, p);
    }

    /// Marks `me` dead after a panic and poisons the cluster.
    pub fn abandon(&self, me: usize, message: String) {
        let mut inner = self.lock();
        match inner.procs[me] {
            ProcState::Running => inner.running -= 1,
            ProcState::Blocked => inner.blocked.remove(me),
            ProcState::Draining => inner.draining.remove(me),
            ProcState::Done => {}
        }
        inner.procs[me] = ProcState::Done;
        self.poison_locked(&mut inner, Poison::Panic { proc: me, message });
    }

    pub fn delivered(&self) -> u64 {
        self.lock().delivered
    }

    /// Snapshot of the host-side attribution counters.
    pub fn stats(&self) -> SchedStats {
        let inner = self.lock();
        SchedStats {
            delivered: inner.delivered,
            dispatches: inner.dispatches,
            batched: inner.batched,
            near_pops: inner.queue.near_pops,
            far_pops: inner.queue.far_pops,
            deques_recycled: inner.recycled,
        }
    }

    /// Records a fatal condition (first poison wins) and wakes every
    /// waiter — each processor's condvar is notified exactly once, not
    /// `procs` redundant broadcasts.
    fn poison_locked(&self, inner: &mut SchedInner<M>, p: Poison) {
        if inner.poison.is_none() {
            inner.poison = Some(p);
        }
        for cv in &self.cvs {
            cv.notify_one();
        }
    }

    /// Delivers the minimal pending event — plus every consecutive heap
    /// minimum for the same destination at the same instant — or detects
    /// deadlock/quiescence. Must be called with `running == 0`.
    ///
    /// The hot path — a batch delivered to a blocked destination —
    /// allocates only the batch deque and wakes exactly one thread. The
    /// deadlock report (which allocates and sorts) is built from the
    /// blocked index only in the empty-queue arm, after the deadlock has
    /// actually been detected.
    fn dispatch(&self, inner: &mut SchedInner<M>) {
        debug_assert_eq!(inner.running, 0);
        if inner.poison.is_some() {
            for cv in &self.cvs {
                cv.notify_one();
            }
            return;
        }
        match inner.queue.pop() {
            Some(ev) => match inner.procs[ev.dst] {
                ProcState::Blocked | ProcState::Draining => {
                    let dst = ev.dst;
                    let at = ev.deliver_at;
                    let mut batch = if let Some(q) = inner.spare.pop() {
                        inner.recycled += 1;
                        q
                    } else {
                        VecDeque::with_capacity(1)
                    };
                    batch.push_back((ev.deliver_at, ev.src, ev.msg));
                    // Batch every consecutive minimum bound for the same
                    // slot at the same instant. `src <= dst` keeps the
                    // order identical to one-at-a-time delivery: whatever
                    // the destination posts once woken carries a fresh
                    // (higher) sequence number from `src == dst` at a time
                    // `>= at`, which sorts after everything taken here.
                    while let Some(next) = inner.queue.peek() {
                        if next.dst != dst || next.deliver_at != at || next.src > dst {
                            break;
                        }
                        let Some(n) = inner.queue.pop() else {
                            unreachable!("peeked event vanished")
                        };
                        batch.push_back((n.deliver_at, n.src, n.msg));
                    }
                    inner.delivered += batch.len() as u64;
                    inner.dispatches += 1;
                    inner.batched += batch.len() as u64 - 1;
                    inner.slots[dst] = Slot::Msgs(batch);
                    if inner.procs[dst] == ProcState::Blocked {
                        inner.blocked.remove(dst);
                    } else {
                        inner.draining.remove(dst);
                    }
                    inner.procs[dst] = ProcState::Running;
                    inner.running = 1;
                    // Targeted wakeup: only the destination has anything
                    // to do. If the destination is the caller itself it
                    // has not started waiting yet; it re-checks its slot
                    // before sleeping, so the notify is not needed there.
                    self.cvs[dst].notify_one();
                }
                ProcState::Done => {
                    self.poison_locked(
                        inner,
                        Poison::MessageToFinished {
                            src: ev.src,
                            dst: ev.dst,
                        },
                    );
                }
                // `running == 0` rules this out.
                ProcState::Running => unreachable!("running proc while dispatching"),
            },
            None => {
                if !inner.blocked.is_empty() {
                    // Stuck: build the report lazily, off the index.
                    let blocked = inner.blocked.sorted();
                    self.poison_locked(inner, Poison::Deadlock { blocked });
                } else {
                    // Everyone is Draining or Done and nothing is in
                    // flight: release the drainers — and wake only them.
                    for i in 0..inner.draining.members.len() {
                        let p = inner.draining.members[i];
                        inner.slots[p] = Slot::Quiesce;
                        self.cvs[p].notify_one();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualTime;

    fn ev(src: usize, dst: usize, at: u64, seq: u64, msg: u32) -> Event<u32> {
        Event {
            deliver_at: VirtualTime::ZERO + at,
            src,
            seq,
            dst,
            msg,
        }
    }

    /// Deadlock through the per-proc wakeup path: the report lists only
    /// the processors stuck in `recv`, not the drainers, and *every*
    /// waiter — blocked and draining alike — is woken with the poison.
    #[test]
    fn deadlock_wakes_blocked_and_draining_and_lists_only_blocked() {
        let sched: Scheduler<u32> = Scheduler::new(3);
        std::thread::scope(|s| {
            let blocked = s.spawn(|| sched.block_recv(0, false));
            let draining = s.spawn(|| sched.block_recv(1, true));
            // Proc 2 finishes last: its transition to running == 0 with an
            // empty queue is what detects the deadlock.
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.finish(2);
            let b = blocked.join().unwrap();
            let d = draining.join().unwrap();
            assert_eq!(b, Err(Poison::Deadlock { blocked: vec![0] }));
            assert_eq!(d, Err(Poison::Deadlock { blocked: vec![0] }));
        });
    }

    /// The deadlock report is sorted ascending no matter the order the
    /// processors blocked in (the waiter index swap-removes, so its raw
    /// order is arbitrary).
    #[test]
    fn deadlock_report_is_sorted() {
        let sched: Scheduler<u32> = Scheduler::new(4);
        std::thread::scope(|s| {
            // Block in descending order so the raw index is reversed.
            let w2 = s.spawn(|| sched.block_recv(2, false));
            std::thread::sleep(std::time::Duration::from_millis(10));
            let w0 = s.spawn(|| sched.block_recv(0, false));
            std::thread::sleep(std::time::Duration::from_millis(10));
            let w1 = s.spawn(|| sched.block_recv(1, false));
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.finish(3);
            for w in [w0, w1, w2] {
                assert_eq!(
                    w.join().unwrap(),
                    Err(Poison::Deadlock {
                        blocked: vec![0, 1, 2]
                    })
                );
            }
        });
    }

    /// Quiescence through the per-proc wakeup path: when every processor
    /// is draining or done and nothing is in flight, the drainers are
    /// released with `Ok(None)`.
    #[test]
    fn quiesce_releases_all_drainers() {
        let sched: Scheduler<u32> = Scheduler::new(3);
        std::thread::scope(|s| {
            let a = s.spawn(|| sched.block_recv(0, true));
            let b = s.spawn(|| sched.block_recv(1, true));
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.finish(2);
            assert_eq!(a.join().unwrap(), Ok(None));
            assert_eq!(b.join().unwrap(), Ok(None));
        });
    }

    /// A delivery wakes only its destination: the other blocked processor
    /// keeps waiting until its own message arrives, and delivery order
    /// follows the `(time, src, seq)` queue order.
    #[test]
    fn delivery_targets_the_destination_slot() {
        let sched: Scheduler<u32> = Scheduler::new(3);
        sched.post(ev(2, 0, 100, 0, 7));
        sched.post(ev(2, 1, 200, 1, 8));
        std::thread::scope(|s| {
            let p0 = s.spawn(|| {
                let got = sched.block_recv(0, false);
                sched.finish(0);
                got
            });
            let p1 = s.spawn(|| {
                let got = sched.block_recv(1, false);
                sched.finish(1);
                got
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.finish(2);
            let (at0, src0, msg0) = p0.join().unwrap().unwrap().unwrap();
            let (at1, src1, msg1) = p1.join().unwrap().unwrap().unwrap();
            assert_eq!((at0.cycles(), src0, msg0), (100, 2, 7));
            assert_eq!((at1.cycles(), src1, msg1), (200, 2, 8));
        });
    }

    /// Same destination, same instant, `src <= dst`: the events are
    /// delivered as one batch and drained across successive `recv`s in
    /// `(time, src, seq)` order, without the destination rendezvousing
    /// with the scheduler in between.
    #[test]
    fn same_instant_events_drain_as_one_batch() {
        let sched: Scheduler<u32> = Scheduler::new(3);
        sched.post(ev(1, 2, 100, 0, 10));
        sched.post(ev(0, 2, 100, 1, 20));
        sched.post(ev(2, 2, 100, 2, 30)); // self-post: src == dst batches too
        std::thread::scope(|s| {
            let p2 = s.spawn(|| {
                let mut got = Vec::new();
                for _ in 0..3 {
                    let (at, src, msg) = sched.block_recv(2, false).unwrap().unwrap();
                    got.push((at.cycles(), src, msg));
                }
                sched.finish(2);
                got
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.finish(0);
            sched.finish(1);
            let got = p2.join().unwrap();
            // Heap order: (100, src 0) before (100, src 1) before (100, src 2).
            assert_eq!(got, vec![(100, 0, 20), (100, 1, 10), (100, 2, 30)]);
            assert_eq!(sched.delivered(), 3);
            let stats = sched.stats();
            assert_eq!(stats.delivered, 3);
            assert_eq!(stats.dispatches, 1, "one rendezvous for the batch");
            assert_eq!(stats.batched, 2, "two deliveries rode along");
        });
    }

    /// An emptied batch deque is parked on the freelist and reused by the
    /// next dispatch instead of being reallocated.
    #[test]
    fn drained_batch_deques_are_recycled() {
        let sched: Scheduler<u32> = Scheduler::new(2);
        sched.post(ev(0, 1, 50, 0, 1));
        sched.post(ev(0, 1, 150, 1, 2));
        std::thread::scope(|s| {
            let p1 = s.spawn(|| {
                let a = sched.block_recv(1, false).unwrap().unwrap();
                let b = sched.block_recv(1, false).unwrap().unwrap();
                sched.finish(1);
                (a.2, b.2)
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.finish(0);
            assert_eq!(p1.join().unwrap(), (1, 2));
            let stats = sched.stats();
            assert_eq!(stats.dispatches, 2, "distinct instants: two dispatches");
            assert_eq!(
                stats.deques_recycled, 1,
                "second dispatch reuses the first batch's deque"
            );
        });
    }

    /// A processor that finishes with a batched delivery still pending is
    /// a message-to-finished fault, exactly as if the event were still in
    /// the heap.
    #[test]
    fn leftover_batch_at_finish_poisons() {
        let sched: Scheduler<u32> = Scheduler::new(2);
        sched.post(ev(0, 1, 50, 0, 1));
        sched.post(ev(0, 1, 50, 1, 2));
        std::thread::scope(|s| {
            let p1 = s.spawn(|| {
                // Consume one of the two batched deliveries, then finish.
                let _ = sched.block_recv(1, false).unwrap();
                sched.finish(1);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.finish(0);
            p1.join().unwrap();
            assert_eq!(
                sched.poison(),
                Some(Poison::MessageToFinished { src: 0, dst: 1 })
            );
        });
    }

    /// Poison set while waiters sit on their per-proc condvars reaches
    /// every one of them (the no-notify-storm replacement for the old
    /// global broadcast).
    #[test]
    fn poison_wakes_every_waiter_once() {
        let sched: Scheduler<u32> = Scheduler::new(4);
        std::thread::scope(|s| {
            let sched = &sched;
            let waiters: Vec<_> = (0..3)
                .map(|me| s.spawn(move || sched.block_recv(me, me == 2)))
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.abandon(3, "unit-test poison".to_string());
            for w in waiters {
                match w.join().unwrap() {
                    Err(Poison::Panic { proc: 3, message }) => {
                        assert!(message.contains("unit-test poison"));
                    }
                    other => panic!("expected panic poison, got {other:?}"),
                }
            }
        });
    }

    /// The indexed waiter set stays consistent through arbitrary
    /// insert/remove interleavings (swap-remove bookkeeping).
    #[test]
    fn proc_set_tracks_membership() {
        let mut s = ProcSet::new(8);
        for p in [3, 1, 7, 0, 5] {
            s.insert(p);
        }
        s.remove(1);
        s.remove(5);
        s.insert(2);
        s.remove(3);
        assert_eq!(s.sorted(), vec![0, 2, 7]);
        assert!(!s.is_empty());
        for p in [0, 2, 7] {
            s.remove(p);
        }
        assert!(s.is_empty());
    }
}
