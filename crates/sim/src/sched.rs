//! The conservative virtual-time scheduler.
//!
//! Invariant: a pending event is delivered only when no processor thread is
//! `Running`, and the event chosen is the global minimum under
//! `(delivery time, src, seq)`. Because a woken processor first advances its
//! clock to the delivery time, every event it subsequently posts is later
//! than anything already delivered, so deliveries are nondecreasing in
//! virtual time and the execution is deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::event::Event;
use crate::time::VirtualTime;

/// Lifecycle state of a simulated processor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ProcState {
    /// The processor's thread is executing (compute or sends).
    Running,
    /// Blocked in `recv`: it must receive a message to make progress.
    Blocked,
    /// Blocked in `drain_recv`: it accepts messages but may also be released
    /// when the whole cluster quiesces.
    Draining,
    /// The processor's thread has finished.
    Done,
}

/// What the scheduler left in a processor's single-slot mailbox.
pub(crate) enum Slot<M> {
    Empty,
    Msg {
        at: VirtualTime,
        src: usize,
        msg: M,
    },
    /// The cluster has quiesced; a draining processor may finish.
    Quiesce,
}

/// Why the simulation was aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Poison {
    /// No processor can make progress: `blocked` lists those stuck in `recv`.
    Deadlock { blocked: Vec<usize> },
    /// A message was addressed to a processor that had already finished.
    MessageToFinished { src: usize, dst: usize },
    /// An application closure panicked.
    Panic { proc: usize, message: String },
    /// A protocol layer detected an invariant violation (e.g. a message
    /// routed to a processor that does not own the addressed resource) and
    /// aborted deliberately instead of panicking.
    Protocol { proc: usize, message: String },
    /// The runtime detected an application-level misuse of the DSM API
    /// (e.g. an out-of-bounds shared write) and aborted deliberately.
    App { proc: usize, message: String },
}

pub(crate) struct SchedInner<M> {
    pub procs: Vec<ProcState>,
    pub running: usize,
    pub queue: BinaryHeap<Reverse<Event<M>>>,
    pub slots: Vec<Slot<M>>,
    pub poison: Option<Poison>,
    pub delivered: u64,
}

pub(crate) struct Scheduler<M> {
    pub inner: Mutex<SchedInner<M>>,
    pub cv: Condvar,
}

impl<M> Scheduler<M> {
    /// Locks the shared state. An application panic unwinds through
    /// `catch_unwind` without holding this mutex (the guard is released
    /// before the closure runs), so std's poison flag carries no
    /// information here — application failures are reported through
    /// [`Poison`] instead, and a poisoned guard is simply recovered.
    fn lock(&self) -> MutexGuard<'_, SchedInner<M>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of the abort condition, if any (for the driver thread).
    pub fn poison(&self) -> Option<Poison> {
        self.lock().poison.clone()
    }

    pub fn new(procs: usize) -> Scheduler<M> {
        Scheduler {
            inner: Mutex::new(SchedInner {
                procs: vec![ProcState::Running; procs],
                running: procs,
                queue: BinaryHeap::new(),
                slots: (0..procs).map(|_| Slot::Empty).collect(),
                poison: None,
                delivered: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Queues an in-flight message. Called only by a `Running` thread, so no
    /// dispatch can be due yet.
    pub fn post(&self, ev: Event<M>) {
        let mut inner = self.lock();
        inner.queue.push(Reverse(ev));
    }

    /// Blocks processor `me` until a message arrives (or, when `draining`,
    /// until the cluster quiesces). Returns `Ok(None)` only on quiescence.
    pub fn block_recv(
        &self,
        me: usize,
        draining: bool,
    ) -> Result<Option<(VirtualTime, usize, M)>, Poison> {
        let mut inner = self.lock();
        debug_assert_eq!(inner.procs[me], ProcState::Running);
        inner.running -= 1;
        inner.procs[me] = if draining {
            ProcState::Draining
        } else {
            ProcState::Blocked
        };
        if inner.running == 0 {
            self.dispatch(&mut inner);
        }
        loop {
            if let Some(p) = &inner.poison {
                return Err(p.clone());
            }
            match std::mem::replace(&mut inner.slots[me], Slot::Empty) {
                Slot::Msg { at, src, msg } => {
                    debug_assert_eq!(inner.procs[me], ProcState::Running);
                    return Ok(Some((at, src, msg)));
                }
                Slot::Quiesce => {
                    debug_assert!(draining);
                    return Ok(None);
                }
                Slot::Empty => {
                    inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Marks `me` finished. Valid from `Running` (closure returned without
    /// draining) or `Draining` (released by quiescence).
    pub fn finish(&self, me: usize) {
        let mut inner = self.lock();
        match inner.procs[me] {
            ProcState::Running => {
                inner.running -= 1;
                inner.procs[me] = ProcState::Done;
                if inner.running == 0 {
                    self.dispatch(&mut inner);
                }
            }
            ProcState::Draining => {
                // Already excluded from `running` by `block_recv`. The
                // quiescence decision does not need re-evaluation: it fires
                // only once all drainers are released together.
                inner.procs[me] = ProcState::Done;
            }
            s => panic!("finish() from invalid state {s:?}"),
        }
    }

    /// Records a fatal condition and wakes every waiter.
    pub fn set_poison(&self, p: Poison) {
        let mut inner = self.lock();
        self.poison_locked(&mut inner, p);
    }

    /// Marks `me` dead after a panic and poisons the cluster.
    pub fn abandon(&self, me: usize, message: String) {
        let mut inner = self.lock();
        if inner.procs[me] == ProcState::Running {
            inner.running -= 1;
        }
        inner.procs[me] = ProcState::Done;
        self.poison_locked(&mut inner, Poison::Panic { proc: me, message });
    }

    pub fn delivered(&self) -> u64 {
        self.lock().delivered
    }

    fn poison_locked(&self, inner: &mut SchedInner<M>, p: Poison) {
        if inner.poison.is_none() {
            inner.poison = Some(p);
        }
        self.cv.notify_all();
    }

    /// Delivers the minimal pending event, or detects deadlock/quiescence.
    /// Must be called with `running == 0`.
    fn dispatch(&self, inner: &mut SchedInner<M>) {
        debug_assert_eq!(inner.running, 0);
        if inner.poison.is_some() {
            self.cv.notify_all();
            return;
        }
        match inner.queue.pop() {
            Some(Reverse(ev)) => match inner.procs[ev.dst] {
                ProcState::Blocked | ProcState::Draining => {
                    inner.slots[ev.dst] = Slot::Msg {
                        at: ev.deliver_at,
                        src: ev.src,
                        msg: ev.msg,
                    };
                    inner.procs[ev.dst] = ProcState::Running;
                    inner.running = 1;
                    inner.delivered += 1;
                    self.cv.notify_all();
                }
                ProcState::Done => {
                    self.poison_locked(
                        inner,
                        Poison::MessageToFinished {
                            src: ev.src,
                            dst: ev.dst,
                        },
                    );
                }
                // `running == 0` rules this out.
                ProcState::Running => unreachable!("running proc while dispatching"),
            },
            None => {
                let blocked: Vec<usize> = inner
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s == ProcState::Blocked)
                    .map(|(i, _)| i)
                    .collect();
                if !blocked.is_empty() {
                    self.poison_locked(inner, Poison::Deadlock { blocked });
                } else {
                    // Everyone is Draining or Done and nothing is in flight:
                    // release the drainers.
                    for (i, s) in inner.procs.iter().enumerate() {
                        if *s == ProcState::Draining {
                            inner.slots[i] = Slot::Quiesce;
                        }
                    }
                    self.cv.notify_all();
                }
            }
        }
    }
}
