//! The conservative virtual-time scheduler.
//!
//! Invariant: a pending event is delivered only when no processor thread is
//! `Running`, and the event chosen is the global minimum under
//! `(delivery time, src, seq)`. Because a woken processor first advances its
//! clock to the delivery time, every event it subsequently posts is later
//! than anything already delivered, so deliveries are nondecreasing in
//! virtual time and the execution is deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::event::Event;
use crate::time::VirtualTime;

/// Lifecycle state of a simulated processor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ProcState {
    /// The processor's thread is executing (compute or sends).
    Running,
    /// Blocked in `recv`: it must receive a message to make progress.
    Blocked,
    /// Blocked in `drain_recv`: it accepts messages but may also be released
    /// when the whole cluster quiesces.
    Draining,
    /// The processor's thread has finished.
    Done,
}

/// What the scheduler left in a processor's single-slot mailbox.
pub(crate) enum Slot<M> {
    Empty,
    Msg {
        at: VirtualTime,
        src: usize,
        msg: M,
    },
    /// The cluster has quiesced; a draining processor may finish.
    Quiesce,
}

/// Why the simulation was aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Poison {
    /// No processor can make progress: `blocked` lists those stuck in `recv`.
    Deadlock { blocked: Vec<usize> },
    /// A message was addressed to a processor that had already finished.
    MessageToFinished { src: usize, dst: usize },
    /// An application closure panicked.
    Panic { proc: usize, message: String },
    /// A protocol layer detected an invariant violation (e.g. a message
    /// routed to a processor that does not own the addressed resource) and
    /// aborted deliberately instead of panicking.
    Protocol { proc: usize, message: String },
    /// The runtime detected an application-level misuse of the DSM API
    /// (e.g. an out-of-bounds shared write) and aborted deliberately.
    App { proc: usize, message: String },
}

pub(crate) struct SchedInner<M> {
    pub procs: Vec<ProcState>,
    pub running: usize,
    pub queue: BinaryHeap<Reverse<Event<M>>>,
    pub slots: Vec<Slot<M>>,
    pub poison: Option<Poison>,
    pub delivered: u64,
}

/// The scheduler: one shared state mutex plus **one condvar per
/// processor**. Exactly one thread ever waits on `cvs[i]` — processor
/// `i`'s own — so delivering an event wakes only its destination
/// (`notify_one` on that slot) instead of storming every blocked thread
/// through a global condvar. On a host with fewer cores than simulated
/// processors the global-notify design made every delivery pay `procs`
/// wakeups and `procs` mutex reacquisitions; the per-processor slots cut
/// that to one.
pub(crate) struct Scheduler<M> {
    pub inner: Mutex<SchedInner<M>>,
    cvs: Vec<Condvar>,
}

impl<M> Scheduler<M> {
    /// Locks the shared state. An application panic unwinds through
    /// `catch_unwind` without holding this mutex (the guard is released
    /// before the closure runs), so std's poison flag carries no
    /// information here — application failures are reported through
    /// [`Poison`] instead, and a poisoned guard is simply recovered.
    fn lock(&self) -> MutexGuard<'_, SchedInner<M>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of the abort condition, if any (for the driver thread).
    pub fn poison(&self) -> Option<Poison> {
        self.lock().poison.clone()
    }

    pub fn new(procs: usize) -> Scheduler<M> {
        Scheduler {
            inner: Mutex::new(SchedInner {
                procs: vec![ProcState::Running; procs],
                running: procs,
                queue: BinaryHeap::new(),
                slots: (0..procs).map(|_| Slot::Empty).collect(),
                poison: None,
                delivered: 0,
            }),
            cvs: (0..procs).map(|_| Condvar::new()).collect(),
        }
    }

    /// Queues an in-flight message. Called only by a `Running` thread, so no
    /// dispatch can be due yet.
    pub fn post(&self, ev: Event<M>) {
        let mut inner = self.lock();
        inner.queue.push(Reverse(ev));
    }

    /// Blocks processor `me` until a message arrives (or, when `draining`,
    /// until the cluster quiesces). Returns `Ok(None)` only on quiescence.
    pub fn block_recv(
        &self,
        me: usize,
        draining: bool,
    ) -> Result<Option<(VirtualTime, usize, M)>, Poison> {
        let mut inner = self.lock();
        debug_assert_eq!(inner.procs[me], ProcState::Running);
        inner.running -= 1;
        inner.procs[me] = if draining {
            ProcState::Draining
        } else {
            ProcState::Blocked
        };
        if inner.running == 0 {
            self.dispatch(&mut inner);
        }
        loop {
            if let Some(p) = &inner.poison {
                return Err(p.clone());
            }
            match std::mem::replace(&mut inner.slots[me], Slot::Empty) {
                Slot::Msg { at, src, msg } => {
                    debug_assert_eq!(inner.procs[me], ProcState::Running);
                    return Ok(Some((at, src, msg)));
                }
                Slot::Quiesce => {
                    debug_assert!(draining);
                    return Ok(None);
                }
                Slot::Empty => {
                    // Waiting on this processor's own slot: only a
                    // delivery addressed here (or poison/quiesce) wakes
                    // this thread.
                    inner = self.cvs[me]
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Marks `me` finished. Valid from `Running` (closure returned without
    /// draining) or `Draining` (released by quiescence).
    pub fn finish(&self, me: usize) {
        let mut inner = self.lock();
        match inner.procs[me] {
            ProcState::Running => {
                inner.running -= 1;
                inner.procs[me] = ProcState::Done;
                if inner.running == 0 {
                    self.dispatch(&mut inner);
                }
            }
            ProcState::Draining => {
                // Already excluded from `running` by `block_recv`. The
                // quiescence decision does not need re-evaluation: it fires
                // only once all drainers are released together.
                inner.procs[me] = ProcState::Done;
            }
            s => panic!("finish() from invalid state {s:?}"),
        }
    }

    /// Records a fatal condition and wakes every waiter.
    pub fn set_poison(&self, p: Poison) {
        let mut inner = self.lock();
        self.poison_locked(&mut inner, p);
    }

    /// Marks `me` dead after a panic and poisons the cluster.
    pub fn abandon(&self, me: usize, message: String) {
        let mut inner = self.lock();
        if inner.procs[me] == ProcState::Running {
            inner.running -= 1;
        }
        inner.procs[me] = ProcState::Done;
        self.poison_locked(&mut inner, Poison::Panic { proc: me, message });
    }

    pub fn delivered(&self) -> u64 {
        self.lock().delivered
    }

    /// Records a fatal condition (first poison wins) and wakes every
    /// waiter — each processor's condvar is notified exactly once, not
    /// `procs` redundant broadcasts.
    fn poison_locked(&self, inner: &mut SchedInner<M>, p: Poison) {
        if inner.poison.is_none() {
            inner.poison = Some(p);
        }
        for cv in &self.cvs {
            cv.notify_one();
        }
    }

    /// Delivers the minimal pending event, or detects deadlock/quiescence.
    /// Must be called with `running == 0`.
    ///
    /// The hot path — one event delivered to a blocked destination —
    /// performs no allocation and wakes exactly one thread. The deadlock
    /// report (which does allocate) is built only in the empty-queue arm,
    /// after the deadlock has actually been detected.
    fn dispatch(&self, inner: &mut SchedInner<M>) {
        debug_assert_eq!(inner.running, 0);
        if inner.poison.is_some() {
            for cv in &self.cvs {
                cv.notify_one();
            }
            return;
        }
        match inner.queue.pop() {
            Some(Reverse(ev)) => match inner.procs[ev.dst] {
                ProcState::Blocked | ProcState::Draining => {
                    inner.slots[ev.dst] = Slot::Msg {
                        at: ev.deliver_at,
                        src: ev.src,
                        msg: ev.msg,
                    };
                    inner.procs[ev.dst] = ProcState::Running;
                    inner.running = 1;
                    inner.delivered += 1;
                    // Targeted wakeup: only the destination has anything
                    // to do. If the destination is the caller itself it
                    // has not started waiting yet; it re-checks its slot
                    // before sleeping, so the notify is not needed there.
                    self.cvs[ev.dst].notify_one();
                }
                ProcState::Done => {
                    self.poison_locked(
                        inner,
                        Poison::MessageToFinished {
                            src: ev.src,
                            dst: ev.dst,
                        },
                    );
                }
                // `running == 0` rules this out.
                ProcState::Running => unreachable!("running proc while dispatching"),
            },
            None => {
                if inner.procs.contains(&ProcState::Blocked) {
                    let blocked: Vec<usize> = inner
                        .procs
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| **s == ProcState::Blocked)
                        .map(|(i, _)| i)
                        .collect();
                    self.poison_locked(inner, Poison::Deadlock { blocked });
                } else {
                    // Everyone is Draining or Done and nothing is in
                    // flight: release the drainers — and wake only them.
                    for (i, s) in inner.procs.iter().enumerate() {
                        if *s == ProcState::Draining {
                            inner.slots[i] = Slot::Quiesce;
                            self.cvs[i].notify_one();
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualTime;

    fn ev(src: usize, dst: usize, at: u64, seq: u64, msg: u32) -> Event<u32> {
        Event {
            deliver_at: VirtualTime::ZERO + at,
            src,
            seq,
            dst,
            msg,
        }
    }

    /// Deadlock through the per-proc wakeup path: the report lists only
    /// the processors stuck in `recv`, not the drainers, and *every*
    /// waiter — blocked and draining alike — is woken with the poison.
    #[test]
    fn deadlock_wakes_blocked_and_draining_and_lists_only_blocked() {
        let sched: Scheduler<u32> = Scheduler::new(3);
        std::thread::scope(|s| {
            let blocked = s.spawn(|| sched.block_recv(0, false));
            let draining = s.spawn(|| sched.block_recv(1, true));
            // Proc 2 finishes last: its transition to running == 0 with an
            // empty queue is what detects the deadlock.
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.finish(2);
            let b = blocked.join().unwrap();
            let d = draining.join().unwrap();
            assert_eq!(b, Err(Poison::Deadlock { blocked: vec![0] }));
            assert_eq!(d, Err(Poison::Deadlock { blocked: vec![0] }));
        });
    }

    /// Quiescence through the per-proc wakeup path: when every processor
    /// is draining or done and nothing is in flight, the drainers are
    /// released with `Ok(None)`.
    #[test]
    fn quiesce_releases_all_drainers() {
        let sched: Scheduler<u32> = Scheduler::new(3);
        std::thread::scope(|s| {
            let a = s.spawn(|| sched.block_recv(0, true));
            let b = s.spawn(|| sched.block_recv(1, true));
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.finish(2);
            assert_eq!(a.join().unwrap(), Ok(None));
            assert_eq!(b.join().unwrap(), Ok(None));
        });
    }

    /// A delivery wakes only its destination: the other blocked processor
    /// keeps waiting until its own message arrives, and delivery order
    /// follows the `(time, src, seq)` queue order.
    #[test]
    fn delivery_targets_the_destination_slot() {
        let sched: Scheduler<u32> = Scheduler::new(3);
        sched.post(ev(2, 0, 100, 0, 7));
        sched.post(ev(2, 1, 200, 1, 8));
        std::thread::scope(|s| {
            let p0 = s.spawn(|| {
                let got = sched.block_recv(0, false);
                sched.finish(0);
                got
            });
            let p1 = s.spawn(|| {
                let got = sched.block_recv(1, false);
                sched.finish(1);
                got
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.finish(2);
            let (at0, src0, msg0) = p0.join().unwrap().unwrap().unwrap();
            let (at1, src1, msg1) = p1.join().unwrap().unwrap().unwrap();
            assert_eq!((at0.cycles(), src0, msg0), (100, 2, 7));
            assert_eq!((at1.cycles(), src1, msg1), (200, 2, 8));
        });
    }

    /// Poison set while waiters sit on their per-proc condvars reaches
    /// every one of them (the no-notify-storm replacement for the old
    /// global broadcast).
    #[test]
    fn poison_wakes_every_waiter_once() {
        let sched: Scheduler<u32> = Scheduler::new(4);
        std::thread::scope(|s| {
            let sched = &sched;
            let waiters: Vec<_> = (0..3)
                .map(|me| s.spawn(move || sched.block_recv(me, me == 2)))
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(20));
            sched.abandon(3, "unit-test poison".to_string());
            for w in waiters {
                match w.join().unwrap() {
                    Err(Poison::Panic { proc: 3, message }) => {
                        assert!(message.contains("unit-test poison"));
                    }
                    other => panic!("expected panic poison, got {other:?}"),
                }
            }
        });
    }
}
