//! Virtual time measured in processor cycles.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, measured in CPU cycles.
///
/// The paper's platform is a 25 MHz MIPS R3000, so one cycle is 40 ns; the
/// conversion helpers below use a configurable clock rate so the cost model
/// can be re-expressed on other platforms.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// The origin of virtual time.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Returns the raw cycle count.
    pub fn cycles(self) -> u64 {
        self.0
    }

    /// Converts a duration in microseconds to cycles at the given clock rate.
    pub fn from_micros(us: f64, mhz: u32) -> VirtualTime {
        VirtualTime((us * mhz as f64).round() as u64)
    }

    /// Expresses this time in microseconds at the given clock rate.
    pub fn as_micros(self, mhz: u32) -> f64 {
        self.0 as f64 / mhz as f64
    }

    /// Expresses this time in milliseconds at the given clock rate.
    pub fn as_millis(self, mhz: u32) -> f64 {
        self.as_micros(mhz) / 1_000.0
    }

    /// Expresses this time in seconds at the given clock rate.
    pub fn as_secs(self, mhz: u32) -> f64 {
        self.as_micros(mhz) / 1_000_000.0
    }

    /// Returns the later of two times.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }

    /// Returns `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(other.0))
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;

    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl Add<u64> for VirtualTime {
    type Output = VirtualTime;

    fn add(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtualTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;

    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip_at_25mhz() {
        // 1200 us at 25 MHz is the paper's Mach page-fault cost: 30,000 cycles.
        let t = VirtualTime::from_micros(1200.0, 25);
        assert_eq!(t.cycles(), 30_000);
        assert!((t.as_micros(25) - 1200.0).abs() < 1e-9);
        assert!((t.as_millis(25) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = VirtualTime(100);
        let b = VirtualTime(250);
        assert!(a < b);
        assert_eq!((a + 150).cycles(), 250);
        assert_eq!(b.saturating_sub(a).cycles(), 150);
        assert_eq!(a.saturating_sub(b).cycles(), 0);
        assert_eq!(a.max(b), b);
        assert_eq!((b - a).cycles(), 150);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = VirtualTime::ZERO;
        t += 9;
        t += 9;
        assert_eq!(t.cycles(), 18);
    }
}
