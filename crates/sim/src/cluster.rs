//! Public cluster API: configuration, processor handles, run outcomes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use crate::clock::{Category, CpuClock, CATEGORY_COUNT};
use crate::event::Event;
use crate::fault::{FaultDecision, FaultPlan, FaultStats};
use crate::net::NetModel;
use crate::sched::{Poison, Scheduler};
use crate::time::VirtualTime;

/// Configuration for a simulated cluster run.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of simulated processors.
    pub procs: usize,
    /// Interconnect cost model.
    pub net: NetModel,
    /// Deterministic network fault schedule (default: perfect network).
    pub faults: FaultPlan,
}

impl ClusterConfig {
    /// A cluster of `procs` processors with the default ATM network model.
    pub fn new(procs: usize) -> ClusterConfig {
        ClusterConfig {
            procs,
            net: NetModel::default(),
            faults: FaultPlan::none(),
        }
    }

    /// Replaces the network model.
    pub fn net(mut self, net: NetModel) -> ClusterConfig {
        self.net = net;
        self
    }

    /// Replaces the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> ClusterConfig {
        self.faults = faults;
        self
    }
}

/// Why a simulation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Every processor is blocked in `recv` and no message is in flight.
    Deadlock {
        /// Processors stuck in `recv`.
        blocked: Vec<usize>,
    },
    /// A message was sent to a processor that had already finished.
    MessageToFinished {
        /// Sender.
        src: usize,
        /// Finished destination.
        dst: usize,
    },
    /// An application closure panicked on some processor.
    ProcPanicked {
        /// The processor whose closure panicked.
        proc: usize,
        /// The panic payload, rendered as a string where possible.
        message: String,
    },
    /// A protocol layer detected an invariant violation and aborted the
    /// simulation deliberately (see [`ProcHandle::protocol_violation`]).
    ProtocolViolation {
        /// The processor that detected the violation.
        proc: usize,
        /// Description of the violated invariant.
        message: String,
    },
    /// The runtime detected an application-level misuse of the DSM API —
    /// e.g. an out-of-bounds shared write — and aborted deliberately
    /// (see [`ProcHandle::app_violation`]).
    AppViolation {
        /// The processor whose application misused the API.
        proc: usize,
        /// Description of the misuse.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(
                    f,
                    "simulation deadlock; processors blocked in recv: {blocked:?}"
                )
            }
            SimError::MessageToFinished { src, dst } => {
                write!(
                    f,
                    "processor {src} sent a message to finished processor {dst}"
                )
            }
            SimError::ProcPanicked { proc, message } => {
                write!(f, "processor {proc} panicked: {message}")
            }
            SimError::ProtocolViolation { proc, message } => {
                write!(f, "protocol violation on processor {proc}: {message}")
            }
            SimError::AppViolation { proc, message } => {
                write!(f, "application violation on processor {proc}: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<Poison> for SimError {
    fn from(p: Poison) -> SimError {
        match p {
            Poison::Deadlock { blocked } => SimError::Deadlock { blocked },
            Poison::MessageToFinished { src, dst } => SimError::MessageToFinished { src, dst },
            Poison::Panic { proc, message } => SimError::ProcPanicked { proc, message },
            Poison::Protocol { proc, message } => SimError::ProtocolViolation { proc, message },
            Poison::App { proc, message } => SimError::AppViolation { proc, message },
        }
    }
}

/// Internal panic payload used to unwind out of a poisoned simulation.
struct SimAbort(Poison);

/// Per-processor accounting published at the end of a run.
#[derive(Clone, Debug)]
pub struct ProcReport {
    /// The processor's final virtual time.
    pub final_time: VirtualTime,
    /// Cycle totals per [`Category`], indexed by `Category as usize`.
    pub breakdown: [u64; CATEGORY_COUNT],
    /// Messages sent.
    pub msgs_sent: u64,
    /// Payload bytes sent (as declared by the callers of `send`).
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// Faults the network injected on this processor's outgoing messages.
    pub fault_stats: FaultStats,
}

/// The result of a successful cluster run.
#[derive(Debug)]
pub struct RunOutcome<R> {
    /// Per-processor closure return values, indexed by processor id.
    pub results: Vec<R>,
    /// Per-processor accounting, indexed by processor id.
    pub reports: Vec<ProcReport>,
    /// The cluster finish time: the maximum of the final clocks.
    pub finish_time: VirtualTime,
    /// Total messages delivered by the scheduler.
    pub messages_delivered: u64,
    /// Host-side scheduler counters (event-engine perf attribution).
    pub sched: crate::sched::SchedStats,
}

/// A simulated processor, handed to the per-processor closure.
///
/// All methods take `&mut self`; each handle is owned by exactly one thread.
pub struct ProcHandle<M> {
    id: usize,
    procs: usize,
    net: NetModel,
    faults: FaultPlan,
    sched: Arc<Scheduler<M>>,
    clock: CpuClock,
    seq: u64,
    msgs_sent: u64,
    bytes_sent: u64,
    msgs_received: u64,
    fault_stats: FaultStats,
}

impl<M: Send + Clone> ProcHandle<M> {
    /// This processor's id, in `0..procs()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The number of processors in the cluster.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The interconnect model in effect.
    pub fn net(&self) -> NetModel {
        self.net
    }

    /// The network fault plan in effect.
    pub fn faults(&self) -> FaultPlan {
        self.faults
    }

    /// Current virtual time on this processor.
    pub fn now(&self) -> VirtualTime {
        self.clock.now()
    }

    /// Read access to the clock (for breakdown queries).
    pub fn clock(&self) -> &CpuClock {
        &self.clock
    }

    /// Advances the clock by `cycles`, charged to `cat`.
    pub fn charge(&mut self, cat: Category, cycles: u64) {
        self.clock.charge(cat, cycles);
    }

    /// Charges application compute time.
    pub fn work(&mut self, cycles: u64) {
        self.clock.charge(Category::Compute, cycles);
    }

    /// Sends `msg` (declared wire size `bytes`) to processor `dst`.
    ///
    /// Charges this processor the sender-side software overhead; the message
    /// is delivered at `now + latency + bytes/bandwidth` — unless the
    /// configured [`FaultPlan`] decides otherwise, in which case the message
    /// may be silently dropped, duplicated, or delayed. The fault decision
    /// is a pure function of `(plan seed, src, dst, seq)`, so the same
    /// configuration always yields the same schedule. The sender is charged
    /// and its counters advance identically in every case: faults are
    /// invisible at the send site.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is this processor (protocols must short-circuit local
    /// operations) or out of range.
    pub fn send(&mut self, dst: usize, msg: M, bytes: u64) {
        assert!(dst < self.procs, "destination {dst} out of range");
        assert_ne!(
            dst, self.id,
            "self-send: local operations must not use the network"
        );
        self.clock
            .charge(Category::Protocol, self.net.send_overhead_cycles);
        let deliver_at = self.clock.now() + self.net.wire_cycles(bytes);
        let seq = self.seq;
        self.seq += 1;
        self.msgs_sent += 1;
        self.bytes_sent += bytes;
        match self.faults.decide(self.id, dst, seq) {
            FaultDecision::Deliver => self.post_event(deliver_at, seq, dst, msg),
            FaultDecision::Drop => {
                // The network ate it: the sender already paid, nothing is
                // queued. `seq` stays consumed so later decisions on this
                // link are independent of earlier fates.
                self.fault_stats.dropped += 1;
            }
            FaultDecision::Duplicate { extra_delay } => {
                self.fault_stats.duplicated += 1;
                self.post_event(deliver_at, seq, dst, msg.clone());
                // The extra copy takes its own seq so the scheduler's
                // `(deliver_at, src, seq)` total order stays strict.
                let dup_seq = self.seq;
                self.seq += 1;
                self.post_event(deliver_at + extra_delay, dup_seq, dst, msg);
            }
            FaultDecision::Reorder { extra_delay } => {
                self.fault_stats.reordered += 1;
                self.post_event(deliver_at + extra_delay, seq, dst, msg);
            }
            FaultDecision::Delay { extra_delay } => {
                self.fault_stats.delayed += 1;
                self.post_event(deliver_at + extra_delay, seq, dst, msg);
            }
        }
    }

    fn post_event(&mut self, deliver_at: VirtualTime, seq: u64, dst: usize, msg: M) {
        self.sched.post(Event {
            deliver_at,
            src: self.id,
            seq,
            dst,
            msg,
        });
    }

    /// Schedules `msg` for delivery back to this processor after `delay`
    /// cycles of virtual time, with no network charges.
    ///
    /// This is the deterministic timer primitive: a processor that wants to
    /// back off (poll a condition later) posts a tick to itself and blocks
    /// in `recv`, which lets the scheduler deliver other processors'
    /// messages in the meantime. Spinning without blocking would starve
    /// the conservative scheduler, which only delivers when every thread
    /// is blocked.
    pub fn post_self(&mut self, msg: M, delay: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.sched.post(Event {
            deliver_at: self.clock.now() + delay,
            src: self.id,
            seq,
            dst: self.id,
            msg,
        });
    }

    /// Receives the next message addressed to this processor, advancing the
    /// clock to its delivery time. Returns `(delivery time, src, msg)`.
    ///
    /// # Panics
    ///
    /// Panics (aborting the whole simulation) on deadlock: every processor
    /// blocked in `recv` with nothing in flight indicates a protocol bug.
    pub fn recv(&mut self) -> (VirtualTime, usize, M) {
        self.recv_inner(false)
            .expect("recv cannot observe quiescence")
    }

    /// Like [`recv`](Self::recv), but also returns `None` when the whole
    /// cluster has quiesced (all processors draining, nothing in flight).
    ///
    /// Used by the DSM runtime's end-of-run service loop: a processor that
    /// has finished its application work keeps serving protocol messages
    /// until the cluster agrees nothing more can arrive.
    pub fn drain_recv(&mut self) -> Option<(VirtualTime, usize, M)> {
        self.recv_inner(true)
    }

    fn recv_inner(&mut self, draining: bool) -> Option<(VirtualTime, usize, M)> {
        match self.sched.block_recv(self.id, draining) {
            Ok(Some((at, src, msg))) => {
                self.clock.advance_to(at);
                if src != self.id {
                    // Self-posted timers carry no protocol cost.
                    self.clock
                        .charge(Category::Protocol, self.net.recv_overhead_cycles);
                    self.msgs_received += 1;
                }
                Some((at, src, msg))
            }
            Ok(None) => None,
            Err(poison) => std::panic::panic_any(SimAbort(poison)),
        }
    }

    /// Aborts the simulation with a typed protocol error.
    ///
    /// For protocol layers that detect an invariant violation (a misrouted
    /// message, a malformed exchange): instead of panicking — which would
    /// surface as an opaque [`SimError::ProcPanicked`] — this poisons the
    /// cluster with [`SimError::ProtocolViolation`] carrying this
    /// processor's id and `message`, wakes every other thread, and unwinds
    /// this one. It never returns.
    pub fn protocol_violation(&mut self, message: String) -> ! {
        std::panic::panic_any(SimAbort(Poison::Protocol {
            proc: self.id,
            message,
        }))
    }

    /// Aborts the simulation with a typed application-misuse error.
    ///
    /// Like [`ProcHandle::protocol_violation`], but for runtime layers
    /// that catch the *application* breaking the API contract (an
    /// out-of-bounds shared write, say): the cluster is poisoned with
    /// [`SimError::AppViolation`] carrying this processor's id and
    /// `message` instead of an opaque panic. It never returns.
    pub fn app_violation(&mut self, message: String) -> ! {
        std::panic::panic_any(SimAbort(Poison::App {
            proc: self.id,
            message,
        }))
    }

    fn report(&self) -> ProcReport {
        ProcReport {
            final_time: self.clock.now(),
            breakdown: self.clock.breakdown(),
            msgs_sent: self.msgs_sent,
            bytes_sent: self.bytes_sent,
            msgs_received: self.msgs_received,
            fault_stats: self.fault_stats,
        }
    }
}

/// Entry point: runs one closure per simulated processor to completion.
pub struct Cluster;

impl Cluster {
    /// Runs `f` on every processor of a simulated cluster and collects the
    /// results.
    ///
    /// `f` is invoked once per processor with that processor's handle. The
    /// call returns when every closure has returned (and, for processors
    /// that use [`ProcHandle::drain_recv`], the cluster has quiesced).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the simulation deadlocks, a message is sent
    /// to a finished processor, or any closure panics.
    pub fn run<M, R, F>(cfg: ClusterConfig, f: F) -> Result<RunOutcome<R>, SimError>
    where
        M: Send + Clone + 'static,
        R: Send,
        F: Fn(&mut ProcHandle<M>) -> R + Send + Sync,
    {
        assert!(cfg.procs > 0, "cluster needs at least one processor");
        let sched: Arc<Scheduler<M>> = Arc::new(Scheduler::new(cfg.procs));
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..cfg.procs).map(|_| None).collect());
        let reports: Mutex<Vec<Option<ProcReport>>> =
            Mutex::new((0..cfg.procs).map(|_| None).collect());

        std::thread::scope(|scope| {
            for id in 0..cfg.procs {
                let sched = Arc::clone(&sched);
                let f = &f;
                let results = &results;
                let reports = &reports;
                scope.spawn(move || {
                    let mut handle = ProcHandle {
                        id,
                        procs: cfg.procs,
                        net: cfg.net,
                        faults: cfg.faults,
                        sched: Arc::clone(&sched),
                        clock: CpuClock::new(),
                        seq: 0,
                        msgs_sent: 0,
                        bytes_sent: 0,
                        msgs_received: 0,
                        fault_stats: FaultStats::default(),
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut handle)));
                    match outcome {
                        Ok(val) => {
                            lock_vec(reports)[id] = Some(handle.report());
                            lock_vec(results)[id] = Some(val);
                            sched.finish(id);
                        }
                        Err(payload) => {
                            if let Some(abort) = payload.downcast_ref::<SimAbort>() {
                                // The cluster is already poisoned; just make
                                // sure everyone is awake.
                                sched.set_poison(abort.0.clone());
                            } else {
                                let message = panic_message(&*payload);
                                sched.abandon(id, message);
                            }
                        }
                    }
                });
            }
        });

        if let Some(poison) = sched.poison() {
            return Err(poison.into());
        }
        let results: Vec<R> = into_vec(results)
            .into_iter()
            .map(|r| r.expect("every processor finished"))
            .collect();
        let reports: Vec<ProcReport> = into_vec(reports)
            .into_iter()
            .map(|r| r.expect("every processor reported"))
            .collect();
        let finish_time = reports
            .iter()
            .map(|r| r.final_time)
            .max()
            .unwrap_or(VirtualTime::ZERO);
        Ok(RunOutcome {
            results,
            reports,
            finish_time,
            messages_delivered: sched.delivered(),
            sched: sched.stats(),
        })
    }
}

/// Locks a result-collection mutex. These are only held for a single slot
/// assignment, never across a panic, so a poisoned guard is recovered.
fn lock_vec<T>(m: &Mutex<Vec<Option<T>>>) -> std::sync::MutexGuard<'_, Vec<Option<T>>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn into_vec<T>(m: Mutex<Vec<Option<T>>>) -> Vec<Option<T>> {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Msg = u64;

    #[test]
    fn single_proc_runs_locally() {
        let out = Cluster::run(ClusterConfig::new(1), |p: &mut ProcHandle<Msg>| {
            p.work(1000);
            p.now().cycles()
        })
        .unwrap();
        assert_eq!(out.results, vec![1000]);
        assert_eq!(out.messages_delivered, 0);
        assert_eq!(out.finish_time.cycles(), 1000);
    }

    #[test]
    fn message_delivery_advances_receiver_clock() {
        let cfg = ClusterConfig::new(2).net(NetModel {
            latency_cycles: 100,
            per_byte_millicycles: 1000,
            send_overhead_cycles: 10,
            recv_overhead_cycles: 20,
        });
        let out = Cluster::run(cfg, |p: &mut ProcHandle<Msg>| {
            if p.id() == 0 {
                p.work(50);
                p.send(1, 7, 8);
                0
            } else {
                let (at, src, msg) = p.recv();
                assert_eq!(src, 0);
                assert_eq!(msg, 7);
                // Sent at 50 + 10 overhead = 60; +100 latency +8 bytes = 168.
                assert_eq!(at.cycles(), 168);
                p.now().cycles()
            }
        })
        .unwrap();
        // Receiver: 168 delivery + 20 recv overhead.
        assert_eq!(out.results[1], 188);
    }

    #[test]
    fn deadlock_is_detected() {
        let err = Cluster::run(ClusterConfig::new(2), |p: &mut ProcHandle<Msg>| {
            // Both wait forever.
            p.recv();
        })
        .unwrap_err();
        match err {
            SimError::Deadlock { blocked } => assert_eq!(blocked, vec![0, 1]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn drain_recv_quiesces_when_everyone_drains() {
        let out = Cluster::run(ClusterConfig::new(3), |p: &mut ProcHandle<Msg>| {
            if p.id() == 0 {
                p.send(1, 1, 4);
                p.send(2, 2, 4);
            }
            let mut seen = 0;
            while let Some((_, _, m)) = p.drain_recv() {
                seen += m;
            }
            seen
        })
        .unwrap();
        assert_eq!(out.results, vec![0, 1, 2]);
    }

    #[test]
    fn app_panic_is_reported() {
        let err = Cluster::run(ClusterConfig::new(2), |p: &mut ProcHandle<Msg>| {
            if p.id() == 1 {
                panic!("boom");
            }
            p.recv();
        })
        .unwrap_err();
        match err {
            SimError::ProcPanicked { proc, message } => {
                assert_eq!(proc, 1);
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn delivery_order_is_deterministic_across_runs() {
        // Three senders fire at identical virtual times; the receiver's
        // observed order must be identical run after run.
        let run = || {
            let out = Cluster::run(
                ClusterConfig::new(4).net(NetModel::ideal()),
                |p: &mut ProcHandle<Msg>| {
                    if p.id() == 0 {
                        let mut order = Vec::new();
                        for _ in 0..3 {
                            let (_, src, _) = p.recv();
                            order.push(src);
                        }
                        order
                    } else {
                        p.send(0, p.id() as u64, 4);
                        Vec::new()
                    }
                },
            )
            .unwrap();
            out.results[0].clone()
        };
        let first = run();
        for _ in 0..10 {
            assert_eq!(run(), first);
        }
        // Ties broken by source id.
        assert_eq!(first, vec![1, 2, 3]);
    }

    #[test]
    fn finish_time_is_max_over_procs() {
        let out = Cluster::run(ClusterConfig::new(3), |p: &mut ProcHandle<Msg>| {
            p.work(100 * (p.id() as u64 + 1));
        })
        .unwrap();
        assert_eq!(out.finish_time.cycles(), 300);
    }

    #[test]
    fn self_send_is_rejected() {
        let err = Cluster::run(ClusterConfig::new(1), |p: &mut ProcHandle<Msg>| {
            p.send(0, 1, 4);
        })
        .unwrap_err();
        match err {
            SimError::ProcPanicked { proc: 0, message } => {
                assert!(message.contains("self-send"), "message: {message}");
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn protocol_violation_surfaces_typed_error() {
        let err = Cluster::run(ClusterConfig::new(3), |p: &mut ProcHandle<Msg>| {
            match p.id() {
                0 => p.protocol_violation("acquire for lock 9 routed to non-home".into()),
                1 => {
                    // Blocked in recv when the violation fires: must be
                    // woken, not deadlocked.
                    p.recv();
                }
                _ => {
                    // Draining when the violation fires.
                    while p.drain_recv().is_some() {}
                }
            }
        })
        .unwrap_err();
        match err {
            SimError::ProtocolViolation { proc, message } => {
                assert_eq!(proc, 0);
                assert!(message.contains("lock 9"), "message: {message}");
            }
            other => panic!("expected protocol violation, got {other:?}"),
        }
    }

    #[test]
    fn panic_with_others_blocked_and_draining_does_not_deadlock() {
        // Satellite coverage for the poison path: the panicking processor's
        // id and message must come through while peers sit in recv /
        // drain_recv, and the run must terminate (no hang).
        let err = Cluster::run(ClusterConfig::new(4), |p: &mut ProcHandle<Msg>| {
            match p.id() {
                2 => {
                    p.work(10);
                    panic!("detector state corrupt on proc {}", p.id());
                }
                0 => {
                    p.recv();
                }
                _ => while p.drain_recv().is_some() {},
            }
        })
        .unwrap_err();
        match err {
            SimError::ProcPanicked { proc, message } => {
                assert_eq!(proc, 2);
                assert!(
                    message.contains("detector state corrupt on proc 2"),
                    "message: {message}"
                );
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn first_poison_wins_when_multiple_procs_panic() {
        // Whichever panic poisons first is reported; the second panic must
        // not hang or overwrite it with nonsense. We only assert the shape.
        let err = Cluster::run(ClusterConfig::new(2), |p: &mut ProcHandle<Msg>| {
            panic!("boom {}", p.id());
        })
        .unwrap_err();
        match err {
            SimError::ProcPanicked { proc, message } => {
                assert!(proc < 2);
                assert!(
                    message.contains(&format!("boom {proc}")),
                    "id/message mismatch"
                );
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn faults_disabled_is_bit_for_bit_identical() {
        let run = |faults: crate::fault::FaultPlan| {
            let cfg = ClusterConfig::new(2).faults(faults);
            Cluster::run(cfg, |p: &mut ProcHandle<Msg>| {
                if p.id() == 0 {
                    for i in 0..10 {
                        p.send(1, i, 8);
                        let (_, _, echo) = p.recv();
                        assert_eq!(echo, i);
                    }
                    p.now().cycles()
                } else {
                    for _ in 0..10 {
                        let (_, src, m) = p.recv();
                        p.send(src, m, 8);
                    }
                    p.now().cycles()
                }
            })
            .unwrap()
        };
        let base = run(crate::fault::FaultPlan::none());
        // Enabled plan with zero rates must not perturb anything either.
        let zero = run(crate::fault::FaultPlan::seeded(123));
        assert_eq!(base.results, zero.results);
        assert_eq!(base.messages_delivered, zero.messages_delivered);
        assert_eq!(base.finish_time, zero.finish_time);
    }

    #[test]
    fn fault_schedule_is_deterministic_across_runs() {
        let run = || {
            let faults = crate::fault::FaultPlan::chaos(11, 150_000);
            let cfg = ClusterConfig::new(2).faults(faults);
            let out = Cluster::run(cfg, |p: &mut ProcHandle<Msg>| {
                if p.id() == 0 {
                    for i in 0..200 {
                        p.send(1, i, 8);
                    }
                    0
                } else {
                    let mut sum = 0;
                    while let Some((_, _, m)) = p.drain_recv() {
                        sum += m;
                    }
                    sum
                }
            })
            .unwrap();
            let stats = out.reports[0].fault_stats;
            (out.results.clone(), out.messages_delivered, stats)
        };
        let first = run();
        assert!(first.2.total() > 0, "chaos plan should inject something");
        for _ in 0..5 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn drops_and_duplicates_change_delivery_counts() {
        let count = |faults: crate::fault::FaultPlan| {
            let cfg = ClusterConfig::new(2).faults(faults);
            let out = Cluster::run(cfg, |p: &mut ProcHandle<Msg>| {
                if p.id() == 0 {
                    for i in 0..500 {
                        p.send(1, i, 8);
                    }
                }
                let mut n = 0u64;
                while p.drain_recv().is_some() {
                    n += 1;
                }
                n
            })
            .unwrap();
            (out.results[1], out.reports[0].fault_stats)
        };
        let (clean, _) = count(crate::fault::FaultPlan::seeded(3));
        assert_eq!(clean, 500);
        let (lossy, ls) = count(crate::fault::FaultPlan::lossy(3, 200_000));
        assert_eq!(lossy, 500 - ls.dropped);
        assert!(ls.dropped > 0);
        let (dupped, ds) = count(crate::fault::FaultPlan::seeded(3).dup_ppm(200_000));
        assert_eq!(dupped, 500 + ds.duplicated);
        assert!(ds.duplicated > 0);
    }

    #[test]
    fn delayed_messages_arrive_late_but_arrive() {
        let faults = crate::fault::FaultPlan::seeded(17).delay_ppm(300_000);
        let cfg = ClusterConfig::new(2).net(NetModel::ideal()).faults(faults);
        let out = Cluster::run(cfg, |p: &mut ProcHandle<Msg>| {
            if p.id() == 0 {
                for i in 0..100 {
                    p.send(1, i, 8);
                }
                0
            } else {
                let mut got: Vec<u64> = Vec::new();
                while let Some((_, _, m)) = p.drain_recv() {
                    got.push(m);
                }
                got.sort_unstable();
                got.len() as u64
            }
        })
        .unwrap();
        assert_eq!(out.results[1], 100, "delay must never lose a message");
        assert!(out.reports[0].fault_stats.delayed > 0);
    }
}
