//! Public cluster API: configuration, processor handles, run outcomes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use crate::clock::{Category, CpuClock, CATEGORY_COUNT};
use crate::event::Event;
use crate::net::NetModel;
use crate::sched::{Poison, Scheduler};
use crate::time::VirtualTime;

/// Configuration for a simulated cluster run.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of simulated processors.
    pub procs: usize,
    /// Interconnect cost model.
    pub net: NetModel,
}

impl ClusterConfig {
    /// A cluster of `procs` processors with the default ATM network model.
    pub fn new(procs: usize) -> ClusterConfig {
        ClusterConfig {
            procs,
            net: NetModel::default(),
        }
    }

    /// Replaces the network model.
    pub fn net(mut self, net: NetModel) -> ClusterConfig {
        self.net = net;
        self
    }
}

/// Why a simulation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Every processor is blocked in `recv` and no message is in flight.
    Deadlock {
        /// Processors stuck in `recv`.
        blocked: Vec<usize>,
    },
    /// A message was sent to a processor that had already finished.
    MessageToFinished {
        /// Sender.
        src: usize,
        /// Finished destination.
        dst: usize,
    },
    /// An application closure panicked on some processor.
    ProcPanicked {
        /// The processor whose closure panicked.
        proc: usize,
        /// The panic payload, rendered as a string where possible.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(
                    f,
                    "simulation deadlock; processors blocked in recv: {blocked:?}"
                )
            }
            SimError::MessageToFinished { src, dst } => {
                write!(
                    f,
                    "processor {src} sent a message to finished processor {dst}"
                )
            }
            SimError::ProcPanicked { proc, message } => {
                write!(f, "processor {proc} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<Poison> for SimError {
    fn from(p: Poison) -> SimError {
        match p {
            Poison::Deadlock { blocked } => SimError::Deadlock { blocked },
            Poison::MessageToFinished { src, dst } => SimError::MessageToFinished { src, dst },
            Poison::Panic { proc, message } => SimError::ProcPanicked { proc, message },
        }
    }
}

/// Internal panic payload used to unwind out of a poisoned simulation.
struct SimAbort(Poison);

/// Per-processor accounting published at the end of a run.
#[derive(Clone, Debug)]
pub struct ProcReport {
    /// The processor's final virtual time.
    pub final_time: VirtualTime,
    /// Cycle totals per [`Category`], indexed by `Category as usize`.
    pub breakdown: [u64; CATEGORY_COUNT],
    /// Messages sent.
    pub msgs_sent: u64,
    /// Payload bytes sent (as declared by the callers of `send`).
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
}

/// The result of a successful cluster run.
#[derive(Debug)]
pub struct RunOutcome<R> {
    /// Per-processor closure return values, indexed by processor id.
    pub results: Vec<R>,
    /// Per-processor accounting, indexed by processor id.
    pub reports: Vec<ProcReport>,
    /// The cluster finish time: the maximum of the final clocks.
    pub finish_time: VirtualTime,
    /// Total messages delivered by the scheduler.
    pub messages_delivered: u64,
}

/// A simulated processor, handed to the per-processor closure.
///
/// All methods take `&mut self`; each handle is owned by exactly one thread.
pub struct ProcHandle<M> {
    id: usize,
    procs: usize,
    net: NetModel,
    sched: Arc<Scheduler<M>>,
    clock: CpuClock,
    seq: u64,
    msgs_sent: u64,
    bytes_sent: u64,
    msgs_received: u64,
}

impl<M: Send> ProcHandle<M> {
    /// This processor's id, in `0..procs()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The number of processors in the cluster.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The interconnect model in effect.
    pub fn net(&self) -> NetModel {
        self.net
    }

    /// Current virtual time on this processor.
    pub fn now(&self) -> VirtualTime {
        self.clock.now()
    }

    /// Read access to the clock (for breakdown queries).
    pub fn clock(&self) -> &CpuClock {
        &self.clock
    }

    /// Advances the clock by `cycles`, charged to `cat`.
    pub fn charge(&mut self, cat: Category, cycles: u64) {
        self.clock.charge(cat, cycles);
    }

    /// Charges application compute time.
    pub fn work(&mut self, cycles: u64) {
        self.clock.charge(Category::Compute, cycles);
    }

    /// Sends `msg` (declared wire size `bytes`) to processor `dst`.
    ///
    /// Charges this processor the sender-side software overhead; the message
    /// is delivered at `now + latency + bytes/bandwidth`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is this processor (protocols must short-circuit local
    /// operations) or out of range.
    pub fn send(&mut self, dst: usize, msg: M, bytes: u64) {
        assert!(dst < self.procs, "destination {dst} out of range");
        assert_ne!(
            dst, self.id,
            "self-send: local operations must not use the network"
        );
        self.clock
            .charge(Category::Protocol, self.net.send_overhead_cycles);
        let deliver_at = self.clock.now() + self.net.wire_cycles(bytes);
        let seq = self.seq;
        self.seq += 1;
        self.msgs_sent += 1;
        self.bytes_sent += bytes;
        self.sched.post(Event {
            deliver_at,
            src: self.id,
            seq,
            dst,
            msg,
        });
    }

    /// Schedules `msg` for delivery back to this processor after `delay`
    /// cycles of virtual time, with no network charges.
    ///
    /// This is the deterministic timer primitive: a processor that wants to
    /// back off (poll a condition later) posts a tick to itself and blocks
    /// in `recv`, which lets the scheduler deliver other processors'
    /// messages in the meantime. Spinning without blocking would starve
    /// the conservative scheduler, which only delivers when every thread
    /// is blocked.
    pub fn post_self(&mut self, msg: M, delay: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.sched.post(Event {
            deliver_at: self.clock.now() + delay,
            src: self.id,
            seq,
            dst: self.id,
            msg,
        });
    }

    /// Receives the next message addressed to this processor, advancing the
    /// clock to its delivery time. Returns `(delivery time, src, msg)`.
    ///
    /// # Panics
    ///
    /// Panics (aborting the whole simulation) on deadlock: every processor
    /// blocked in `recv` with nothing in flight indicates a protocol bug.
    pub fn recv(&mut self) -> (VirtualTime, usize, M) {
        self.recv_inner(false)
            .expect("recv cannot observe quiescence")
    }

    /// Like [`recv`](Self::recv), but also returns `None` when the whole
    /// cluster has quiesced (all processors draining, nothing in flight).
    ///
    /// Used by the DSM runtime's end-of-run service loop: a processor that
    /// has finished its application work keeps serving protocol messages
    /// until the cluster agrees nothing more can arrive.
    pub fn drain_recv(&mut self) -> Option<(VirtualTime, usize, M)> {
        self.recv_inner(true)
    }

    fn recv_inner(&mut self, draining: bool) -> Option<(VirtualTime, usize, M)> {
        match self.sched.block_recv(self.id, draining) {
            Ok(Some((at, src, msg))) => {
                self.clock.advance_to(at);
                if src != self.id {
                    // Self-posted timers carry no protocol cost.
                    self.clock
                        .charge(Category::Protocol, self.net.recv_overhead_cycles);
                    self.msgs_received += 1;
                }
                Some((at, src, msg))
            }
            Ok(None) => None,
            Err(poison) => std::panic::panic_any(SimAbort(poison)),
        }
    }

    fn report(&self) -> ProcReport {
        ProcReport {
            final_time: self.clock.now(),
            breakdown: self.clock.breakdown(),
            msgs_sent: self.msgs_sent,
            bytes_sent: self.bytes_sent,
            msgs_received: self.msgs_received,
        }
    }
}

/// Entry point: runs one closure per simulated processor to completion.
pub struct Cluster;

impl Cluster {
    /// Runs `f` on every processor of a simulated cluster and collects the
    /// results.
    ///
    /// `f` is invoked once per processor with that processor's handle. The
    /// call returns when every closure has returned (and, for processors
    /// that use [`ProcHandle::drain_recv`], the cluster has quiesced).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the simulation deadlocks, a message is sent
    /// to a finished processor, or any closure panics.
    pub fn run<M, R, F>(cfg: ClusterConfig, f: F) -> Result<RunOutcome<R>, SimError>
    where
        M: Send + 'static,
        R: Send,
        F: Fn(&mut ProcHandle<M>) -> R + Send + Sync,
    {
        assert!(cfg.procs > 0, "cluster needs at least one processor");
        let sched: Arc<Scheduler<M>> = Arc::new(Scheduler::new(cfg.procs));
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..cfg.procs).map(|_| None).collect());
        let reports: Mutex<Vec<Option<ProcReport>>> =
            Mutex::new((0..cfg.procs).map(|_| None).collect());

        std::thread::scope(|scope| {
            for id in 0..cfg.procs {
                let sched = Arc::clone(&sched);
                let f = &f;
                let results = &results;
                let reports = &reports;
                scope.spawn(move || {
                    let mut handle = ProcHandle {
                        id,
                        procs: cfg.procs,
                        net: cfg.net,
                        sched: Arc::clone(&sched),
                        clock: CpuClock::new(),
                        seq: 0,
                        msgs_sent: 0,
                        bytes_sent: 0,
                        msgs_received: 0,
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut handle)));
                    match outcome {
                        Ok(val) => {
                            lock_vec(reports)[id] = Some(handle.report());
                            lock_vec(results)[id] = Some(val);
                            sched.finish(id);
                        }
                        Err(payload) => {
                            if let Some(abort) = payload.downcast_ref::<SimAbort>() {
                                // The cluster is already poisoned; just make
                                // sure everyone is awake.
                                sched.set_poison(abort.0.clone());
                            } else {
                                let message = panic_message(&*payload);
                                sched.abandon(id, message);
                            }
                        }
                    }
                });
            }
        });

        if let Some(poison) = sched.poison() {
            return Err(poison.into());
        }
        let results: Vec<R> = into_vec(results)
            .into_iter()
            .map(|r| r.expect("every processor finished"))
            .collect();
        let reports: Vec<ProcReport> = into_vec(reports)
            .into_iter()
            .map(|r| r.expect("every processor reported"))
            .collect();
        let finish_time = reports
            .iter()
            .map(|r| r.final_time)
            .max()
            .unwrap_or(VirtualTime::ZERO);
        Ok(RunOutcome {
            results,
            reports,
            finish_time,
            messages_delivered: sched.delivered(),
        })
    }
}

/// Locks a result-collection mutex. These are only held for a single slot
/// assignment, never across a panic, so a poisoned guard is recovered.
fn lock_vec<T>(m: &Mutex<Vec<Option<T>>>) -> std::sync::MutexGuard<'_, Vec<Option<T>>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn into_vec<T>(m: Mutex<Vec<Option<T>>>) -> Vec<Option<T>> {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Msg = u64;

    #[test]
    fn single_proc_runs_locally() {
        let out = Cluster::run(ClusterConfig::new(1), |p: &mut ProcHandle<Msg>| {
            p.work(1000);
            p.now().cycles()
        })
        .unwrap();
        assert_eq!(out.results, vec![1000]);
        assert_eq!(out.messages_delivered, 0);
        assert_eq!(out.finish_time.cycles(), 1000);
    }

    #[test]
    fn message_delivery_advances_receiver_clock() {
        let cfg = ClusterConfig::new(2).net(NetModel {
            latency_cycles: 100,
            per_byte_millicycles: 1000,
            send_overhead_cycles: 10,
            recv_overhead_cycles: 20,
        });
        let out = Cluster::run(cfg, |p: &mut ProcHandle<Msg>| {
            if p.id() == 0 {
                p.work(50);
                p.send(1, 7, 8);
                0
            } else {
                let (at, src, msg) = p.recv();
                assert_eq!(src, 0);
                assert_eq!(msg, 7);
                // Sent at 50 + 10 overhead = 60; +100 latency +8 bytes = 168.
                assert_eq!(at.cycles(), 168);
                p.now().cycles()
            }
        })
        .unwrap();
        // Receiver: 168 delivery + 20 recv overhead.
        assert_eq!(out.results[1], 188);
    }

    #[test]
    fn deadlock_is_detected() {
        let err = Cluster::run(ClusterConfig::new(2), |p: &mut ProcHandle<Msg>| {
            // Both wait forever.
            p.recv();
        })
        .unwrap_err();
        match err {
            SimError::Deadlock { blocked } => assert_eq!(blocked, vec![0, 1]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn drain_recv_quiesces_when_everyone_drains() {
        let out = Cluster::run(ClusterConfig::new(3), |p: &mut ProcHandle<Msg>| {
            if p.id() == 0 {
                p.send(1, 1, 4);
                p.send(2, 2, 4);
            }
            let mut seen = 0;
            while let Some((_, _, m)) = p.drain_recv() {
                seen += m;
            }
            seen
        })
        .unwrap();
        assert_eq!(out.results, vec![0, 1, 2]);
    }

    #[test]
    fn app_panic_is_reported() {
        let err = Cluster::run(ClusterConfig::new(2), |p: &mut ProcHandle<Msg>| {
            if p.id() == 1 {
                panic!("boom");
            }
            p.recv();
        })
        .unwrap_err();
        match err {
            SimError::ProcPanicked { proc, message } => {
                assert_eq!(proc, 1);
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn delivery_order_is_deterministic_across_runs() {
        // Three senders fire at identical virtual times; the receiver's
        // observed order must be identical run after run.
        let run = || {
            let out = Cluster::run(
                ClusterConfig::new(4).net(NetModel::ideal()),
                |p: &mut ProcHandle<Msg>| {
                    if p.id() == 0 {
                        let mut order = Vec::new();
                        for _ in 0..3 {
                            let (_, src, _) = p.recv();
                            order.push(src);
                        }
                        order
                    } else {
                        p.send(0, p.id() as u64, 4);
                        Vec::new()
                    }
                },
            )
            .unwrap();
            out.results[0].clone()
        };
        let first = run();
        for _ in 0..10 {
            assert_eq!(run(), first);
        }
        // Ties broken by source id.
        assert_eq!(first, vec![1, 2, 3]);
    }

    #[test]
    fn finish_time_is_max_over_procs() {
        let out = Cluster::run(ClusterConfig::new(3), |p: &mut ProcHandle<Msg>| {
            p.work(100 * (p.id() as u64 + 1));
        })
        .unwrap();
        assert_eq!(out.finish_time.cycles(), 300);
    }

    #[test]
    fn self_send_is_rejected() {
        let err = Cluster::run(ClusterConfig::new(1), |p: &mut ProcHandle<Msg>| {
            p.send(0, 1, 4);
        })
        .unwrap_err();
        match err {
            SimError::ProcPanicked { proc: 0, message } => {
                assert!(message.contains("self-send"), "message: {message}");
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }
}
