//! The scheduler's pending-event queue: a bucketed calendar ring with a
//! binary-heap overflow.
//!
//! The conservative scheduler pops events in nondecreasing `(time, src,
//! seq)` order, and almost every event is posted a fixed wire delay or
//! timer ahead of the current virtual time — hundreds to a few hundred
//! thousand cycles. A calendar queue exploits that: events within the
//! *near horizon* (256 buckets of 4096 cycles ≈ one million cycles) go
//! into an unsorted ring bucket indexed by delivery time, found again by
//! an occupancy-bitmap scan from the floor bucket and a linear min-scan of
//! one bucket. Push is O(1); pop touches only the events sharing one
//! 4096-cycle window instead of re-heapifying the whole queue.
//!
//! Everything else — events beyond the horizon (long timers, crash
//! schedules) and stragglers posted *behind* the floor (possible only for
//! sources whose clock lags the last delivery, e.g. post-quiescence
//! wake-ups) — falls back to a plain `BinaryHeap`. Each pop compares the
//! ring minimum with the heap head, so the merged order is exactly the
//! total `(time, src, seq)` order of a single heap; the differential
//! tests below pin that down.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::event::Event;

/// log2 of the bucket width in cycles.
const BUCKET_SHIFT: u32 = 12;
/// Ring size; `NUM_BUCKETS << BUCKET_SHIFT` cycles of near horizon.
const NUM_BUCKETS: usize = 256;
/// Occupancy bitmap words.
const WORDS: usize = NUM_BUCKETS / 64;

/// A pending-event priority queue with the same pop order as
/// `BinaryHeap<Reverse<Event<M>>>`.
pub(crate) struct EventQueue<M> {
    /// The near ring: unsorted buckets of events within the horizon.
    buckets: Vec<Vec<Event<M>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Events currently in the ring.
    near_len: usize,
    /// Lower bound on every event in the ring: the largest delivery time
    /// popped so far (dispatch order is nondecreasing).
    floor: u64,
    /// Overflow order: beyond-horizon and behind-floor events.
    far: BinaryHeap<Reverse<Event<M>>>,
    /// Pops served from the ring.
    pub near_pops: u64,
    /// Pops served from the overflow heap.
    pub far_pops: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> EventQueue<M> {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            near_len: 0,
            floor: 0,
            far: BinaryHeap::new(),
            near_pops: 0,
            far_pops: 0,
        }
    }

    fn bucket_of(t: u64) -> usize {
        ((t >> BUCKET_SHIFT) % NUM_BUCKETS as u64) as usize
    }

    /// Whether delivery time `t` may live in the ring: not behind the
    /// floor, and within `NUM_BUCKETS` buckets of the floor's bucket (so
    /// ring position is monotone in time and each bucket holds one lap).
    fn in_near_window(&self, t: u64) -> bool {
        t >= self.floor && (t >> BUCKET_SHIFT) - (self.floor >> BUCKET_SHIFT) < NUM_BUCKETS as u64
    }

    /// Whether no events are pending (test oracle; the scheduler detects
    /// emptiness through `pop() == None`).
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.near_len == 0 && self.far.is_empty()
    }

    pub fn push(&mut self, ev: Event<M>) {
        let t = ev.deliver_at.cycles();
        if self.in_near_window(t) {
            let b = Self::bucket_of(t);
            self.buckets[b].push(ev);
            self.occupied[b / 64] |= 1u64 << (b % 64);
            self.near_len += 1;
        } else {
            self.far.push(Reverse(ev));
        }
    }

    /// The first occupied bucket at ring distance `>= 0` from `start`,
    /// scanning the bitmap a word at a time.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let (w0, b0) = (start / 64, start % 64);
        let masked = self.occupied[w0] & (!0u64 << b0);
        if masked != 0 {
            return Some(w0 * 64 + masked.trailing_zeros() as usize);
        }
        for i in 1..=WORDS {
            let wi = (w0 + i) % WORDS;
            // The wrapped-around tail of the start word covers only the
            // bits below `b0`.
            let mask = if i == WORDS { !(!0u64 << b0) } else { !0u64 };
            let w = self.occupied[wi] & mask;
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Position `(bucket, index)` of the ring's minimal event.
    fn near_min_pos(&self) -> Option<(usize, usize)> {
        if self.near_len == 0 {
            return None;
        }
        let b = self
            .next_occupied(Self::bucket_of(self.floor))
            .expect("near_len > 0 implies an occupied bucket");
        let v = &self.buckets[b];
        let mut best = 0;
        for i in 1..v.len() {
            if v[i] < v[best] {
                best = i;
            }
        }
        Some((b, best))
    }

    /// The minimal pending event under `(time, src, seq)`, without
    /// removing it.
    pub fn peek(&self) -> Option<&Event<M>> {
        let near = self.near_min_pos().map(|(b, i)| &self.buckets[b][i]);
        let far = self.far.peek().map(|Reverse(e)| e);
        match (near, far) {
            (None, f) => f,
            (n, None) => n,
            (Some(n), Some(f)) => Some(if f < n { f } else { n }),
        }
    }

    /// Removes and returns the minimal pending event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        let near = self.near_min_pos();
        let from_far = match (near, self.far.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some((b, i)), Some(Reverse(f))) => *f < self.buckets[b][i],
        };
        let ev = if from_far {
            self.far_pops += 1;
            let Some(Reverse(ev)) = self.far.pop() else {
                unreachable!("peeked heap head vanished")
            };
            ev
        } else {
            let (b, i) = near.expect("checked above");
            self.near_pops += 1;
            self.near_len -= 1;
            let ev = self.buckets[b].swap_remove(i);
            if self.buckets[b].is_empty() {
                self.occupied[b / 64] &= !(1u64 << (b % 64));
            }
            ev
        };
        // Behind-floor stragglers (from the heap) must not move the floor
        // backwards: ring membership was decided against the old floor.
        self.floor = self.floor.max(ev.deliver_at.cycles());
        ev.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualTime;

    fn ev(t: u64, src: usize, seq: u64) -> Event<u32> {
        Event {
            deliver_at: VirtualTime(t),
            src,
            seq,
            dst: 0,
            msg: (t % 1000) as u32,
        }
    }

    /// Deterministic xorshift so the differential tests cover varied
    /// interleavings without a random-number dependency.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// Runs the same push/pop schedule through the calendar queue and a
    /// plain `BinaryHeap`, asserting identical pop sequences.
    fn differential(seed: u64, ops: usize, spread: u64) {
        let mut rng = Rng(seed);
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut h: BinaryHeap<Reverse<Event<u32>>> = BinaryHeap::new();
        let mut now = 0u64; // mirrors the scheduler's virtual time
        let mut seq = 0u64;
        for _ in 0..ops {
            let r = rng.next();
            if !r.is_multiple_of(3) || h.is_empty() {
                // Post: usually ahead of `now`, sometimes far ahead
                // (beyond the ring horizon), occasionally *behind* `now`
                // (the post-quiescence straggler case).
                let delay = match r % 16 {
                    0 => (r >> 8) % (16 * spread), // beyond-horizon tail
                    1 => 0,
                    _ => (r >> 8) % spread,
                };
                let t = if r % 32 == 2 {
                    now.saturating_sub(delay)
                } else {
                    now + delay
                };
                let e = ev(t, (r % 7) as usize, seq);
                seq += 1;
                q.push(ev(t, e.src, e.seq));
                h.push(Reverse(e));
            } else {
                let Reverse(expect) = h.pop().expect("non-empty");
                let got = q.pop().expect("queues agree on emptiness");
                assert_eq!(
                    (got.deliver_at, got.src, got.seq),
                    (expect.deliver_at, expect.src, expect.seq),
                    "pop order diverged"
                );
                now = now.max(got.deliver_at.cycles());
            }
        }
        // Drain: remaining contents must agree too.
        while let Some(Reverse(expect)) = h.pop() {
            let got = q.pop().expect("queues agree on emptiness");
            assert_eq!(
                (got.deliver_at, got.src, got.seq),
                (expect.deliver_at, expect.src, expect.seq)
            );
        }
        assert!(q.is_empty());
        assert!(q.peek().is_none());
    }

    #[test]
    fn matches_binary_heap_at_wire_delay_scale() {
        // Spread ~ the ATM wire delays: everything lands in the ring.
        differential(0x9E37_79B9, 4000, 20_000);
    }

    #[test]
    fn matches_binary_heap_at_timer_scale() {
        // Spread ~ the retransmit timer: bucket laps and horizon
        // crossings both occur.
        differential(0xDEAD_BEEF, 4000, 400_000);
    }

    #[test]
    fn matches_binary_heap_with_heavy_far_traffic() {
        // Spread far beyond the horizon: most events overflow to the heap.
        differential(0x1234_5678, 2000, 8_000_000);
    }

    #[test]
    fn behind_floor_pushes_pop_in_global_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(ev(10_000, 0, 0));
        q.push(ev(20_000, 0, 1));
        let first = q.pop().unwrap();
        assert_eq!(first.deliver_at.cycles(), 10_000);
        // The floor is now 10_000; a straggler behind it must still pop
        // before the 20_000 event.
        q.push(ev(5_000, 1, 2));
        assert_eq!(q.peek().unwrap().deliver_at.cycles(), 5_000);
        let straggler = q.pop().unwrap();
        assert_eq!((straggler.deliver_at.cycles(), straggler.src), (5_000, 1));
        assert_eq!(q.pop().unwrap().deliver_at.cycles(), 20_000);
        assert!(q.pop().is_none());
        assert!(q.far_pops >= 1, "straggler served from the overflow heap");
    }

    #[test]
    fn same_key_fields_break_ties_by_src_then_seq() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(ev(100, 2, 0));
        q.push(ev(100, 0, 5));
        q.push(ev(100, 0, 3));
        q.push(ev(100, 1, 1));
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.src, e.seq))
            .collect();
        assert_eq!(order, vec![(0, 3), (0, 5), (1, 1), (2, 0)]);
    }

    #[test]
    fn empty_bucket_bitmap_stays_consistent() {
        let mut q: EventQueue<u32> = EventQueue::new();
        // Fill several buckets, drain completely, refill a lap later.
        for i in 0..32 {
            q.push(ev(i * 4096, 0, i));
        }
        for _ in 0..32 {
            q.pop().unwrap();
        }
        assert!(q.is_empty());
        for i in 0..32 {
            q.push(ev(2_000_000 + i * 4096, 0, 100 + i));
        }
        let mut last = 0;
        for _ in 0..32 {
            let t = q.pop().unwrap().deliver_at.cycles();
            assert!(t >= last);
            last = t;
        }
        assert!(q.is_empty());
    }
}
