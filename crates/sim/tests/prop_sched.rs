//! Randomized tests for the deterministic scheduler.
//!
//! These are property tests driven by the internal [`SplitMix64`]
//! generator (the workspace builds offline, so no external property
//! testing framework): each case is derived from a fixed seed, making
//! failures exactly reproducible from the printed case number.

use midway_sim::{Cluster, ClusterConfig, NetModel, ProcHandle, SplitMix64, VirtualTime};

/// Every sent message is delivered exactly once, at a time no earlier
/// than its send time plus the wire cost, and per-receiver delivery
/// times never decrease.
#[test]
fn delivery_is_exact_and_monotonic() {
    let mut rng = SplitMix64::new(0x5eed_0001);
    for case in 0..32 {
        let procs = 2 + rng.next_below(4) as usize;
        let fanout = 1 + rng.next_below(5) as usize;
        let work: Vec<u64> = (0..5).map(|_| rng.next_below(10_000)).collect();

        let cfg = ClusterConfig::new(procs).net(NetModel {
            latency_cycles: 100,
            per_byte_millicycles: 1000,
            send_overhead_cycles: 50,
            recv_overhead_cycles: 50,
        });
        let work2 = work.clone();
        let out = Cluster::run(cfg, move |p: &mut ProcHandle<(usize, u64)>| {
            let me = p.id();
            let n = p.procs();
            p.work(work2[me % work2.len()]);
            // Everyone sends `fanout` messages to the next processor.
            for _ in 0..fanout {
                let sent_at = p.now();
                p.send((me + 1) % n, (me, sent_at.cycles()), 16);
            }
            // And receives `fanout` messages from the previous one.
            let mut arrivals = Vec::new();
            for _ in 0..fanout {
                let (at, src, (claimed_src, sent_at)) = p.recv();
                arrivals.push((at, src, claimed_src, sent_at));
            }
            arrivals
        })
        .expect("simulation failed");

        let mut delivered = 0usize;
        for (pid, arrivals) in out.results.iter().enumerate() {
            let mut prev = VirtualTime::ZERO;
            for &(at, src, claimed_src, sent_at) in arrivals {
                delivered += 1;
                assert_eq!(src, claimed_src, "case {case}");
                assert_eq!(src, (pid + out.results.len() - 1) % out.results.len());
                // Wire cost: 100 latency + 16 bytes at 1 cycle/byte.
                assert!(at.cycles() >= sent_at + 116, "delivered before arrival");
                assert!(at >= prev, "per-receiver delivery went backwards");
                prev = at;
            }
        }
        assert_eq!(delivered as u64, out.messages_delivered, "case {case}");
        assert_eq!(delivered, procs * fanout, "case {case}");
    }
}

/// Finish time equals the maximum processor clock and is itself
/// deterministic across runs.
#[test]
fn finish_time_is_max_and_stable() {
    let mut rng = SplitMix64::new(0x5eed_0002);
    for case in 0..32 {
        let procs = 1 + rng.next_below(4) as usize;
        let work: Vec<u64> = (0..4).map(|_| 1 + rng.next_below(100_000)).collect();
        let run = || {
            let work = work.clone();
            Cluster::run(ClusterConfig::new(procs), move |p: &mut ProcHandle<u8>| {
                p.work(work[p.id() % work.len()]);
                p.now()
            })
            .expect("simulation failed")
        };
        let a = run();
        let max = a.results.iter().copied().max().expect("non-empty");
        assert_eq!(a.finish_time, max, "case {case}");
        let b = run();
        assert_eq!(a.finish_time, b.finish_time, "case {case}");
    }
}
