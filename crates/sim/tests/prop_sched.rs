//! Property-based tests for the deterministic scheduler.

use midway_sim::{Cluster, ClusterConfig, NetModel, ProcHandle, VirtualTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every sent message is delivered exactly once, at a time no earlier
    /// than its send time plus the wire cost, and per-receiver delivery
    /// times never decrease.
    #[test]
    fn delivery_is_exact_and_monotonic(
        procs in 2usize..=5,
        fanout in 1usize..=5,
        work in proptest::collection::vec(0u64..10_000, 5),
    ) {
        let cfg = ClusterConfig::new(procs).net(NetModel {
            latency_cycles: 100,
            per_byte_millicycles: 1000,
            send_overhead_cycles: 50,
            recv_overhead_cycles: 50,
        });
        let work2 = work.clone();
        let out = Cluster::run(cfg, move |p: &mut ProcHandle<(usize, u64)>| {
            let me = p.id();
            let n = p.procs();
            p.work(work2[me % work2.len()]);
            // Everyone sends `fanout` messages to the next processor.
            for k in 0..fanout {
                let sent_at = p.now();
                p.send((me + 1) % n, (me, sent_at.cycles()), 16);
                let _ = k;
            }
            // And receives `fanout` messages from the previous one.
            let mut arrivals = Vec::new();
            for _ in 0..fanout {
                let (at, src, (claimed_src, sent_at)) = p.recv();
                arrivals.push((at, src, claimed_src, sent_at));
            }
            arrivals
        })
        .expect("simulation failed");

        let mut delivered = 0usize;
        for (pid, arrivals) in out.results.iter().enumerate() {
            let mut prev = VirtualTime::ZERO;
            for &(at, src, claimed_src, sent_at) in arrivals {
                delivered += 1;
                prop_assert_eq!(src, claimed_src);
                prop_assert_eq!(src, (pid + out.results.len() - 1) % out.results.len());
                // Wire cost: 100 latency + 16 bytes at 1 cycle/byte.
                prop_assert!(at.cycles() >= sent_at + 116, "delivered before arrival");
                prop_assert!(at >= prev, "per-receiver delivery went backwards");
                prev = at;
            }
        }
        prop_assert_eq!(delivered as u64, out.messages_delivered);
        prop_assert_eq!(delivered, procs * fanout);
    }

    /// Finish time equals the maximum processor clock and is itself
    /// deterministic across runs.
    #[test]
    fn finish_time_is_max_and_stable(
        procs in 1usize..=4,
        work in proptest::collection::vec(1u64..100_000, 4),
    ) {
        let run = || {
            let work = work.clone();
            Cluster::run(ClusterConfig::new(procs), move |p: &mut ProcHandle<u8>| {
                p.work(work[p.id() % work.len()]);
                p.now()
            })
            .expect("simulation failed")
        };
        let a = run();
        let max = a.results.iter().copied().max().expect("non-empty");
        prop_assert_eq!(a.finish_time, max);
        let b = run();
        prop_assert_eq!(a.finish_time, b.finish_time);
    }
}
