//! Table 2: per-processor invocation counts of the primitive operations.
//!
//! Runs all five applications under RT-DSM and VM-DSM on the simulated
//! cluster and prints the measured per-processor averages, in the paper's
//! row layout.

use midway_bench::{banner, run_suite, BenchArgs};
use midway_core::Counters;
use midway_stats::{fmt_f64, fmt_u64, TextTable};

fn main() {
    let args = BenchArgs::parse();
    banner("Table 2: per-processor invocation counts", &args);
    let suite = run_suite(&args);

    let headers: Vec<String> = ["System", "Operation"]
        .iter()
        .map(|s| s.to_string())
        .chain(suite.iter().map(|s| s.app.label().to_string()))
        .collect();
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TextTable::new(&headers).left_cols(2);

    let row = |t: &mut TextTable, sys: &str, op: &str, vals: Vec<String>| {
        let mut cells = vec![sys.to_string(), op.to_string()];
        cells.extend(vals);
        t.row(&cells);
    };
    let rt_avg = |f: &dyn Fn(&Counters) -> u64| -> Vec<String> {
        suite
            .iter()
            .map(|s| fmt_u64(Counters::average(&s.rt.counters).avg(f).round() as u64))
            .collect()
    };
    let vm_avg = |f: &dyn Fn(&Counters) -> u64| -> Vec<String> {
        suite
            .iter()
            .map(|s| fmt_u64(Counters::average(&s.vm.counters).avg(f).round() as u64))
            .collect()
    };

    row(
        &mut t,
        "RT-DSM",
        "dirtybits set",
        rt_avg(&|c| c.dirtybits_set),
    );
    row(
        &mut t,
        "",
        "dirtybits misclassified",
        rt_avg(&|c| c.dirtybits_misclassified),
    );
    row(
        &mut t,
        "",
        "clean dirtybits read",
        rt_avg(&|c| c.clean_dirtybits_read),
    );
    row(
        &mut t,
        "",
        "dirty dirtybits read",
        rt_avg(&|c| c.dirty_dirtybits_read),
    );
    row(
        &mut t,
        "",
        "dirtybits updated",
        rt_avg(&|c| c.dirtybits_updated),
    );
    row(
        &mut t,
        "",
        "data transferred (KB)",
        suite
            .iter()
            .map(|s| fmt_f64(s.rt.data_kb_per_proc, 0))
            .collect(),
    );
    row(
        &mut t,
        "",
        "percent dirty data",
        suite
            .iter()
            .map(|s| {
                let mut sum = Counters::default();
                for c in &s.rt.counters {
                    sum.add(c);
                }
                fmt_f64(sum.percent_dirty(), 1)
            })
            .collect(),
    );
    t.separator();
    row(
        &mut t,
        "VM-DSM",
        "write faults",
        vm_avg(&|c| c.write_faults),
    );
    row(&mut t, "", "pages diffed", vm_avg(&|c| c.pages_diffed));
    row(
        &mut t,
        "",
        "pages write protected",
        vm_avg(&|c| c.pages_write_protected),
    );
    row(
        &mut t,
        "",
        "data updated in twins (KB)",
        suite
            .iter()
            .map(|s| {
                fmt_f64(
                    Counters::average(&s.vm.counters).avg(|c: &Counters| c.twin_bytes_updated)
                        / 1024.0,
                    0,
                )
            })
            .collect(),
    );
    row(
        &mut t,
        "",
        "data transferred (KB)",
        suite
            .iter()
            .map(|s| fmt_f64(s.vm.data_kb_per_proc, 0))
            .collect(),
    );
    println!("{t}");
    println!("\nPaper Table 2 (8 procs, paper inputs), for comparison:");
    println!("RT dirtybits set:    43,180 / 220,804 / 98,311 / 348,516 / 1,284,004");
    println!("VM write faults:        258 /     156 /     74 /     468 /     2,916");
    println!("VM pages diffed:        253 /      27 /    120 /     674 /     3,107");

    args.emit_tables("table2", &[("table", &t)]);
}
