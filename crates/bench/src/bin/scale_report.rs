//! Renders the scale sweep's committed results (`BENCH_scale.json`)
//! into the speedup-vs-processors markdown table EXPERIMENTS.md carries.
//!
//! The sweep itself runs for hours; this report re-derives the
//! presentation from the recorded JSON in milliseconds, so the document
//! can never drift from the data. For each application × backend the
//! table lists simulated seconds by processor count and the relative
//! speedup against that pair's smallest swept count (virtual time is the
//! paper-comparable metric; host seconds depend on the machine the
//! sweep ran on).
//!
//! Usage:
//!
//! ```text
//! scale_report [--in BENCH_scale.json] [--write EXPERIMENTS.md]
//! ```
//!
//! Without `--write` the markdown table prints to stdout; with it, the
//! block between the `<!-- scale_report:begin -->` and
//! `<!-- scale_report:end -->` markers in the target file is replaced
//! in place (the file must already carry the markers).

use std::process::ExitCode;

use midway_bench::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| args[i + 1..].first().expect("flag needs a value").clone())
    };
    let input = value("--in").unwrap_or_else(|| "BENCH_scale.json".to_string());
    let target = value("--write");

    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot parse {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let table = match render(&json) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot report on {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match target {
        None => {
            print!("{table}");
            ExitCode::SUCCESS
        }
        Some(path) => match splice(&path, &table) {
            Ok(()) => {
                println!("scale table refreshed in {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
    }
}

/// One parsed sweep cell.
struct Cell {
    app: String,
    backend: String,
    procs: u64,
    sim_secs: f64,
    host_secs: f64,
    events_per_sec: f64,
    peak_rss_mb: u64,
    verified: bool,
}

/// Builds the markdown table from the sweep JSON.
fn render(json: &Json) -> Result<String, String> {
    let harness = json.get("harness").and_then(Json::as_str).unwrap_or("?");
    if harness != "scale_sweep" {
        return Err(format!("expected a scale_sweep result, got {harness:?}"));
    }
    let mut cells = Vec::new();
    for c in json.get("cells").map(Json::items).unwrap_or_default() {
        if c.get("skipped").and_then(Json::as_bool).unwrap_or(false) {
            continue;
        }
        let field = |k: &str| c.get(k).ok_or_else(|| format!("cell lacks {k:?}"));
        cells.push(Cell {
            app: field("app")?.as_str().unwrap_or("?").to_string(),
            backend: field("backend")?.as_str().unwrap_or("?").to_string(),
            procs: field("procs")?.as_u64().unwrap_or(0),
            sim_secs: field("sim_secs")?.as_f64().unwrap_or(f64::NAN),
            host_secs: field("host_secs")?.as_f64().unwrap_or(f64::NAN),
            events_per_sec: field("events_per_sec")?.as_f64().unwrap_or(f64::NAN),
            peak_rss_mb: field("peak_rss_mb")?.as_u64().unwrap_or(0),
            verified: field("verified")?.as_bool().unwrap_or(false),
        });
    }
    if cells.is_empty() {
        return Err("no completed cells in the sweep".to_string());
    }
    cells.sort_by(|a, b| (&a.app, &a.backend, a.procs).cmp(&(&b.app, &b.backend, b.procs)));

    let mut out = String::new();
    out.push_str(
        "| app | backend | procs | sim s | vs fewest | host s | events/s | peak MB | verified |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    let mut base: Option<(String, String, f64)> = None;
    for c in &cells {
        let key = (c.app.clone(), c.backend.clone());
        let base_secs = match &base {
            Some((a, b, secs)) if (a, b) == (&key.0, &key.1) => *secs,
            _ => {
                base = Some((key.0.clone(), key.1.clone(), c.sim_secs));
                c.sim_secs
            }
        };
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.2}× | {:.1} | {:.0} | {} | {} |\n",
            c.app,
            c.backend,
            c.procs,
            c.sim_secs,
            base_secs / c.sim_secs.max(1e-12),
            c.host_secs,
            c.events_per_sec,
            c.peak_rss_mb,
            if c.verified { "yes" } else { "**NO**" },
        ));
    }
    Ok(out)
}

const BEGIN: &str = "<!-- scale_report:begin -->";
const END: &str = "<!-- scale_report:end -->";

/// Replaces the marked block in `path` with `table`.
fn splice(path: &str, table: &str) -> Result<(), String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let start = doc
        .find(BEGIN)
        .ok_or_else(|| format!("{path} lacks the {BEGIN} marker"))?;
    let end = doc
        .find(END)
        .ok_or_else(|| format!("{path} lacks the {END} marker"))?;
    if end < start {
        return Err(format!("{path}: end marker precedes begin marker"));
    }
    let mut next = String::with_capacity(doc.len());
    next.push_str(&doc[..start + BEGIN.len()]);
    next.push('\n');
    next.push_str(table);
    next.push_str(&doc[end..]);
    std::fs::write(path, next).map_err(|e| format!("cannot write {path}: {e}"))
}
