//! Loss-rate sweep: finish time and reliability overhead per backend on
//! an unreliable network.
//!
//! The paper assumes a reliable interconnect; this harness measures what
//! masking an *unreliable* one costs each write-detection backend. One
//! recorded trace drives every point: for each data-moving backend the
//! trace is replayed under a seeded fault plan at increasing drop rates,
//! and the finish time is compared with the same backend's run on the
//! trusted network (no reliable framing at all). The loss-0 column
//! therefore isolates the pure channel overhead — framing bytes, acks,
//! timers — and the remaining columns add real recovery work
//! (retransmissions after drops).
//!
//! Shares the standard harness flags; additionally `--app NAME` picks the
//! recorded application (default sor, whose barrier-partitioned sharing
//! converges bit-for-bit under any fault schedule) and `--fault-seed N`
//! seeds the schedule (default 1).

use midway_apps::AppKind;
use midway_bench::{banner, cached_trace, replay_outcome, run_cells, BenchArgs, Json};
use midway_core::{BackendKind, FaultPlan};
use midway_replay::replay;
use midway_stats::{fmt_f64, TextTable};

/// Drop rates swept, in parts per million (0%, 0.25%, 0.5%, 1%, 2%, 5%).
const LOSS_PPM: [u32; 6] = [0, 2_500, 5_000, 10_000, 20_000, 50_000];

fn main() {
    let args = BenchArgs::parse();
    banner("Loss sweep: reliable delivery cost per backend", &args);

    let app = match args.value("--app") {
        Some(name) => AppKind::all()
            .into_iter()
            .find(|k| k.label() == name)
            .unwrap_or_else(|| panic!("unknown app {name:?}")),
        None => AppKind::Sor,
    };
    let seed: u64 = args
        .value("--fault-seed")
        .map(|s| s.parse().expect("--fault-seed takes a number"))
        .unwrap_or(1);

    let trace = cached_trace(&args, app, BackendKind::Rt);
    println!(
        "app: {}, fault seed: {seed}, drop rates: {:?} ppm\n",
        app.label(),
        LOSS_PPM
    );

    let mut t = TextTable::new(&[
        "backend",
        "loss (%)",
        "finish (ms)",
        "slowdown",
        "retransmits",
        "acks",
        "dup frames",
    ]);
    let mut points_json = Vec::new();
    // One cell per backend, all sharing the already-recorded trace
    // read-only; each cell sweeps its loss rates sequentially because
    // they compare against the cell's own trusted-network baseline.
    let sweeps = run_cells(args.jobs, BackendKind::DATA.to_vec(), |backend| {
        // The trusted-network baseline: no fault plan, no framing. Same-
        // backend replays go through the bit-for-bit equivalence oracle.
        let base = replay_outcome(&trace, app, backend);
        let base_ms = trace
            .meta
            .cfg
            .cost
            .cycles_to_millis(base.finish_time.cycles());
        let base_digests = {
            let mut cfg = trace.recorded_cfg();
            cfg.backend = backend;
            replay(&trace, cfg)
                .expect("trusted-network baseline replay")
                .store_digests
        };
        let mut rows = Vec::new();
        let mut points = Vec::new();
        for loss in LOSS_PPM {
            let mut cfg = trace.recorded_cfg();
            cfg.backend = backend;
            cfg.faults = FaultPlan::lossy(seed, loss);
            let run = replay(&trace, cfg).unwrap_or_else(|e| {
                panic!("{} replay at {loss} ppm loss failed: {e}", backend.label())
            });
            if run.store_digests != base_digests {
                eprintln!(
                    "note: {} at {loss} ppm ended with different final memory than \
                     the trusted-network run (legitimate for lock-order-dependent apps)",
                    backend.label()
                );
            }
            let link = run.link_totals();
            let ms = cfg.cost.cycles_to_millis(run.finish_time.cycles());
            rows.push([
                backend.label().to_string(),
                fmt_f64(f64::from(loss) / 10_000.0, 2),
                fmt_f64(ms, 1),
                format!("{:.2}x", ms / base_ms.max(1e-12)),
                link.retransmits.to_string(),
                link.acks_sent.to_string(),
                link.dup_frames_dropped.to_string(),
            ]);
            points.push(Json::obj([
                ("backend", Json::str(backend.cli_name())),
                ("loss_ppm", Json::U64(u64::from(loss))),
                ("finish_ms", Json::F64(ms)),
                ("baseline_ms", Json::F64(base_ms)),
                ("slowdown", Json::F64(ms / base_ms.max(1e-12))),
                ("retransmits", Json::U64(link.retransmits)),
                ("acks", Json::U64(link.acks_sent)),
                ("dup_frames", Json::U64(link.dup_frames_dropped)),
                ("data_frames", Json::U64(link.data_frames_sent)),
            ]));
        }
        (rows, points)
    });
    for (rows, points) in sweeps {
        for row in &rows {
            t.row(row);
        }
        points_json.extend(points);
    }
    println!("{t}");
    println!("\nSlowdown is against the same backend on the trusted network (no");
    println!("framing). The 0% row is the pure channel overhead; higher rates add");
    println!("retransmission and backoff on top.");

    let mut pairs = args.meta_json("fault_sweep");
    pairs.push(("app".to_string(), Json::str(app.label())));
    pairs.push(("fault_seed".to_string(), Json::U64(seed)));
    pairs.push(("points".to_string(), Json::Arr(points_json)));
    args.emit("fault_sweep", &Json::Obj(pairs));
}
