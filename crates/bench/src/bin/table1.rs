//! Table 1: execution times for primitive operations.
//!
//! The values are the paper's measurements on a 25 MHz MIPS R3000 running
//! Mach 3.0 — they are the *inputs* to every simulation charge, so this
//! harness prints the model (for the record in `EXPERIMENTS.md`) and
//! cross-checks the µs/cycles columns against each other.

use midway_bench::BenchArgs;
use midway_stats::{fmt_f64, fmt_u64, CostModel, TextTable};

fn main() {
    let args = BenchArgs::parse();
    let c = CostModel::r3000_mach();
    println!("== Table 1: primitive operation costs (model inputs) ==");
    println!("platform: {} MHz R3000, {} B pages\n", c.mhz, c.page_size);

    let us = |cycles: u64| fmt_f64(cycles as f64 / c.mhz as f64, 3);
    let mut t =
        TextTable::new(&["System", "Primitive operation", "Time (usecs)", "Cycles"]).left_cols(2);
    t.row(&[
        "RT-DSM",
        "dirtybit set, word write",
        &us(c.dirtybit_set_word),
        &fmt_u64(c.dirtybit_set_word),
    ]);
    t.row(&[
        "",
        "dirtybit set, doubleword write",
        &us(c.dirtybit_set_double),
        &fmt_u64(c.dirtybit_set_double),
    ]);
    t.row(&[
        "",
        "dirtybit set, private memory",
        &us(c.dirtybit_set_private),
        &fmt_u64(c.dirtybit_set_private),
    ]);
    t.row(&[
        "",
        "dirtybit read, clean",
        &fmt_f64(c.dirtybit_read_clean_us, 3),
        &fmt_u64(c.dirtybit_read_clean),
    ]);
    t.row(&[
        "",
        "dirtybit read, dirty",
        &fmt_f64(c.dirtybit_read_dirty_us, 3),
        &fmt_u64(c.dirtybit_read_dirty),
    ]);
    t.row(&[
        "",
        "dirtybit update",
        &fmt_f64(c.dirtybit_update_us, 3),
        &fmt_u64(c.dirtybit_update),
    ]);
    t.separator();
    t.row(&[
        "VM-DSM",
        "page write fault (copy+protect)",
        &us(c.page_write_fault),
        &fmt_u64(c.page_write_fault),
    ]);
    t.row(&[
        "",
        "page diff, none/all changed",
        &fmt_f64(c.page_diff_uniform_us, 0),
        &fmt_u64(c.page_diff_uniform),
    ]);
    t.row(&[
        "",
        "page diff, every other word",
        &us(c.page_diff_alternating),
        &fmt_u64(c.page_diff_alternating),
    ]);
    t.row(&[
        "",
        "protect read-write",
        &us(c.protect_rw),
        &fmt_u64(c.protect_rw),
    ]);
    t.row(&[
        "",
        "protect read-only",
        &us(c.protect_ro),
        &fmt_u64(c.protect_ro),
    ]);
    t.row(&[
        "",
        "block copy per KB, cold",
        &us(c.copy_per_kb_cold),
        &fmt_u64(c.copy_per_kb_cold),
    ]);
    t.row(&[
        "",
        "block copy per KB, warm",
        &us(c.copy_per_kb_warm),
        &fmt_u64(c.copy_per_kb_warm),
    ]);
    println!("{t}");

    println!("Paper values (for comparison): 0.360 / 0.360 / 0.240 / 0.217 / 0.187 / 0.067 usecs;");
    println!("1,200 / 260 / 1,870 / 125 / 127 / 84 / 26 usecs.");
    println!("\nNote: Table 1's cycle column is the paper's rounding of the measured");
    println!("microseconds; charging uses cycles, Table 3/4 derivations use the");
    println!("exact microseconds, exactly as the paper does.");

    args.emit_tables("table1", &[("table", &t)]);
}
