//! Figure 4: the effect of varying page-fault cost on the *total* cost of
//! write detection — trapping plus collection.
//!
//! Unlike trapping, collection does not depend on the fault cost, so the
//! VM lines shift right by a constant: "the cost of write collection is
//! significant, and even with an optimized exception handler RT-DSM
//! dominates VM-DSM" for the medium and fine-grained applications. The
//! paper reports break-even fault times of 650 µs for matrix-multiply and
//! 696 µs for quicksort.
//!
//! Like `fig3`, the sweep derives from one cached trace per application.

use midway_bench::{banner, run_suite, BenchArgs, Json};
use midway_core::{report, BackendKind, Counters};
use midway_stats::{fmt_f64, CostModel, FaultSweep, TextTable};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 4: total detection cost vs page-fault service time",
        &args,
    );
    let suite = run_suite(&args);
    let sweep = FaultSweep::paper(7);
    let models = sweep.models(CostModel::r3000_mach());

    let mut headers = vec!["App".to_string(), "RT total (ms)".to_string()];
    headers.extend(
        models
            .iter()
            .map(|m| format!("VM @{:.0}us", m.fault_micros())),
    );
    headers.push("break-even (us)".to_string());
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TextTable::new(&headers);

    let mut apps_json = Vec::new();
    for s in &suite {
        let rt_avg = Counters::average(&s.rt.counters);
        let vm_avg = Counters::average(&s.vm.counters);
        let rt_total = report::trapping_millis(BackendKind::Rt, &rt_avg, &models[0])
            + report::collection_millis(BackendKind::Rt, &rt_avg, &models[0]).total();
        let vm_collect = report::collection_millis(BackendKind::Vm, &vm_avg, &models[0]).total();
        let vm_total: Vec<f64> = models
            .iter()
            .map(|m| report::trapping_millis(BackendKind::Vm, &vm_avg, m) + vm_collect)
            .collect();
        let mut cells = vec![s.app.label().to_string(), fmt_f64(rt_total, 1)];
        cells.extend(vm_total.iter().map(|v| fmt_f64(*v, 1)));
        // Break-even fault time: RT total == faults × fault + VM collect.
        let faults = vm_avg.avg(|c| c.write_faults);
        let break_even = if faults > 0.0 {
            (rt_total - vm_collect) * 1_000.0 / faults
        } else {
            f64::INFINITY
        };
        cells.push(if break_even.is_finite() && break_even > 0.0 {
            fmt_f64(break_even, 0)
        } else if break_even <= 0.0 {
            "<0 (RT always wins)".to_string()
        } else {
            "inf".to_string()
        });
        t.row(&cells);
        apps_json.push(Json::obj([
            ("app", Json::str(s.app.label())),
            ("rt_total_ms", Json::F64(rt_total)),
            ("vm_collect_ms", Json::F64(vm_collect)),
            (
                "vm_total_ms",
                Json::arr(vm_total.into_iter().map(Json::F64)),
            ),
            ("break_even_us", Json::F64(break_even)),
        ]));
    }
    println!("{t}");
    println!("\nPaper reference: break-even at 650 us (matrix-multiply) and 696 us");
    println!("(quicksort); the medium and fine-grain applications sit below the");
    println!("diagonal for every fault cost — RT-DSM dominates.");

    let mut pairs = args.meta_json("fig4");
    pairs.push((
        "fault_us".to_string(),
        Json::arr(models.iter().map(|m| Json::F64(m.fault_micros()))),
    ));
    pairs.push(("apps".to_string(), Json::Arr(apps_json)));
    args.emit("fig4", &Json::Obj(pairs));
}
