//! Table 4: summary of the cost for write collection, per-processor
//! average, broken into the paper's rows.

use midway_bench::{banner, run_suite, BenchArgs};
use midway_core::{report, BackendKind, Counters};
use midway_stats::{fmt_f64, CostModel, TextTable};

fn main() {
    let args = BenchArgs::parse();
    banner("Table 4: write collection time (ms)", &args);
    let suite = run_suite(&args);
    let cost = CostModel::r3000_mach();

    let headers: Vec<String> = ["System", "Operation"]
        .iter()
        .map(|s| s.to_string())
        .chain(suite.iter().map(|s| s.app.label().to_string()))
        .collect();
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TextTable::new(&headers).left_cols(2);

    let rt: Vec<report::CollectionBreakdown> = suite
        .iter()
        .map(|s| {
            report::collection_millis(BackendKind::Rt, &Counters::average(&s.rt.counters), &cost)
        })
        .collect();
    let vm: Vec<report::CollectionBreakdown> = suite
        .iter()
        .map(|s| {
            report::collection_millis(BackendKind::Vm, &Counters::average(&s.vm.counters), &cost)
        })
        .collect();

    let push = |t: &mut TextTable, sys: &str, op: &str, vals: Vec<String>| {
        let mut cells = vec![sys.to_string(), op.to_string()];
        cells.extend(vals);
        t.row(&cells);
    };
    let f = |v: f64| fmt_f64(v, 1);
    push(
        &mut t,
        "RT-DSM",
        "clean dirtybits read",
        rt.iter().map(|b| f(b.rt_clean_reads_ms)).collect(),
    );
    push(
        &mut t,
        "",
        "dirty dirtybits read",
        rt.iter().map(|b| f(b.rt_dirty_reads_ms)).collect(),
    );
    push(
        &mut t,
        "",
        "dirtybits updated",
        rt.iter().map(|b| f(b.rt_updates_ms)).collect(),
    );
    push(
        &mut t,
        "",
        "Total",
        rt.iter().map(|b| f(b.total())).collect(),
    );
    t.separator();
    push(
        &mut t,
        "VM-DSM",
        "pages diffed",
        vm.iter().map(|b| f(b.vm_diff_ms)).collect(),
    );
    push(
        &mut t,
        "",
        "pages write protected",
        vm.iter().map(|b| f(b.vm_protect_ms)).collect(),
    );
    push(
        &mut t,
        "",
        "data updated in twins",
        vm.iter().map(|b| f(b.vm_twin_ms)).collect(),
    );
    push(
        &mut t,
        "",
        "Total",
        vm.iter().map(|b| f(b.total())).collect(),
    );
    t.separator();
    push(
        &mut t,
        "",
        "RT-DSM collection advantage",
        rt.iter()
            .zip(&vm)
            .map(|(r, v)| f(v.total() - r.total()))
            .collect(),
    );
    println!("{t}");
    println!("\nPaper Table 4 totals (8 procs, paper inputs), for comparison:");
    println!("RT: 14.9 / 50.4 / 59.6 /  64.1 /   771.4");
    println!("VM: 123.3 / 21.3 / 46.8 / 262.0 / 1,335.4");

    args.emit_tables("table4", &[("table", &t)]);
}
