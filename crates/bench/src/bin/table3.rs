//! Table 3: summary of the time for write trapping.
//!
//! "All times are in milliseconds and are computed by measuring the costs
//! of the primitive operations and multiplying by the average
//! per-processor number of invocations for each application."

use midway_bench::{banner, run_suite, BenchArgs};
use midway_core::{report, BackendKind, Counters};
use midway_stats::{fmt_f64, CostModel, TextTable};

fn main() {
    let args = BenchArgs::parse();
    banner("Table 3: write trapping time (ms)", &args);
    let suite = run_suite(&args);
    let cost = CostModel::r3000_mach();

    let headers: Vec<String> = ["System", "Operation"]
        .iter()
        .map(|s| s.to_string())
        .chain(suite.iter().map(|s| s.app.label().to_string()))
        .collect();
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TextTable::new(&headers).left_cols(2);

    let rt: Vec<f64> = suite
        .iter()
        .map(|s| {
            report::trapping_millis(BackendKind::Rt, &Counters::average(&s.rt.counters), &cost)
        })
        .collect();
    let vm: Vec<f64> = suite
        .iter()
        .map(|s| {
            report::trapping_millis(BackendKind::Vm, &Counters::average(&s.vm.counters), &cost)
        })
        .collect();

    let cells = |v: &[f64]| -> Vec<String> { v.iter().map(|x| fmt_f64(*x, 1)).collect() };
    let mut row = vec!["RT-DSM".to_string(), "write trapping time".to_string()];
    row.extend(cells(&rt));
    t.row(&row);
    let mut row = vec!["VM-DSM".to_string(), "write trapping time".to_string()];
    row.extend(cells(&vm));
    t.row(&row);
    t.separator();
    let mut row = vec!["".to_string(), "RT-DSM trapping advantage".to_string()];
    row.extend(
        rt.iter()
            .zip(&vm)
            .map(|(r, v)| fmt_f64(v - r, 1))
            .collect::<Vec<_>>(),
    );
    t.row(&row);
    println!("{t}");
    println!("\nPaper Table 3 (8 procs, paper inputs), for comparison:");
    println!("RT: 15.6 / 79.5 / 35.4 / 125.5 /   485.3");
    println!("VM: 309.6 / 187.2 / 88.8 / 561.6 / 3,499.2");

    args.emit_tables("table3", &[("table", &t)]);
}
