//! Figure 2: execution times and total data transferred.
//!
//! The paper's figure shows, per application: the standalone uniprocessor
//! time, the eight-processor execution time under RT-DSM and VM-DSM, and
//! the data transferred in an eight-processor execution. The text also
//! gives uniprocessor DSM times for water (RT 110.1 s, VM 109.1 s,
//! standalone 104.2 s), reproduced here by the one-processor columns.

use midway_apps::{run_app, AppKind};
use midway_bench::{banner, procs_from_args, scale_from_args};
use midway_core::{BackendKind, MidwayConfig};
use midway_stats::{fmt_f64, TextTable};

fn main() {
    let scale = scale_from_args();
    let procs = procs_from_args();
    banner(
        "Figure 2: execution time and data transferred",
        scale,
        procs,
    );

    let mut t = TextTable::new(&[
        "App",
        "standalone (s)",
        "RT 1p (s)",
        "VM 1p (s)",
        &format!("RT {procs}p (s)"),
        &format!("VM {procs}p (s)"),
        "RT data (MB)",
        "VM data (MB)",
    ]);
    for app in AppKind::all() {
        eprintln!("running {} ...", app.label());
        let solo = run_app(app, MidwayConfig::standalone(), scale);
        let rt1 = run_app(app, MidwayConfig::new(1, BackendKind::Rt), scale);
        let vm1 = run_app(app, MidwayConfig::new(1, BackendKind::Vm), scale);
        let rt = run_app(app, MidwayConfig::new(procs, BackendKind::Rt), scale);
        let vm = run_app(app, MidwayConfig::new(procs, BackendKind::Vm), scale);
        for (label, out) in [
            ("standalone", &solo),
            ("RT 1p", &rt1),
            ("VM 1p", &vm1),
            ("RT", &rt),
            ("VM", &vm),
        ] {
            assert!(out.verified, "{app:?} {label} failed verification");
        }
        t.row(&[
            app.label().to_string(),
            fmt_f64(solo.exec_secs, 1),
            fmt_f64(rt1.exec_secs, 1),
            fmt_f64(vm1.exec_secs, 1),
            fmt_f64(rt.exec_secs, 1),
            fmt_f64(vm.exec_secs, 1),
            fmt_f64(rt.data_mb_total, 2),
            fmt_f64(vm.data_mb_total, 2),
        ]);
    }
    println!("{t}");
    println!("\nPaper reference points: water uniprocessor RT 110.1 s, VM 109.1 s,");
    println!("standalone 104.2 s. At eight processors the paper finds VM ahead only");
    println!("for quicksort; water, sor and cholesky run faster and move less data");
    println!("under RT-DSM; matrix shows only a minor difference.");
}
