//! Figure 2: execution times and total data transferred.
//!
//! The paper's figure shows, per application: the standalone uniprocessor
//! time, the eight-processor execution time under RT-DSM and VM-DSM, and
//! the data transferred in an eight-processor execution. The text also
//! gives uniprocessor DSM times for water (RT 110.1 s, VM 109.1 s,
//! standalone 104.2 s), reproduced here by the one-processor columns.
//!
//! Trace-driven: each (application, cluster size) pair is recorded once —
//! standalone, one processor, `--procs` processors — and later
//! invocations replay the cached traces (`--live` forces live runs).

use midway_apps::{run_app, AppKind};
use midway_bench::{
    banner, cached_trace_with, replay_outcome, rt_vm_outcomes, run_cells, BenchArgs, Json,
};
use midway_core::{BackendKind, MidwayConfig};
use midway_stats::{fmt_f64, TextTable};

fn main() {
    let args = BenchArgs::parse();
    let procs = args.procs;
    banner("Figure 2: execution time and data transferred", &args);

    let mut t = TextTable::new(&[
        "App",
        "standalone (s)",
        "RT 1p (s)",
        "VM 1p (s)",
        &format!("RT {procs}p (s)"),
        &format!("VM {procs}p (s)"),
        "RT data (MB)",
        "VM data (MB)",
    ]);
    let mut apps_json = Vec::new();
    // One cell per application (each owns its trace files); the table is
    // assembled from the joined results in app order below.
    let cells = run_cells(args.jobs, AppKind::all().into_iter().collect(), |app| {
        let solo = if args.flag("--live") {
            let out = run_app(app, MidwayConfig::standalone(), args.scale);
            assert!(out.verified, "{app:?} standalone failed verification");
            out
        } else {
            let trace = cached_trace_with(&args, app, BackendKind::None, 1);
            replay_outcome(&trace, app, BackendKind::None)
        };
        let (rt1, vm1) = rt_vm_outcomes(&args, app, 1);
        let (rt, vm) = rt_vm_outcomes(&args, app, procs);
        (app, solo, rt1, vm1, rt, vm)
    });
    for (app, solo, rt1, vm1, rt, vm) in cells {
        t.row(&[
            app.label().to_string(),
            fmt_f64(solo.exec_secs, 1),
            fmt_f64(rt1.exec_secs, 1),
            fmt_f64(vm1.exec_secs, 1),
            fmt_f64(rt.exec_secs, 1),
            fmt_f64(vm.exec_secs, 1),
            fmt_f64(rt.data_mb_total, 2),
            fmt_f64(vm.data_mb_total, 2),
        ]);
        apps_json.push(Json::obj([
            ("app", Json::str(app.label())),
            ("standalone_secs", Json::F64(solo.exec_secs)),
            ("rt_1p_secs", Json::F64(rt1.exec_secs)),
            ("vm_1p_secs", Json::F64(vm1.exec_secs)),
            ("rt_secs", Json::F64(rt.exec_secs)),
            ("vm_secs", Json::F64(vm.exec_secs)),
            ("rt_data_mb", Json::F64(rt.data_mb_total)),
            ("vm_data_mb", Json::F64(vm.data_mb_total)),
        ]));
    }
    println!("{t}");
    println!("\nPaper reference points: water uniprocessor RT 110.1 s, VM 109.1 s,");
    println!("standalone 104.2 s. At eight processors the paper finds VM ahead only");
    println!("for quicksort; water, sor and cholesky run faster and move less data");
    println!("under RT-DSM; matrix shows only a minor difference.");

    let mut pairs = args.meta_json("fig2");
    pairs.push(("apps".to_string(), Json::Arr(apps_json)));
    args.emit("fig2", &Json::Obj(pairs));
}
