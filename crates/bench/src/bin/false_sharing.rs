//! Ablation A5: the false-sharing microbenchmark.
//!
//! Two processors each own one word, and the two words are adjacent —
//! deliberately placed in the same virtual-memory page. Each round, a
//! processor updates its own word (under its own lock) and reads its
//! neighbour's (under the neighbour's lock). Under RT-DSM the coherency
//! unit is a word-sized cache line, so each transfer ships four bytes.
//! Under VM-DSM the page-granularity machinery pays a write fault, a
//! whole-page diff and a protection call per round — the paper's point
//! that "mechanisms to handle false sharing can increase runtime overhead".

use midway_bench::BenchArgs;
use midway_core::{BackendKind, Counters, Midway, MidwayConfig, Proc, SystemBuilder};
use midway_stats::{fmt_f64, fmt_u64, TextTable};

fn main() {
    let args = BenchArgs::parse();
    let rounds = 200u32;
    println!("== False-sharing microbenchmark: adjacent words, {rounds} rounds ==\n");
    let mut t = TextTable::new(&[
        "system",
        "exec (ms)",
        "data (KB)",
        "faults",
        "pages diffed",
        "dirtybits set",
        "lines scanned",
    ]);
    for backend in [BackendKind::Rt, BackendKind::Vm] {
        let mut b = SystemBuilder::new();
        // Two adjacent words, word-size cache lines, same page.
        let words = b.shared_array::<u32>("words", 2, 1);
        let locks = [
            b.lock(vec![words.range(0..1)]),
            b.lock(vec![words.range(1..2)]),
        ];
        let done = b.barrier(vec![]);
        let spec = b.build();
        let cfg = MidwayConfig::new(2, backend);
        let run = Midway::run(cfg, &spec, |p: &mut Proc| {
            let me = p.id();
            let other = 1 - me;
            let mut sum = 0u64;
            for round in 0..rounds {
                p.acquire(locks[me]);
                p.write(&words, me, round + 1);
                p.release(locks[me]);
                p.acquire_shared(locks[other]);
                sum += p.read(&words, other) as u64;
                p.release_shared(locks[other]);
            }
            p.barrier(done);
            sum
        })
        .unwrap();
        let avg = Counters::average(&run.counters);
        t.row(&[
            format!("{backend:?}"),
            fmt_f64(run.cfg.cost.cycles_to_millis(run.finish_time.cycles()), 1),
            fmt_f64(avg.avg(|c| c.data_bytes_sent) / 1024.0, 1),
            fmt_u64(avg.totals().write_faults),
            fmt_u64(avg.totals().pages_diffed),
            fmt_u64(avg.totals().dirtybits_set),
            fmt_u64(avg.totals().clean_dirtybits_read + avg.totals().dirty_dirtybits_read),
        ]);
    }
    println!("{t}");
    println!("Reading: RT's per-word lines make the exchange four bytes per round;");
    println!("VM's 4 KB coherency machinery re-faults, re-twins and re-diffs the");
    println!("shared page every round even though a single word changed.");

    args.emit_tables("false_sharing", &[("table", &t)]);
}
