//! Ablation A3: RT-DSM write detection for *untargetted* models (§3.5).
//!
//! An untargetted model (release consistency) must scan every cached line
//! at a synchronization point. This harness costs the paper's three
//! schemes — flat dirtybits, two-level dirtybits, and an update queue —
//! over synthetic write traces of varying density, reproducing the §3.5
//! claims: the queue "keeps the cost of write detection proportional to
//! the amount of dirty data, rather than the amount of shared data"; the
//! two-level scheme adds one store (~10%) to the write path and skips
//! clean groups at collection.

use midway_bench::{BenchArgs, Json};
use midway_proto::untargetted::{simulate, RtVariant};
use midway_sim::SplitMix64;
use midway_stats::{fmt_u64, CostModel, TextTable};

fn trace(kind: &str, lines: usize, writes: usize, rng: &mut SplitMix64) -> Vec<usize> {
    match kind {
        // One hot sequential region (the queue's best case).
        "sequential" => (0..writes).map(|i| i % lines).collect(),
        // Uniformly scattered single writes.
        "scattered" => (0..writes)
            .map(|_| rng.next_below(lines as u64) as usize)
            .collect(),
        // A few hot lines rewritten many times (amortization case).
        "hotspot" => (0..writes).map(|_| (rng.next_below(64)) as usize).collect(),
        _ => unreachable!(),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let mut pairs = args.meta_json("ablation_rt_variants");
    let cost = CostModel::r3000_mach();
    let lines = 1 << 20; // 1 Mi cache lines of shared space
    println!("== Ablation: §3.5 RT variants for untargetted models ==");
    println!(
        "shared space: {} cache lines; costs in cycles\n",
        fmt_u64(lines as u64)
    );

    for density in [100usize, 10_000, 1_000_000] {
        let mut t = TextTable::new(&[
            "trace",
            "variant",
            "trap",
            "collect",
            "total",
            "dirty lines",
            "queue entries",
        ])
        .left_cols(2);
        for kind in ["sequential", "scattered", "hotspot"] {
            let mut rng = SplitMix64::new(0xAB1E);
            let writes = trace(kind, lines, density, &mut rng);
            for variant in [
                RtVariant::Plain,
                RtVariant::TwoLevel { group: 64 },
                RtVariant::Queue,
            ] {
                let c = simulate(variant, lines, &writes, &cost);
                t.row(&[
                    kind.to_string(),
                    variant.label().to_string(),
                    fmt_u64(c.trap_cycles),
                    fmt_u64(c.collect_cycles),
                    fmt_u64(c.total()),
                    fmt_u64(c.dirty_lines),
                    if matches!(variant, RtVariant::Queue) {
                        fmt_u64(c.queue_entries)
                    } else {
                        "-".to_string()
                    },
                ]);
            }
            t.separator();
        }
        println!("-- {} writes --", fmt_u64(density as u64));
        println!("{t}");
        pairs.push((format!("writes_{density}"), Json::table(&t)));
    }
    println!("Reading: with sparse writes the flat scan pays for the whole shared");
    println!("space; two-level skips clean groups; the queue is proportional to the");
    println!("dirty data. With dense writes the flat array's 9-cycle traps win and");
    println!("the queue's tripled write path dominates — matching §3.5.");

    args.emit("ablation_rt_variants", &Json::Obj(pairs));
}
