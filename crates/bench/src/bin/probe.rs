//! Wall-clock probe: how long does each paper-scale run take on the host?

use std::time::Instant;

use midway_apps::{run_app, AppKind, Scale};
use midway_core::{BackendKind, MidwayConfig};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("medium") => Scale::Medium,
        Some("small") => Scale::Small,
        _ => Scale::Paper,
    };
    for kind in AppKind::all() {
        for backend in [BackendKind::Rt, BackendKind::Vm] {
            let t0 = Instant::now();
            let out = run_app(kind, MidwayConfig::new(8, backend), scale);
            let avg = midway_core::Counters::average(&out.counters);
            println!(
                "{:10} {:8} host {:6.1}s | sim {:8.1}s  data {:7.2} MB  msgs {:8}  verified {}",
                kind.label(),
                format!("{backend:?}"),
                t0.elapsed().as_secs_f64(),
                out.exec_secs,
                out.data_mb_total,
                out.messages,
                out.verified
            );
            if std::env::args().any(|a| a == "-v") {
                println!(
                    "    set {:9.0} miscl {:4.0} clean {:9.0} dirty {:9.0} upd {:9.0} | faults {:7.0} diffed {:7.0} prot {:7.0} twinKB {:7.0} fulls {:6.0}",
                    avg.avg(|c| c.dirtybits_set),
                    avg.avg(|c| c.dirtybits_misclassified),
                    avg.avg(|c| c.clean_dirtybits_read),
                    avg.avg(|c| c.dirty_dirtybits_read),
                    avg.avg(|c| c.dirtybits_updated),
                    avg.avg(|c| c.write_faults),
                    avg.avg(|c| c.pages_diffed),
                    avg.avg(|c| c.pages_write_protected),
                    avg.avg(|c| c.twin_bytes_updated) / 1024.0,
                    avg.avg(|c| c.full_data_sends),
                );
            }
        }
    }
}
