//! Wall-clock probe: how long does each run take on the host?
//!
//! Always runs the applications live (its purpose is to measure host
//! cost), and also times a trace record + replay per configuration so the
//! trace-driven speedup of the other harnesses can be quantified
//! (`--no-replay` skips that part).

use std::time::Instant;

use midway_apps::AppKind;
use midway_bench::{BenchArgs, Json};
use midway_core::{BackendKind, Counters, MidwayConfig};
use midway_replay::{record_app, verify_replay};

fn main() {
    let args = BenchArgs::parse();
    let time_replay = !args.flag("--no-replay");
    let mut rows = Vec::new();
    for kind in AppKind::all() {
        for backend in [BackendKind::Rt, BackendKind::Vm] {
            let cfg = MidwayConfig::new(args.procs, backend);
            let t0 = Instant::now();
            let (out, trace) = record_app(kind, cfg, args.scale);
            let live_secs = t0.elapsed().as_secs_f64();
            let replay_secs = time_replay.then(|| {
                let t1 = Instant::now();
                verify_replay(&trace).unwrap_or_else(|d| panic!("replay diverged: {d}"));
                t1.elapsed().as_secs_f64()
            });
            let avg = Counters::average(&out.counters);
            print!(
                "{:10} {:8} host {:6.1}s",
                kind.label(),
                backend.label(),
                live_secs
            );
            if let Some(r) = replay_secs {
                print!(" replay {r:6.1}s ({:4.1}x)", live_secs / r.max(1e-9));
            }
            println!(
                " | sim {:8.1}s  data {:7.2} MB  msgs {:8}  verified {}",
                out.exec_secs, out.data_mb_total, out.messages, out.verified
            );
            if args.flag("-v") {
                println!(
                    "    set {:9.0} miscl {:4.0} clean {:9.0} dirty {:9.0} upd {:9.0} | faults {:7.0} diffed {:7.0} prot {:7.0} twinKB {:7.0} fulls {:6.0}",
                    avg.avg(|c| c.dirtybits_set),
                    avg.avg(|c| c.dirtybits_misclassified),
                    avg.avg(|c| c.clean_dirtybits_read),
                    avg.avg(|c| c.dirty_dirtybits_read),
                    avg.avg(|c| c.dirtybits_updated),
                    avg.avg(|c| c.write_faults),
                    avg.avg(|c| c.pages_diffed),
                    avg.avg(|c| c.pages_write_protected),
                    avg.avg(|c| c.twin_bytes_updated) / 1024.0,
                    avg.avg(|c| c.full_data_sends),
                );
            }
            rows.push(Json::obj([
                ("app", Json::str(kind.label())),
                ("backend", Json::str(backend.cli_name())),
                ("host_secs", Json::F64(live_secs)),
                (
                    "replay_secs",
                    replay_secs.map(Json::F64).unwrap_or(Json::Null),
                ),
                ("sim_secs", Json::F64(out.exec_secs)),
                ("data_mb", Json::F64(out.data_mb_total)),
                ("messages", Json::U64(out.messages)),
                ("verified", Json::Bool(out.verified)),
            ]));
        }
    }
    let mut pairs = args.meta_json("probe");
    pairs.push(("runs".to_string(), Json::Arr(rows)));
    args.emit("probe", &Json::Obj(pairs));
}
