//! The cross-backend differential fuzzer CLI.
//!
//! Generates seeded random entry-consistency schedules and runs each on
//! every applicable backend (all six when the seed's shape is
//! single-processor, the five data-moving ones otherwise), asserting
//! identical final-memory digests, schedule-determined counters, clean
//! dynamic-checker reports, and bit-exact reruns. Any divergence is
//! shrunk while it still reproduces and printed as a replayable
//! schedule, and the process exits nonzero.
//!
//! A second mode (`--mutants`) proves the planted-bug side: for each
//! `MutantKind`, schedules are mutated until the dynamic checker flags
//! the expected finding on the expected processor, and the reproducer is
//! shrunk and printed.
//!
//! Flags:
//!
//! * `--seeds N` — differential seeds to sweep (default 500).
//! * `--start N` — first seed (default 0); the sweep covers
//!   `start..start+seeds`.
//! * `--seed N` — replay exactly one seed (prints the schedule).
//! * `--mutants` — run the planted-mutant proof instead.
//! * `--smoke` — the CI gate: a short differential sweep that still
//!   crosses all six backends, plus one planted mutant of each kind.

use std::process::ExitCode;

use midway_apps::fuzz::{apply_mutation, catch_mutant, differential, shrink, FuzzParams, Schedule};
use midway_apps::mutants::MutantKind;
use midway_bench::BenchArgs;

/// Sweeps `start..start+count` and reports divergences; returns the
/// number of failing seeds.
fn sweep(start: u64, count: u64, verbose: bool) -> u64 {
    let mut failures = 0;
    for seed in start..start + count {
        let s = Schedule::generate(seed, FuzzParams::for_seed(seed));
        assert!(
            s.validate(),
            "seed {seed}: generator emitted an invalid schedule"
        );
        let divergences = differential(&s);
        if divergences.is_empty() {
            if verbose || (seed + 1) % 50 == 0 {
                eprintln!(
                    "seed {seed}: ok ({} ops, {} procs)",
                    s.op_count(),
                    s.params.procs
                );
            }
            continue;
        }
        failures += 1;
        println!("== seed {seed} DIVERGED ==");
        for d in &divergences {
            println!("  {d}");
        }
        // Shrink while any divergence reproduces, then print the
        // replayable reproducer.
        let small = shrink(&s, &|c| !differential(c).is_empty(), 300);
        println!("minimized reproducer ({} ops):", small.op_count());
        println!("{small}");
    }
    failures
}

/// Proves each mutant kind is caught; returns the kinds that were not.
fn prove_mutants(max_seeds: u64) -> Vec<MutantKind> {
    let mut missed = Vec::new();
    for kind in MutantKind::ALL {
        match catch_mutant(kind, max_seeds) {
            Some((seed, small)) => {
                println!(
                    "{}: caught at seed {seed}, minimized to {} ops",
                    kind.label(),
                    small.op_count()
                );
                println!("{small}");
            }
            None => {
                println!(
                    "{}: NOT caught within {max_seeds} seeds — checker or planting regressed",
                    kind.label()
                );
                missed.push(kind);
            }
        }
    }
    missed
}

fn main() -> ExitCode {
    let args = BenchArgs::parse();
    let smoke = args.flag("--smoke");
    let num = |flag: &str| -> Option<u64> {
        args.value(flag).map(|s| {
            s.parse()
                .unwrap_or_else(|_| panic!("{flag} takes a number"))
        })
    };

    if let Some(seed) = num("--seed") {
        let s = Schedule::generate(seed, FuzzParams::for_seed(seed));
        println!("{s}");
        if args.flag("--mutants") {
            for kind in MutantKind::ALL {
                if let Some(m) = apply_mutation(&s, kind, seed) {
                    println!("with {} planted:\n{m}", kind.label());
                }
            }
            return ExitCode::SUCCESS;
        }
        let divergences = differential(&s);
        for d in &divergences {
            println!("  {d}");
        }
        return if divergences.is_empty() {
            println!("seed {seed}: backends agree");
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if args.flag("--mutants") {
        let missed = prove_mutants(num("--seeds").unwrap_or(50));
        return if missed.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // The sweep (smoke: 30 seeds starting at 0 — seeds 9, 19 and 29 are
    // single-processor, so the standalone backend is in the matrix —
    // plus one planted mutant of each kind).
    let start = num("--start").unwrap_or(0);
    let count = num("--seeds").unwrap_or(if smoke { 30 } else { 500 });
    println!("== differential fuzz: seeds {start}..{} ==", start + count);
    let failures = sweep(start, count, args.flag("--verbose"));
    let mut missed = Vec::new();
    if smoke {
        println!("== planted mutants ==");
        missed = prove_mutants(25);
    }
    if failures == 0 && missed.is_empty() {
        println!("all {count} seeds agree across backends");
        ExitCode::SUCCESS
    } else {
        println!("{failures} seeds diverged");
        ExitCode::FAILURE
    }
}
