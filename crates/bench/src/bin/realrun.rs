//! Real-transport harness: runs applications over actual loopback
//! sockets — one OS thread per processor, wall-clock time — and
//! cross-validates each run against the deterministic simulator.
//!
//! For every app × backend cell the harness:
//!
//! 1. runs the application live on the real transport with recording on,
//! 2. asserts the application verified its own output,
//! 3. saves the recorded trace (`real-<app>-<scale>-<procs>p-<backend>-
//!    <mode>.mwt` in the trace cache), and
//! 4. replays the trace through the simulator's oracle
//!    ([`verify_real_trace`]): the simulator re-executes the recorded
//!    operation streams under virtual time and, for lock-order-independent
//!    applications, must reach bit-identical final memory.
//!
//! Flags beyond the shared [`BenchArgs`] set: `--app NAME|all` (default
//! all), `--backend NAME|all` (default all data-moving backends), `--mode
//! tcp|udp` (default tcp), `--loss PPM` (UDP injected drop/dup rate,
//! default 0), `--watchdog SECS` (default 120, `0` disables), and
//! `--smoke` (the CI short-cut: sor × rt,vm on TCP, overriding `--app`/
//! `--backend`).

use std::time::{Duration, Instant};

use midway_apps::{run_app_real, AppKind, Scale};
use midway_bench::{BenchArgs, Json};
use midway_core::{BackendKind, FaultPlan, MidwayConfig, RealConfig};
use midway_replay::{verify_real_trace, Trace};

fn parse_apps(args: &BenchArgs) -> Vec<AppKind> {
    match args.value("--app") {
        None | Some("all") => AppKind::all().to_vec(),
        Some(name) => vec![AppKind::all()
            .into_iter()
            .find(|k| k.label() == name)
            .unwrap_or_else(|| panic!("unknown app {name:?} (use a paper app name or all)"))],
    }
}

fn parse_backends(args: &BenchArgs) -> Vec<BackendKind> {
    match args.value("--backend") {
        None | Some("all") => BackendKind::DATA.to_vec(),
        Some(name) => {
            vec![BackendKind::from_cli_name(name).unwrap_or_else(|e| panic!("{e}"))]
        }
    }
}

fn real_config(args: &BenchArgs) -> (RealConfig, &'static str) {
    let loss_ppm: u32 = args
        .value("--loss")
        .map(|s| s.parse().expect("--loss takes a rate in parts-per-million"))
        .unwrap_or(0);
    let (mut real, mode) = match args.value("--mode") {
        None | Some("tcp") => {
            assert!(loss_ppm == 0, "--loss requires --mode udp");
            (RealConfig::tcp(), "tcp")
        }
        Some("udp") => {
            let plan = FaultPlan::seeded(0xD5).drop_ppm(loss_ppm).dup_ppm(loss_ppm);
            (RealConfig::udp(plan), "udp")
        }
        Some(other) => panic!("unknown mode {other:?} (use tcp|udp)"),
    };
    if let Some(secs) = args.value("--watchdog") {
        let secs: u64 = secs.parse().expect("--watchdog takes seconds");
        real = real.watchdog((secs > 0).then(|| Duration::from_secs(secs)));
    }
    (real, mode)
}

fn main() {
    let args = BenchArgs::parse();
    let (real, mode) = real_config(&args);
    let smoke = args.flag("--smoke");
    let (apps, backends, scale, procs) = if smoke {
        (
            vec![AppKind::Sor],
            vec![BackendKind::Rt, BackendKind::Vm],
            Scale::Small,
            4,
        )
    } else {
        (
            parse_apps(&args),
            parse_backends(&args),
            args.scale,
            args.procs,
        )
    };

    println!("== real-transport runs ({mode}) ==");
    println!("scale: {scale:?}, processors: {procs}");
    println!();

    let mut rows = Vec::new();
    for kind in &apps {
        for backend in &backends {
            let (kind, backend) = (*kind, *backend);
            let cfg = MidwayConfig::new(procs, backend).record(true);
            let t0 = Instant::now();
            let out = run_app_real(kind, cfg, &real, scale)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", kind.label(), backend.label()));
            let host_secs = t0.elapsed().as_secs_f64();
            assert!(
                out.verified,
                "{} failed verification under {} on the real transport",
                kind.label(),
                backend.label()
            );

            let trace = Trace::from_outcome(&out, scale);
            // Under `real/`, not the cache root: a real-transport trace
            // records wall-clock-derived times, so it must never be picked
            // up by the bit-for-bit `replay --check` gates that sweep the
            // simulator's trace cache.
            let path = args.trace_dir.join("real").join(format!(
                "{}-{}-{}p-{}-{mode}.mwt",
                kind.label(),
                scale.label(),
                procs,
                backend.cli_name()
            ));
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).expect("creating trace directory");
            }
            trace
                .save(&path)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));

            let strict = kind.lock_order_independent();
            let check = verify_real_trace(&trace, &out.store_digests, strict).unwrap_or_else(|d| {
                panic!(
                    "{} under {}: simulator oracle rejected the real run: {d}",
                    kind.label(),
                    backend.label()
                )
            });

            println!(
                "{:10} {:10} host {:6.2}s  {:8} ops  real msgs {:7}  sim msgs {:7}  digests {}",
                kind.label(),
                backend.label(),
                host_secs,
                check.total_ops,
                check.real_messages,
                check.sim_messages,
                if check.digests_checked {
                    "match"
                } else {
                    "replay-only"
                },
            );
            rows.push(Json::obj([
                ("app", Json::str(kind.label())),
                ("backend", Json::str(backend.cli_name())),
                ("mode", Json::str(mode)),
                ("host_secs", Json::F64(host_secs)),
                ("verified", Json::Bool(out.verified)),
                ("total_ops", Json::U64(check.total_ops as u64)),
                ("real_messages", Json::U64(check.real_messages)),
                ("sim_messages", Json::U64(check.sim_messages)),
                ("sim_finish_cycles", Json::U64(check.sim_finish_cycles)),
                ("digests_checked", Json::Bool(check.digests_checked)),
                ("trace", Json::str(path.display().to_string())),
            ]));
        }
    }

    // Not `meta_json`: `--smoke` overrides the scale and processor count,
    // so report the values the runs actually used.
    let mut pairs = vec![
        ("harness".to_string(), Json::str("realrun")),
        ("scale".to_string(), Json::str(scale.label())),
        ("procs".to_string(), Json::U64(procs as u64)),
        ("mode".to_string(), Json::str(mode)),
    ];
    pairs.push(("runs".to_string(), Json::Arr(rows)));
    args.emit("realrun", &Json::Obj(pairs));
}
