//! Table 5: total memory references incurred for write detection.
//!
//! "All counts are in units of 1000 and are per-processor averages."

use midway_bench::{banner, run_suite, BenchArgs};
use midway_core::{report, BackendKind, Counters};
use midway_stats::{fmt_f64, CostModel, TextTable};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Table 5: memory references for write detection (x1000)",
        &args,
    );
    let suite = run_suite(&args);
    let cost = CostModel::r3000_mach();

    let headers: Vec<String> = ["System", "Operation"]
        .iter()
        .map(|s| s.to_string())
        .chain(suite.iter().map(|s| s.app.label().to_string()))
        .collect();
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TextTable::new(&headers).left_cols(2);

    let rt: Vec<(f64, f64)> = suite
        .iter()
        .map(|s| {
            report::memory_refs_thousands(
                BackendKind::Rt,
                &Counters::average(&s.rt.counters),
                &cost,
            )
        })
        .collect();
    let vm: Vec<(f64, f64)> = suite
        .iter()
        .map(|s| {
            report::memory_refs_thousands(
                BackendKind::Vm,
                &Counters::average(&s.vm.counters),
                &cost,
            )
        })
        .collect();

    let push = |t: &mut TextTable, sys: &str, op: &str, vals: Vec<String>| {
        let mut cells = vec![sys.to_string(), op.to_string()];
        cells.extend(vals);
        t.row(&cells);
    };
    let f = |v: f64| fmt_f64(v, 0);
    push(
        &mut t,
        "RT-DSM",
        "write trapping",
        rt.iter().map(|(a, _)| f(*a)).collect(),
    );
    push(
        &mut t,
        "",
        "write collection",
        rt.iter().map(|(_, b)| f(*b)).collect(),
    );
    push(
        &mut t,
        "",
        "Total",
        rt.iter().map(|(a, b)| f(a + b)).collect(),
    );
    t.separator();
    push(
        &mut t,
        "VM-DSM",
        "write trapping",
        vm.iter().map(|(a, _)| f(*a)).collect(),
    );
    push(
        &mut t,
        "",
        "write collection",
        vm.iter().map(|(_, b)| f(*b)).collect(),
    );
    push(
        &mut t,
        "",
        "Total",
        vm.iter().map(|(a, b)| f(a + b)).collect(),
    );
    t.separator();
    push(
        &mut t,
        "",
        "RT-DSM memory reference advantage",
        rt.iter()
            .zip(&vm)
            .map(|((ra, rb), (va, vb))| f(va + vb - ra - rb))
            .collect(),
    );
    println!("{t}");
    println!("\nPaper Table 5 totals (8 procs, paper inputs), for comparison:");
    println!("RT:   139 / 576 / 529 /   875 /  5,788");
    println!("VM: 1,278 / 521 / 512 / 2,656 / 13,439");

    args.emit_tables("table5", &[("table", &t)]);
}
