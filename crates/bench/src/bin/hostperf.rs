//! Host-performance baseline: how fast does the *simulator itself* run?
//!
//! Every other harness reports virtual-time results; this one times the
//! host. It runs a fixed basket of live application runs (the standard
//! eight-processor cluster, paper scale) and a set of memory hot-path
//! microbenchmarks (page diff, dirtybit scan, store digest), reporting
//! wall-clock seconds, events delivered per second, and diffed bytes per
//! second — the perf trajectory the repo tracks across PRs.
//!
//! Flags beyond the standard [`BenchArgs`] set:
//!
//! * `--emit-baseline` — also write `results/hostperf_baseline.txt`, a
//!   flat `key value` file capturing this build's numbers as the baseline
//!   for later runs;
//! * `--baseline FILE` — read a previously emitted baseline (default
//!   `results/hostperf_baseline.txt` when it exists) and include per-cell
//!   speedups in the output;
//! * `--reps N` — repetitions per cell, minimum taken (default 3);
//! * `--smoke` — small scale, one rep, reduced micro sizes: the CI gate
//!   that the harness itself works;
//! * `--gate FILE` — regression gate: read a previously committed
//!   `BENCH_hostperf.json`, compute the geometric-mean speedup of this
//!   run's cells over its recorded `host_secs`, and exit non-zero if the
//!   geomean drops below [`GATE_THRESHOLD`]. The committed numbers are
//!   min-of-several-reps on a quiet host while the gate typically runs at
//!   one rep mid-CI, so the threshold must absorb genuine host drift
//!   (~15% observed within a session, more across sessions) and is set
//!   to catch structural hot-path regressions, not noise.
//!
//! Besides wall-clock numbers, every cell reports *attribution counters*
//! from the engine itself: scheduler rendezvous vs batched deliveries,
//! calendar-ring vs overflow-heap pops, batch deques recycled, and
//! detector buffer-pool hits/misses — which layer of the host-perf work
//! is buying what.
//!
//! The default output path is `BENCH_hostperf.json` at the repository
//! root (override with `--out`).

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use midway_apps::{run_app, AppKind, Scale};
use midway_bench::{BenchArgs, Json};
use midway_core::{BackendKind, MidwayConfig};
use midway_mem::diff::PageDiff;
use midway_mem::{DirtyBits, LayoutBuilder, LocalStore, MemClass, PAGE_SIZE};
use midway_stats::{fmt_f64, TextTable};

/// The fixed basket: every cell is a standard harness configuration
/// (live run, eight processors at the default `--procs`). Water and
/// quicksort are the lock-heavy applications; sor and matrix are
/// barrier-partitioned; cholesky mixes both.
const BASKET: [(AppKind, BackendKind); 8] = [
    (AppKind::Water, BackendKind::Rt),
    (AppKind::Water, BackendKind::Vm),
    (AppKind::Quicksort, BackendKind::Rt),
    (AppKind::Quicksort, BackendKind::Vm),
    (AppKind::Sor, BackendKind::Rt),
    (AppKind::Sor, BackendKind::Vm),
    (AppKind::Cholesky, BackendKind::Rt),
    (AppKind::Matmul, BackendKind::Vm),
];

struct Cell {
    app: AppKind,
    backend: BackendKind,
    host_secs: f64,
    events: u64,
    diffed_bytes: u64,
    sim_secs: f64,
    sched: midway_core::SchedStats,
    pool_hits: u64,
    pool_misses: u64,
}

impl Cell {
    fn key(&self) -> String {
        format!("{}-{}", self.app.label(), self.backend.cli_name())
    }
}

/// One micro measurement: a label and a throughput in bytes/second
/// (lines/second for the scan rows).
struct Micro {
    label: &'static str,
    per_sec: f64,
    unit: &'static str,
}

fn time_cell(app: AppKind, backend: BackendKind, procs: usize, scale: Scale, reps: usize) -> Cell {
    let mut best = f64::INFINITY;
    let mut events = 0;
    let mut diffed_bytes = 0;
    let mut sim_secs = 0.0;
    let mut sched = midway_core::SchedStats::default();
    let mut pool_hits = 0;
    let mut pool_misses = 0;
    for _ in 0..reps.max(1) {
        let cfg = MidwayConfig::new(procs, backend);
        let t0 = Instant::now();
        let out = run_app(app, cfg, scale);
        let secs = t0.elapsed().as_secs_f64();
        assert!(
            out.verified,
            "{app:?} under {backend:?} failed verification"
        );
        best = best.min(secs);
        events = out.messages;
        sim_secs = out.exec_secs;
        diffed_bytes = out
            .counters
            .iter()
            .map(|c| c.pages_diffed * PAGE_SIZE as u64)
            .sum();
        // Attribution counters are deterministic per configuration, so any
        // rep's snapshot is the run's snapshot.
        sched = out.sched;
        pool_hits = out.alloc.iter().map(|&(h, _)| h).sum();
        pool_misses = out.alloc.iter().map(|&(_, m)| m).sum();
    }
    Cell {
        app,
        backend,
        host_secs: best,
        events,
        diffed_bytes,
        sim_secs,
        sched,
        pool_hits,
        pool_misses,
    }
}

/// Times `f` over `iters` calls and returns units-per-second given the
/// per-call unit count.
fn throughput(iters: usize, units_per_call: f64, mut f: impl FnMut()) -> f64 {
    // One warmup call keeps lazy allocation out of the timed region.
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    units_per_call * iters as f64 / t0.elapsed().as_secs_f64().max(1e-12)
}

fn micro_suite(smoke: bool) -> Vec<Micro> {
    let iters = if smoke { 50 } else { 2_000 };
    let page = PAGE_SIZE;
    let mut out = Vec::new();

    // Page diffing: identical pages (the fast path collection hits on
    // clean data), a dense writer (every word changed) and a sparse one
    // (every 16th word) — the fragmentation endpoints of Table 1.
    let twin = vec![0u8; page];
    let identical = twin.clone();
    let mut dense = twin.clone();
    for (i, b) in dense.iter_mut().enumerate() {
        *b = (i % 251) as u8 + 1;
    }
    let mut sparse = twin.clone();
    for i in (0..page).step_by(64) {
        sparse[i] = 0xAB;
    }
    for (label, cur) in [
        ("diff_identical", &identical),
        ("diff_dense", &dense),
        ("diff_sparse", &sparse),
    ] {
        out.push(Micro {
            label,
            per_sec: throughput(iters, page as f64, || {
                std::hint::black_box(PageDiff::compute(std::hint::black_box(cur), &twin));
            }),
            unit: "bytes",
        });
    }
    out.push(Micro {
        label: "diff_reference_dense",
        per_sec: throughput(iters, page as f64, || {
            std::hint::black_box(PageDiff::compute_reference(
                std::hint::black_box(&dense),
                &twin,
            ));
        }),
        unit: "bytes",
    });

    // Dirtybit scan: a mostly-clean array with a sprinkling of dirty and
    // freshly-stamped lines, the shape a barrier-partition scan sees.
    let lines = if smoke { 4_096 } else { 65_536 };
    let mut bits = DirtyBits::new(lines);
    for line in (0..lines).step_by(97) {
        bits.mark(line);
    }
    for line in (1..lines).step_by(193) {
        bits.stamp(line, 50);
    }
    let snapshot = bits.clone();
    out.push(Micro {
        label: "dirtybit_scan",
        per_sec: throughput(iters, lines as f64, || {
            bits.clone_from(&snapshot);
            std::hint::black_box(bits.scan(0..lines, 10, 99));
        }),
        unit: "lines",
    });
    out.push(Micro {
        label: "dirtybit_scan_reference",
        per_sec: throughput(iters, lines as f64, || {
            bits.clone_from(&snapshot);
            std::hint::black_box(bits.scan_reference(0..lines, 10, 99));
        }),
        unit: "lines",
    });

    // Store digest: a few regions, one written densely, one sparsely,
    // one untouched (the unmaterialized fast path).
    let mb = if smoke { 1usize } else { 8 };
    let mut b = LayoutBuilder::new();
    let dense_r = b.alloc("dense", mb << 20, MemClass::Shared, 6);
    let sparse_r = b.alloc("sparse", mb << 20, MemClass::Shared, 6);
    b.alloc("untouched", mb << 20, MemClass::Shared, 6);
    let layout = b.build();
    let mut store = LocalStore::new(layout);
    for off in (0..(mb << 20)).step_by(8) {
        store.write_u64(dense_r.addr + off as u64, off as u64 | 1);
    }
    for off in (0..(mb << 20)).step_by(4096) {
        store.write_u64(sparse_r.addr + off as u64, 7);
    }
    let digest_iters = if smoke { 4 } else { 40 };
    out.push(Micro {
        label: "store_digest",
        per_sec: throughput(digest_iters, (3 * (mb << 20)) as f64, || {
            std::hint::black_box(store.digest());
        }),
        unit: "bytes",
    });
    out
}

/// Parses a previously emitted flat baseline file: `key value` lines.
fn load_baseline(path: &PathBuf) -> Option<HashMap<String, f64>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut map = HashMap::new();
    for line in text.lines() {
        let mut it = line.split_whitespace();
        if let (Some(k), Some(v)) = (it.next(), it.next()) {
            if let Ok(v) = v.parse::<f64>() {
                map.insert(k.to_string(), v);
            }
        }
    }
    Some(map)
}

fn main() {
    let mut args = BenchArgs::parse();
    let smoke = args.flag("--smoke");
    if smoke {
        args.scale = Scale::Small;
    }
    let reps: usize = args
        .value("--reps")
        .map(|s| s.parse().expect("--reps takes a number"))
        .unwrap_or(if smoke { 1 } else { 3 });
    let baseline_path = args
        .value("--baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/hostperf_baseline.txt"));
    println!("== Host performance: wall-clock cost of the simulator ==");
    println!(
        "scale: {:?}, processors: {}, reps: {reps}\n",
        args.scale, args.procs
    );

    let mut t = TextTable::new(&[
        "app",
        "backend",
        "host (s)",
        "events/s",
        "diffed MB/s",
        "sim (s)",
    ]);
    let mut cells = Vec::new();
    for (app, backend) in BASKET {
        eprintln!("timing {} under {} ...", app.label(), backend.label());
        let cell = time_cell(app, backend, args.procs, args.scale, reps);
        t.row(&[
            cell.app.label().to_string(),
            cell.backend.cli_name().to_string(),
            fmt_f64(cell.host_secs, 3),
            fmt_f64(cell.events as f64 / cell.host_secs.max(1e-12), 0),
            fmt_f64(
                cell.diffed_bytes as f64 / cell.host_secs.max(1e-12) / 1e6,
                1,
            ),
            fmt_f64(cell.sim_secs, 1),
        ]);
        cells.push(cell);
    }
    println!("{t}");

    // Per-layer attribution: what the event engine and the allocation
    // discipline actually did during each cell.
    let mut at = TextTable::new(&[
        "cell",
        "dispatches",
        "batched",
        "near pops",
        "far pops",
        "deques reused",
        "pool hit %",
    ]);
    for cell in &cells {
        let s = &cell.sched;
        let pool_total = cell.pool_hits + cell.pool_misses;
        at.row(&[
            cell.key(),
            s.dispatches.to_string(),
            s.batched.to_string(),
            s.near_pops.to_string(),
            s.far_pops.to_string(),
            s.deques_recycled.to_string(),
            if pool_total == 0 {
                "-".to_string()
            } else {
                fmt_f64(100.0 * cell.pool_hits as f64 / pool_total as f64, 1)
            },
        ]);
    }
    println!("{at}");

    let micro = micro_suite(smoke);
    let mut mt = TextTable::new(&["micro", "throughput"]);
    for m in &micro {
        let scaled = match m.unit {
            "bytes" => format!("{} MB/s", fmt_f64(m.per_sec / 1e6, 1)),
            _ => format!("{} Mlines/s", fmt_f64(m.per_sec / 1e6, 1)),
        };
        mt.row(&[m.label.to_string(), scaled]);
    }
    println!("{mt}");

    // The baseline is recorded at paper scale; comparing a smoke run
    // against it would manufacture absurd "speedups".
    let baseline = if smoke {
        None
    } else {
        load_baseline(&baseline_path)
    };
    let mut best_speedup: Option<(String, f64)> = None;
    let mut speedups = Vec::new();
    let mut cells_json = Vec::new();
    for cell in &cells {
        let mut pairs = vec![
            ("app".to_string(), Json::str(cell.app.label())),
            ("backend".to_string(), Json::str(cell.backend.cli_name())),
            ("host_secs".to_string(), Json::F64(cell.host_secs)),
            ("events".to_string(), Json::U64(cell.events)),
            (
                "events_per_sec".to_string(),
                Json::F64(cell.events as f64 / cell.host_secs.max(1e-12)),
            ),
            ("diffed_bytes".to_string(), Json::U64(cell.diffed_bytes)),
            (
                "diffed_bytes_per_sec".to_string(),
                Json::F64(cell.diffed_bytes as f64 / cell.host_secs.max(1e-12)),
            ),
            ("sim_secs".to_string(), Json::F64(cell.sim_secs)),
            (
                "attribution".to_string(),
                Json::obj([
                    ("dispatches", Json::U64(cell.sched.dispatches)),
                    ("batched", Json::U64(cell.sched.batched)),
                    ("near_pops", Json::U64(cell.sched.near_pops)),
                    ("far_pops", Json::U64(cell.sched.far_pops)),
                    ("deques_recycled", Json::U64(cell.sched.deques_recycled)),
                    ("pool_hits", Json::U64(cell.pool_hits)),
                    ("pool_misses", Json::U64(cell.pool_misses)),
                ]),
            ),
        ];
        if let Some(base) = baseline
            .as_ref()
            .and_then(|b| b.get(&format!("cell.{}.host_secs", cell.key())))
        {
            let speedup = base / cell.host_secs.max(1e-12);
            pairs.push(("baseline_host_secs".to_string(), Json::F64(*base)));
            pairs.push(("speedup".to_string(), Json::F64(speedup)));
            speedups.push(speedup);
            if best_speedup.as_ref().is_none_or(|(_, s)| speedup > *s) {
                best_speedup = Some((cell.key(), speedup));
            }
        }
        cells_json.push(Json::Obj(pairs));
    }
    let mut micro_json = Vec::new();
    for m in &micro {
        let mut pairs = vec![
            ("name".to_string(), Json::str(m.label)),
            (
                format!("{}_per_sec", m.unit.trim_end_matches('s')),
                Json::F64(m.per_sec),
            ),
        ];
        if let Some(base) = baseline
            .as_ref()
            .and_then(|b| b.get(&format!("micro.{}.per_sec", m.label)))
        {
            pairs.push(("baseline_per_sec".to_string(), Json::F64(*base)));
            pairs.push(("speedup".to_string(), Json::F64(m.per_sec / base)));
        }
        micro_json.push(Json::Obj(pairs));
    }

    let geomean = (!speedups.is_empty())
        .then(|| (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp());
    if let Some((key, speedup)) = &best_speedup {
        println!(
            "best end-to-end speedup vs baseline: {key} at {}x",
            fmt_f64(*speedup, 2)
        );
        if let Some(g) = geomean {
            println!(
                "geomean end-to-end speedup vs baseline: {}x over {} cells",
                fmt_f64(g, 3),
                speedups.len()
            );
        }
    } else if smoke {
        println!("(smoke run — baseline comparison skipped)");
    } else {
        println!(
            "(no baseline at {} — raw numbers only)",
            baseline_path.display()
        );
    }

    if args.flag("--emit-baseline") {
        let mut text = String::new();
        for cell in &cells {
            text.push_str(&format!(
                "cell.{}.host_secs {}\n",
                cell.key(),
                cell.host_secs
            ));
        }
        for m in &micro {
            text.push_str(&format!("micro.{}.per_sec {}\n", m.label, m.per_sec));
        }
        std::fs::create_dir_all("results").expect("creating results dir");
        std::fs::write(&baseline_path, text)
            .unwrap_or_else(|e| panic!("writing {}: {e}", baseline_path.display()));
        println!("baseline written to {}", baseline_path.display());
    }

    let mut pairs = args.meta_json("hostperf");
    pairs.push(("reps".to_string(), Json::U64(reps as u64)));
    pairs.push(("cells".to_string(), Json::Arr(cells_json)));
    pairs.push(("micro".to_string(), Json::Arr(micro_json)));
    if let Some((key, speedup)) = best_speedup {
        pairs.push((
            "best_speedup".to_string(),
            Json::obj([("cell", Json::str(key)), ("factor", Json::F64(speedup))]),
        ));
    }
    if let Some(g) = geomean {
        pairs.push(("geomean_speedup".to_string(), Json::F64(g)));
    }
    if args.out.is_none() {
        args.out = Some(PathBuf::from("BENCH_hostperf.json"));
    }
    let gate = args.value("--gate").map(PathBuf::from);
    args.emit("hostperf", &Json::Obj(pairs));

    if let Some(gate_path) = gate {
        assert!(
            !smoke,
            "--gate compares against full-scale committed numbers; do not combine with --smoke"
        );
        run_gate(&gate_path, &cells);
    }
}

/// Minimum acceptable geomean speedup over the committed numbers. A real
/// event-engine or hot-path regression costs 2-5x on the event-dense
/// cells; host drift between a quiet min-of-reps measurement and a
/// one-rep mid-CI run is ~15% (verified via the untouched byte-reference
/// micros moving in lockstep). 0.7 separates the two cleanly.
const GATE_THRESHOLD: f64 = 0.7;

/// Regression gate: compares this run's cells against the `host_secs`
/// recorded in a previously committed `BENCH_hostperf.json` and exits
/// non-zero if the geometric-mean speedup has dropped below
/// [`GATE_THRESHOLD`].
fn run_gate(gate_path: &PathBuf, cells: &[Cell]) {
    let text = std::fs::read_to_string(gate_path)
        .unwrap_or_else(|e| panic!("reading gate file {}: {e}", gate_path.display()));
    let json = Json::parse(&text)
        .unwrap_or_else(|e| panic!("parsing gate file {}: {e}", gate_path.display()));
    let mut committed = HashMap::new();
    for c in json.get("cells").map(Json::items).unwrap_or_default() {
        if let (Some(app), Some(backend), Some(secs)) = (
            c.get("app").and_then(Json::as_str),
            c.get("backend").and_then(Json::as_str),
            c.get("host_secs").and_then(Json::as_f64),
        ) {
            committed.insert(format!("{app}-{backend}"), secs);
        }
    }
    let mut ratios = Vec::new();
    for cell in cells {
        if let Some(base) = committed.get(&cell.key()) {
            ratios.push(base / cell.host_secs.max(1e-12));
        }
    }
    assert!(
        !ratios.is_empty(),
        "gate file {} shares no cells with this run",
        gate_path.display()
    );
    let geomean = (ratios.iter().map(|s| s.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!(
        "gate: geomean speedup vs {} = {}x over {} cells (threshold {GATE_THRESHOLD})",
        gate_path.display(),
        fmt_f64(geomean, 3),
        ratios.len()
    );
    if geomean < GATE_THRESHOLD {
        eprintln!("gate FAILED: this build is far slower than the committed hostperf numbers");
        std::process::exit(1);
    }
}
