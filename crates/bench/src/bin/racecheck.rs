//! Race-detection harness: the dynamic checker's clean-application
//! matrix, mutant detection table, and live-checking overhead probe.
//!
//! Every clean application must be finding-free on every data-moving
//! backend, and every seeded mutant must be detected with its planted
//! kind and provenance; the harness exits nonzero otherwise, so `ci.sh`
//! uses it as a smoke test. `--backend NAME` restricts the matrix to one
//! backend; `--overhead` times one live application with and without the
//! checker attached (the EXPERIMENTS.md number).

use std::process::ExitCode;
use std::time::Instant;

use midway_apps::mutants::{run_mutant, MutantKind};
use midway_apps::{run_app, AppKind};
use midway_bench::{banner, run_cells, BenchArgs};
use midway_core::{report, BackendKind, FindingKind, MidwayConfig};
use midway_stats::TextTable;

fn main() -> ExitCode {
    let args = BenchArgs::parse();
    banner("Race check: clean matrix and mutant detection", &args);
    let backends: Vec<BackendKind> = match args.value("--backend") {
        Some(name) => vec![BackendKind::from_cli_name(name).expect("--backend")],
        None => BackendKind::DATA.to_vec(),
    };
    let mut ok = true;

    // The zero-false-positive matrix: finding totals, all of which must
    // be zero (the checker's event count is shown so "clean" is visibly
    // not "idle").
    let headers: Vec<String> = ["app".to_string()]
        .into_iter()
        .chain(backends.iter().map(|b| b.cli_name().to_string()))
        .chain(["events".to_string()])
        .collect();
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut clean = TextTable::new(&headers).left_cols(1);
    // Every (app × backends) row is a live, isolated run: one cell per
    // app, rows joined in app order.
    let clean_rows = run_cells(args.jobs, AppKind::all().into_iter().collect(), |app| {
        let mut cells = vec![app.label().to_string()];
        let mut events = 0;
        let mut row_ok = true;
        for backend in &backends {
            let cfg = MidwayConfig::new(args.procs, *backend).check(true);
            let out = run_app(app, cfg, args.scale);
            assert!(out.verified, "{app:?} failed verification");
            let r = out.check.expect("checker ran");
            if !r.is_clean() {
                eprintln!(
                    "FALSE POSITIVE: {} under {}: {}",
                    app.label(),
                    backend.label(),
                    r.summary()
                );
                row_ok = false;
            }
            events = events.max(r.events);
            cells.push(r.total().to_string());
        }
        cells.push(events.to_string());
        (cells, row_ok)
    });
    for (cells, row_ok) in clean_rows {
        ok &= row_ok;
        clean.row(&cells);
    }
    println!("{clean}");

    // The true-positive table: per-kind finding counts, and whether the
    // planted bug was reported with its planted provenance.
    let kind_headers: Vec<&str> = ["mutant", "backend"]
        .into_iter()
        .chain(FindingKind::ALL.iter().map(|k| k.label()))
        .chain(["verdict"])
        .collect();
    let mut mutants = TextTable::new(&kind_headers).left_cols(2);
    let mutant_rows = run_cells(args.jobs, MutantKind::ALL.to_vec(), |kind| {
        let mut rows = Vec::new();
        let mut kind_ok = true;
        for backend in &backends {
            let (run, expect) = run_mutant(kind, MidwayConfig::new(args.procs, *backend));
            let r = run.check.expect("checker ran");
            let detected = r
                .first_of(expect.kind)
                .is_some_and(|f| f.proc == expect.proc && f.alloc.as_deref() == Some(expect.alloc));
            if !detected {
                eprintln!(
                    "MISSED MUTANT: {} under {}: wanted {:?} by proc {} in {:?}, got {}",
                    kind.label(),
                    backend.label(),
                    expect.kind,
                    expect.proc,
                    expect.alloc,
                    r.summary()
                );
                kind_ok = false;
            }
            let mut cells = vec![kind.label().to_string(), backend.cli_name().to_string()];
            cells.extend(
                report::check_counts(&r)
                    .iter()
                    .take(FindingKind::ALL.len())
                    .map(|(_, n)| n.to_string()),
            );
            cells.push(if detected { "detected" } else { "MISSED" }.to_string());
            rows.push(cells);
        }
        (rows, kind_ok)
    });
    for (rows, kind_ok) in mutant_rows {
        ok &= kind_ok;
        for row in &rows {
            mutants.row(row);
        }
    }
    println!("{mutants}");

    if args.flag("--overhead") {
        let app = args
            .value("--app")
            .map(|s| {
                AppKind::all()
                    .into_iter()
                    .find(|k| k.label() == s)
                    .expect("--app")
            })
            .unwrap_or(AppKind::Sor);
        let backend = backends[0];
        let time = |check: bool| {
            let cfg = MidwayConfig::new(args.procs, backend).check(check);
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    let out = run_app(app, cfg, args.scale);
                    assert!(out.verified);
                    t0.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        };
        let plain = time(false);
        let checked = time(true);
        println!(
            "live-checking overhead: {} on {}: {plain:.2} s plain, {checked:.2} s checked \
             ({:+.1}% host time; virtual time identical by construction)",
            app.label(),
            backend.label(),
            (checked / plain - 1.0) * 100.0
        );
    }

    args.emit_tables("racecheck", &[("clean", &clean), ("mutants", &mutants)]);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
