//! The service-workload sweep: the three service applications (sharded
//! KV store, social graph, task queue) driven from idle to saturation.
//!
//! The load knob is `clients` — concurrent clients multiplexed onto each
//! processor. Per-op think time is `think_cycles / clients`, so one
//! client per processor is an idle service (long gaps between requests)
//! and sixteen is saturation (requests back to back). Total work is held
//! fixed across the sweep (`ops_per_client × clients` constant), so
//! cells are comparable: the same requests, packed ever more densely.
//! Reported per cell: modelled seconds, throughput in ops per modelled
//! second, messages, data per processor, and mean lock acquires — the
//! curve from idle to saturation shows where synchronization begins to
//! dominate service time.
//!
//! Flags beyond the standard [`BenchArgs`] set:
//!
//! * `--smoke` — the CI gate: small inputs, RT only, two processors,
//!   clients 1 and 4. Seconds, not minutes.
//! * `--procs N` — processors (default 8, the paper's cluster).
//! * `--clients-list 1,2,4,8,16` — client counts (default shown).
//! * `--apps kvstore,socialgraph,taskqueue` — applications.
//! * `--backends rt,vm,blast,twin-all,hybrid` — backends (default all
//!   five data-moving ones).
//! * `--find-knee` — after the sweep, binary-search the client count to
//!   the saturation knee per (app, backend): the smallest clients/proc
//!   whose client-perceived latency (`clients × finish_cycles /
//!   total_ops`) exceeds `--knee-factor` (default 2.0) times the
//!   one-client latency, probing up to `--knee-max` clients (default 64).
//!   The knee points land in a `knees` array in the JSON. Smoke runs
//!   always exercise the search (capped at 8 clients).
//!
//! The default output path is `BENCH_svc.json` at the repository root
//! (override with `--out`).

use std::path::PathBuf;
use std::time::Instant;

use midway_apps::{kvstore, socialgraph, taskqueue, AppKind};
use midway_bench::{BenchArgs, Json};
use midway_core::{BackendKind, Counters, MidwayConfig};
use midway_stats::{fmt_f64, TextTable};

struct Outcome {
    app: AppKind,
    backend: BackendKind,
    clients: usize,
    think_per_op: u64,
    total_ops: u64,
    host_secs: f64,
    sim_secs: f64,
    finish_cycles: u64,
    messages: u64,
    data_kb_per_proc: f64,
    avg_acquires: f64,
    verified: bool,
}

/// Reduces one run to the fields the sweep reports.
fn summarize<R>(
    run: midway_core::MidwayRun<R>,
    verified: bool,
) -> (Vec<Counters>, midway_core::VirtualTime, u64, f64, f64, bool) {
    let data_kb = run.data_kb_per_proc();
    let sim_secs = run.exec_secs();
    (
        run.counters,
        run.finish_time,
        run.messages,
        data_kb,
        sim_secs,
        verified,
    )
}

/// Runs one cell: `app` under `backend` with `clients` concurrent
/// clients per processor, total work fixed by `base_ops` (the
/// one-client ops-per-client budget).
fn run_cell(
    app: AppKind,
    backend: BackendKind,
    procs: usize,
    clients: usize,
    smoke: bool,
) -> Outcome {
    let cfg = MidwayConfig::new(procs, backend);
    let start = Instant::now();
    let (svc_base, r) = match app {
        AppKind::KvStore => {
            let mut p = if smoke {
                kvstore::Params::small()
            } else {
                kvstore::Params::paper()
            };
            let total = p.svc.clients * p.svc.ops_per_client;
            p.svc.clients = clients;
            p.svc.ops_per_client = (total / clients).max(1);
            let run = kvstore::run(cfg, p);
            let verified = kvstore::verified(&run.results);
            (p.svc, summarize(run, verified))
        }
        AppKind::SocialGraph => {
            let mut p = if smoke {
                socialgraph::Params::small()
            } else {
                socialgraph::Params::paper()
            };
            let total = p.svc.clients * p.svc.ops_per_client;
            p.svc.clients = clients;
            p.svc.ops_per_client = (total / clients).max(1);
            let run = socialgraph::run(cfg, p);
            let verified = socialgraph::verified(&run.results);
            (p.svc, summarize(run, verified))
        }
        AppKind::TaskQueue => {
            let mut p = if smoke {
                taskqueue::Params::small()
            } else {
                taskqueue::Params::paper()
            };
            let total = p.svc.clients * p.svc.ops_per_client;
            p.svc.clients = clients;
            p.svc.ops_per_client = (total / clients).max(1);
            let run = taskqueue::run(cfg, p);
            let verified = taskqueue::verified(&run.results);
            (p.svc, summarize(run, verified))
        }
        other => panic!("{other:?} is not a service application"),
    };
    let (counters, finish, messages, data_kb, sim_secs, verified) = r;
    let total_ops = (procs * svc_base.clients * svc_base.ops_per_client) as u64;
    Outcome {
        app,
        backend,
        clients,
        think_per_op: svc_base.think_per_op(),
        total_ops,
        host_secs: start.elapsed().as_secs_f64(),
        sim_secs,
        finish_cycles: finish.cycles(),
        messages,
        data_kb_per_proc: data_kb,
        avg_acquires: Counters::average(&counters).avg(|c| c.lock_acquires),
        verified,
    }
}

/// Client-perceived mean latency in cycles per op: `clients` concurrent
/// streams share each processor, so a stream observes the whole-proc op
/// rate divided by its share.
fn latency_cycles(o: &Outcome) -> f64 {
    o.clients as f64 * o.finish_cycles as f64 / (o.total_ops as f64).max(1.0)
}

/// One (app, backend) saturation point found by [`find_knee`].
struct Knee {
    app: AppKind,
    backend: BackendKind,
    base_latency: f64,
    target_latency: f64,
    /// Smallest probed client count at or past the target latency, if the
    /// search found one within `max_clients`.
    knee_clients: Option<usize>,
    /// Every `(clients, latency)` probe the search made, in probe order.
    probes: Vec<(usize, f64)>,
}

/// Binary-searches the smallest clients/proc whose client-perceived
/// latency reaches `factor ×` the one-client latency. Latency grows with
/// multiplexing once synchronization saturates, so bisection over the
/// client count converges on the knee with O(log max) runs.
fn find_knee(
    app: AppKind,
    backend: BackendKind,
    procs: usize,
    smoke: bool,
    factor: f64,
    max_clients: usize,
) -> Knee {
    let mut probes = Vec::new();
    let mut probe = |clients: usize| -> f64 {
        eprintln!(
            "knee probe: {} under {} at {clients} clients/proc ...",
            app.label(),
            backend.cli_name()
        );
        let o = run_cell(app, backend, procs, clients, smoke);
        assert!(o.verified, "knee probe failed verification");
        let lat = latency_cycles(&o);
        probes.push((clients, lat));
        lat
    };
    let base = probe(1);
    let target = factor * base;
    // Establish the bracket: if even `max_clients` stays under the
    // target, the service never saturates within range.
    let knee_clients = if probe(max_clients) < target {
        None
    } else {
        // Invariant: latency(lo) < target <= latency(hi).
        let (mut lo, mut hi) = (1usize, max_clients);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if probe(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    };
    Knee {
        app,
        backend,
        base_latency: base,
        target_latency: target,
        knee_clients,
        probes,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.flag("--smoke");

    let procs: usize = if smoke {
        2
    } else {
        args.value("--procs")
            .map(|s| s.parse().expect("--procs takes a number"))
            .unwrap_or(8)
    };
    let clients_list: Vec<usize> = if smoke {
        vec![1, 4]
    } else {
        match args.value("--clients-list") {
            None => vec![1, 2, 4, 8, 16],
            Some(s) => s
                .split(',')
                .map(|p| p.trim().parse().expect("--clients-list takes numbers"))
                .collect(),
        }
    };
    let apps: Vec<AppKind> = match args.value("--apps") {
        None => AppKind::service().to_vec(),
        Some(s) => s
            .split(',')
            .map(|raw| {
                let raw = raw.trim();
                AppKind::service()
                    .into_iter()
                    .find(|k| k.label() == raw)
                    .unwrap_or_else(|| panic!("unknown service app {raw:?}"))
            })
            .collect(),
    };
    let backends: Vec<BackendKind> = if smoke {
        vec![BackendKind::Rt]
    } else {
        match args.value("--backends") {
            None => BackendKind::DATA.to_vec(),
            Some(s) => s
                .split(',')
                .map(|raw| {
                    let raw = raw.trim();
                    BackendKind::ALL
                        .into_iter()
                        .find(|b| b.cli_name() == raw)
                        .unwrap_or_else(|| panic!("unknown backend {raw:?}"))
                })
                .collect(),
        }
    };

    println!("== service sweep ==");
    println!(
        "procs: {procs}, clients: {clients_list:?}, inputs: {}",
        if smoke { "small" } else { "paper" }
    );
    println!();

    let mut outcomes = Vec::new();
    for &app in &apps {
        for &backend in &backends {
            for &clients in &clients_list {
                eprintln!(
                    "running {} under {} at {clients} clients/proc ...",
                    app.label(),
                    backend.cli_name()
                );
                let o = run_cell(app, backend, procs, clients, smoke);
                assert!(
                    o.verified,
                    "{} failed verification under {:?} at {clients} clients",
                    app.label(),
                    backend
                );
                outcomes.push(o);
            }
        }
    }

    let mut t = TextTable::new(&[
        "app", "backend", "clients", "think/op", "ops", "sim s", "ops/s", "msgs", "KB/proc",
        "acq/proc",
    ])
    .left_cols(2);
    for o in &outcomes {
        t.row(&[
            o.app.label().to_string(),
            o.backend.cli_name().to_string(),
            o.clients.to_string(),
            o.think_per_op.to_string(),
            o.total_ops.to_string(),
            fmt_f64(o.sim_secs, 3),
            fmt_f64(o.total_ops as f64 / o.sim_secs.max(1e-9), 0),
            o.messages.to_string(),
            fmt_f64(o.data_kb_per_proc, 1),
            fmt_f64(o.avg_acquires, 0),
        ]);
    }
    println!("{t}");

    // Saturation search: always exercised in smoke (cheap at small
    // inputs), otherwise opt-in.
    let knee_factor: f64 = args
        .value("--knee-factor")
        .map(|s| s.parse().expect("--knee-factor takes a number"))
        .unwrap_or(2.0);
    let knee_max: usize = if smoke {
        8
    } else {
        args.value("--knee-max")
            .map(|s| s.parse().expect("--knee-max takes a number"))
            .unwrap_or(64)
    };
    let knees: Vec<Knee> = if args.flag("--find-knee") || smoke {
        apps.iter()
            .flat_map(|&app| {
                backends.iter().map(move |&backend| {
                    find_knee(app, backend, procs, smoke, knee_factor, knee_max)
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    if !knees.is_empty() {
        let mut kt = TextTable::new(&[
            "app",
            "backend",
            "lat@1 (cyc/op)",
            "target",
            "knee clients",
            "probes",
        ])
        .left_cols(2);
        for k in &knees {
            kt.row(&[
                k.app.label().to_string(),
                k.backend.cli_name().to_string(),
                fmt_f64(k.base_latency, 0),
                fmt_f64(k.target_latency, 0),
                k.knee_clients
                    .map_or_else(|| format!(">{knee_max}"), |c| c.to_string()),
                k.probes.len().to_string(),
            ]);
        }
        println!("{kt}");
    }

    let cells: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            Json::obj([
                ("app", Json::str(o.app.label())),
                ("backend", Json::str(o.backend.cli_name())),
                ("clients", Json::U64(o.clients as u64)),
                ("think_per_op", Json::U64(o.think_per_op)),
                ("total_ops", Json::U64(o.total_ops)),
                ("verified", Json::Bool(o.verified)),
                ("host_secs", Json::F64(o.host_secs)),
                ("sim_secs", Json::F64(o.sim_secs)),
                (
                    "ops_per_sim_sec",
                    Json::F64(o.total_ops as f64 / o.sim_secs.max(1e-9)),
                ),
                ("finish_cycles", Json::U64(o.finish_cycles)),
                ("messages", Json::U64(o.messages)),
                ("data_kb_per_proc", Json::F64(o.data_kb_per_proc)),
                ("avg_lock_acquires", Json::F64(o.avg_acquires)),
            ])
        })
        .collect();
    let knees_json: Vec<Json> = knees
        .iter()
        .map(|k| {
            Json::obj([
                ("app", Json::str(k.app.label())),
                ("backend", Json::str(k.backend.cli_name())),
                ("base_latency_cycles", Json::F64(k.base_latency)),
                ("target_latency_cycles", Json::F64(k.target_latency)),
                ("knee_factor", Json::F64(knee_factor)),
                ("max_clients_probed", Json::U64(knee_max as u64)),
                (
                    "knee_clients",
                    k.knee_clients.map_or(Json::Null, |c| Json::U64(c as u64)),
                ),
                (
                    "probes",
                    Json::Arr(
                        k.probes
                            .iter()
                            .map(|&(c, lat)| {
                                Json::obj([
                                    ("clients", Json::U64(c as u64)),
                                    ("latency_cycles", Json::F64(lat)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let json = Json::obj([
        ("harness", Json::str("svc_sweep")),
        ("procs", Json::U64(procs as u64)),
        ("inputs", Json::str(if smoke { "small" } else { "paper" })),
        ("cells", Json::Arr(cells)),
        ("knees", Json::Arr(knees_json)),
    ]);
    let path = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_svc.json"));
    midway_bench::write_json(&path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nresults written to {}", path.display());
}
