//! Figure 3: the effect of varying page-fault cost on write *trapping*.
//!
//! Each application is a horizontal line: VM-DSM trapping cost as the
//! page-fault service time sweeps from 122 µs (fast exception handler plus
//! the unavoidable twin copy) to 1200 µs (Mach's external pager), plotted
//! against the application's fixed RT-DSM trapping cost. Points below the
//! break-even diagonal favour RT-DSM.
//!
//! Invocation counts do not depend on the fault cost, so the sweep is
//! computed from one measured run per system — exactly how the paper
//! derives the figure. Here that one run per application comes from the
//! trace cache: recorded on the first invocation, replayed afterwards.

use midway_bench::{banner, run_suite, BenchArgs, Json};
use midway_core::{report, BackendKind, Counters};
use midway_stats::{fmt_f64, CostModel, FaultSweep, TextTable};

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 3: trapping cost vs page-fault service time", &args);
    let suite = run_suite(&args);
    let sweep = FaultSweep::paper(7);
    let models = sweep.models(CostModel::r3000_mach());

    let mut headers = vec!["App".to_string(), "RT trap (ms)".to_string()];
    headers.extend(
        models
            .iter()
            .map(|m| format!("VM @{:.0}us", m.fault_micros())),
    );
    headers.push("break-even (us)".to_string());
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TextTable::new(&headers);

    let mut apps_json = Vec::new();
    for s in &suite {
        let rt_avg = Counters::average(&s.rt.counters);
        let vm_avg = Counters::average(&s.vm.counters);
        let rt_ms = report::trapping_millis(BackendKind::Rt, &rt_avg, &models[0]);
        let vm_ms: Vec<f64> = models
            .iter()
            .map(|m| report::trapping_millis(BackendKind::Vm, &vm_avg, m))
            .collect();
        let mut cells = vec![s.app.label().to_string(), fmt_f64(rt_ms, 1)];
        cells.extend(vm_ms.iter().map(|v| fmt_f64(*v, 1)));
        // Break-even fault time: RT trap time == faults × fault time.
        let faults = vm_avg.avg(|c| c.write_faults);
        let break_even = if faults > 0.0 {
            rt_ms * 1_000.0 / faults
        } else {
            f64::INFINITY
        };
        cells.push(if break_even.is_finite() {
            fmt_f64(break_even, 0)
        } else {
            "inf".to_string()
        });
        t.row(&cells);
        apps_json.push(Json::obj([
            ("app", Json::str(s.app.label())),
            ("rt_trap_ms", Json::F64(rt_ms)),
            ("vm_trap_ms", Json::arr(vm_ms.into_iter().map(Json::F64))),
            ("break_even_us", Json::F64(break_even)),
        ]));
    }
    println!("{t}");
    println!("\nReading: VM trapping below the RT column favours VM at that fault");
    println!("cost. The paper finds most applications span the break-even point;");
    println!("medium/fine-grained ones favour RT-DSM across the whole range.");

    let mut pairs = args.meta_json("fig3");
    pairs.push((
        "fault_us".to_string(),
        Json::arr(models.iter().map(|m| Json::F64(m.fault_micros()))),
    ));
    pairs.push(("apps".to_string(), Json::Arr(apps_json)));
    args.emit("fig3", &Json::Obj(pairs));
}
