//! Crash-recovery cost sweep: what surviving processor failures costs
//! each write-detection backend, as a function of the checkpoint
//! interval.
//!
//! Fault tolerance is paid for twice: continuously, in checkpoint images
//! and write-ahead logging at release/barrier boundaries, and at crash
//! time, in downtime plus state reconstruction from stable storage. One
//! recorded trace drives every point: for each data-moving backend and
//! each checkpoint interval the trace is replayed once with
//! checkpointing alone (the insurance premium) and once with a scheduled
//! mid-run crash (the claim), both against the same backend's
//! unprotected baseline. Frequent checkpoints cost more boundary work
//! but less recovery replay; the sweep prices that trade.
//!
//! Every crashed cell asserts final-memory convergence with the
//! unprotected baseline when the application is lock-order independent
//! (the default sor is).
//!
//! Shares the standard harness flags; additionally `--app NAME` picks
//! the recorded application, `--crashes A,B,...` sets the swept crash
//! counts (each count schedules that many staggered crashes across
//! processors; default `1,3`), `--intervals A,B,...` overrides the
//! swept checkpoint intervals, and `--smoke` runs the CI cell (small
//! scale, 4 processors, RT only, one interval, one crash).

use midway_apps::AppKind;
use midway_bench::{banner, cached_trace, run_cells, BenchArgs, Json};
use midway_core::{BackendKind, Counters};
use midway_replay::{replay, Trace};
use midway_stats::fmt_f64;
use midway_stats::TextTable;

/// Checkpoint intervals swept by default, in sync boundaries per image.
const INTERVALS: [u32; 3] = [1, 4, 16];

fn main() {
    let mut args = BenchArgs::parse();
    let smoke = args.flag("--smoke");
    if smoke {
        args.scale = midway_apps::Scale::Small;
        args.procs = 4;
    }
    banner("Crash sweep: checkpointed recovery cost per backend", &args);

    let app = match args.value("--app") {
        Some(name) => AppKind::all()
            .into_iter()
            .find(|k| k.label() == name)
            .unwrap_or_else(|| panic!("unknown app {name:?}")),
        None => AppKind::Sor,
    };
    let crash_counts: Vec<usize> = match args.value("--crashes") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("--crashes takes numbers"))
            .collect(),
        None if smoke => vec![1],
        None => vec![1, 3],
    };
    let intervals: Vec<u32> = match args.value("--intervals") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("--intervals takes numbers"))
            .collect(),
        None if smoke => vec![2],
        None => INTERVALS.to_vec(),
    };
    let backends = if smoke {
        vec![BackendKind::Rt]
    } else {
        BackendKind::DATA.to_vec()
    };

    let trace = cached_trace(&args, app, BackendKind::Rt);
    let plans: Vec<(usize, midway_core::FaultPlan)> = crash_counts
        .iter()
        .map(|&n| (n, crash_plan(&trace, n)))
        .collect();
    println!(
        "app: {}, crash counts: {crash_counts:?}, checkpoint intervals: {intervals:?} boundaries\n",
        app.label(),
    );

    let mut t = TextTable::new(&[
        "backend",
        "interval",
        "crashes",
        "mode",
        "finish (ms)",
        "slowdown",
        "ckpt KB",
        "wal KB",
        "replay KB",
        "recovery ms",
    ]);
    let mut cells_json = Vec::new();
    let sweeps = run_cells(args.jobs, backends, |backend| {
        // The unprotected baseline: no checkpointing, no crashes.
        let mut base_cfg = trace.recorded_cfg();
        base_cfg.backend = backend;
        let base = replay(&trace, base_cfg).expect("unprotected baseline replay");
        let base_ms = base_cfg.cost.cycles_to_millis(base.finish_time.cycles());

        let mut rows = Vec::new();
        let mut cells = Vec::new();
        for &interval in &intervals {
            // One premium row (checkpointing alone), then one claim row
            // per swept crash count.
            for sel in std::iter::once(None).chain(plans.iter().map(Some)) {
                let mut cfg = base_cfg.checkpoint_every(interval);
                if let Some((_, plan)) = sel {
                    cfg = cfg.faults(*plan);
                }
                let run = replay(&trace, cfg).unwrap_or_else(|e| {
                    panic!(
                        "{} interval {interval} (crashes: {:?}) failed: {e}",
                        backend.label(),
                        sel.map(|(n, _)| *n)
                    )
                });
                let converged = run.store_digests == base.store_digests;
                if sel.is_some() && app.lock_order_independent() {
                    assert!(
                        converged,
                        "{}: crashed run must converge to the unprotected final memory",
                        backend.label()
                    );
                }
                let total = run.counters.iter().fold(Counters::default(), |mut t, c| {
                    t.add(c);
                    t
                });
                if let Some((_, plan)) = sel {
                    assert_eq!(
                        total.crashes,
                        plan.crashes().len() as u64,
                        "{}: every scheduled crash must be taken",
                        backend.label()
                    );
                }
                let ms = cfg.cost.cycles_to_millis(run.finish_time.cycles());
                let recovery_ms = cfg.cost.cycles_to_millis(total.recovery_cycles);
                rows.push([
                    backend.label().to_string(),
                    interval.to_string(),
                    sel.map_or("-".to_string(), |(n, _)| n.to_string()),
                    if sel.is_some() { "crash" } else { "ckpt" }.to_string(),
                    fmt_f64(ms, 1),
                    format!("{:.2}x", ms / base_ms.max(1e-12)),
                    (total.checkpoint_bytes / 1024).to_string(),
                    (total.wal_bytes_logged / 1024).to_string(),
                    (total.recovery_replay_bytes / 1024).to_string(),
                    fmt_f64(recovery_ms, 2),
                ]);
                cells.push(Json::obj([
                    ("backend", Json::str(backend.cli_name())),
                    ("interval", Json::U64(u64::from(interval))),
                    ("crashed", Json::Bool(sel.is_some())),
                    (
                        "crashes_scheduled",
                        Json::U64(sel.map_or(0, |(n, _)| *n as u64)),
                    ),
                    ("finish_ms", Json::F64(ms)),
                    ("baseline_ms", Json::F64(base_ms)),
                    ("slowdown", Json::F64(ms / base_ms.max(1e-12))),
                    ("crashes", Json::U64(total.crashes)),
                    ("downtime_cycles", Json::U64(total.downtime_cycles)),
                    ("checkpoints_written", Json::U64(total.checkpoints_written)),
                    ("checkpoint_bytes", Json::U64(total.checkpoint_bytes)),
                    ("wal_bytes_logged", Json::U64(total.wal_bytes_logged)),
                    (
                        "recovery_replay_bytes",
                        Json::U64(total.recovery_replay_bytes),
                    ),
                    ("recovery_cycles", Json::U64(total.recovery_cycles)),
                    ("fenced_messages", Json::U64(total.fenced_messages)),
                    ("converged", Json::Bool(converged)),
                ]));
            }
        }
        (rows, cells)
    });
    for (rows, cells) in sweeps {
        for row in &rows {
            t.row(row);
        }
        cells_json.extend(cells);
    }
    println!("{t}");
    println!("\nSlowdown is against the same backend with no checkpointing and no");
    println!("crash. 'ckpt' rows price the insurance premium (boundary images +");
    println!("write-ahead logging); 'crash' rows add the claim (downtime plus");
    println!("reconstruction, the 'recovery ms' column).");

    let mut pairs = args.meta_json("crash_sweep");
    pairs.push(("app".to_string(), Json::str(app.label())));
    pairs.push((
        "crash_counts".to_string(),
        Json::arr(crash_counts.iter().map(|&n| Json::U64(n as u64))),
    ));
    pairs.push((
        "crash_plans".to_string(),
        Json::arr(plans.iter().map(|(_, plan)| {
            Json::arr(plan.crashes().iter().map(|c| {
                Json::obj([
                    ("proc", Json::U64(u64::from(c.proc))),
                    ("at", Json::U64(c.at)),
                    ("down", Json::U64(c.down)),
                ])
            }))
        })),
    ));
    pairs.push(("cells".to_string(), Json::Arr(cells_json)));
    args.emit("crash_sweep", &Json::Obj(pairs));
}

/// `n` staggered crashes sized relative to the recorded run, so they
/// land mid-computation at any scale: processor `p` fails at
/// `(1/3 + p/10) × finish` and stays down for 5% of the run.
fn crash_plan(trace: &Trace, n: usize) -> midway_core::FaultPlan {
    assert!(n >= 1, "--crashes needs at least one crash");
    let len = trace.meta.finish_cycles;
    let procs = trace.meta.cfg.procs;
    let mut plan = midway_core::FaultPlan::none();
    for i in 0..n {
        let proc = (i + 1) % procs;
        plan = plan.with_crash(proc, len / 3 + (i as u64) * (len / 10), len / 20);
    }
    plan
}
