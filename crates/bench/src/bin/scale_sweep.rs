//! The 64–512 processor scale sweep: how the simulator and the scale-out
//! protocol configuration (combining-tree barriers, sharded sync homes)
//! behave as the cluster grows far beyond the paper's eight processors.
//!
//! Every cell is a **live** run (no trace cache: a ten-million-key
//! quicksort trace would dwarf the run itself) of one application on one
//! backend at one processor count, under
//! `MidwayConfig::scale_out(arity, seed)` — tree barriers plus sharded
//! homes. Reported per cell: host wall-clock seconds, delivered simulator
//! events and events per second, virtual finish time, and the peak
//! resident set sampled while the cell ran.
//!
//! Flags beyond the standard [`BenchArgs`] set:
//!
//! * `--smoke` — the CI gate: 64 processors, sor only, RT + VM, medium
//!   inputs. Checks the machinery end to end in seconds, not minutes.
//! * `--procs-list 64,128,256` — processor counts (default 64,128,256).
//! * `--apps sor,quicksort` — applications (default sor,quicksort).
//! * `--backends rt,vm` — backends (default rt,vm).
//! * `--arity N` — combining-tree arity (default 4).
//! * `--budget-gb N` — per-cell memory budget (default 100). A breached
//!   budget does not kill the cell; it marks it, and larger processor
//!   counts of the same app/backend family are skipped.
//!
//! Inputs default to the datacenter (`dc`) scale — sized so sor's
//! stripes still hold at least two rows each at 512+ processors —
//! unless `--scale` is given explicitly. Cells run strictly one at a
//! time (`--jobs` is ignored): peak-RSS attribution and the events/sec
//! figure are both meaningless under co-scheduling.
//!
//! The default output path is `BENCH_scale.json` at the repository root
//! (override with `--out`).

use std::path::PathBuf;
use std::time::Instant;

use midway_apps::{run_app, AppKind, Scale};
use midway_bench::{run_cells_measured, BenchArgs, CellStats, Json};
use midway_core::{BackendKind, MidwayConfig};
use midway_stats::{fmt_f64, TextTable};

struct Cell {
    app: AppKind,
    backend: BackendKind,
    procs: usize,
}

struct Outcome {
    cell: Cell,
    host_secs: f64,
    events: u64,
    finish_cycles: u64,
    sim_secs: f64,
    verified: bool,
    stats: CellStats,
    skipped: bool,
}

fn parse_list<T>(raw: Option<&str>, default: &[T], parse: impl Fn(&str) -> T) -> Vec<T>
where
    T: Clone,
{
    match raw {
        None => default.to_vec(),
        Some(s) => s.split(',').map(|p| parse(p.trim())).collect(),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.flag("--smoke");

    // Sweep inputs are datacenter-sized unless the user chose otherwise;
    // the smoke gate uses medium (64 processors still fit: sor's stripes
    // need two rows each, and medium sor has 400).
    let scale = if args.value("--scale").is_some() {
        args.scale
    } else if smoke {
        Scale::Medium
    } else {
        Scale::Datacenter
    };

    let proc_counts: Vec<usize> = if smoke {
        vec![64]
    } else {
        parse_list(args.value("--procs-list"), &[64, 128, 256], |s| {
            s.parse().expect("--procs-list takes numbers")
        })
    };
    let apps: Vec<AppKind> = if smoke {
        vec![AppKind::Sor]
    } else {
        parse_list(
            args.value("--apps"),
            &[AppKind::Sor, AppKind::Quicksort],
            |s| {
                AppKind::all()
                    .into_iter()
                    .find(|k| k.label() == s)
                    .unwrap_or_else(|| panic!("unknown app {s:?}"))
            },
        )
    };
    let backends: Vec<BackendKind> = parse_list(
        args.value("--backends"),
        &[BackendKind::Rt, BackendKind::Vm],
        |s| {
            BackendKind::ALL
                .into_iter()
                .find(|b| b.cli_name() == s)
                .unwrap_or_else(|| panic!("unknown backend {s:?}"))
        },
    );
    let arity: u32 = args
        .value("--arity")
        .map(|s| s.parse().expect("--arity takes a number"))
        .unwrap_or(4);
    let budget_gb: u64 = args
        .value("--budget-gb")
        .map(|s| s.parse().expect("--budget-gb takes a number"))
        .unwrap_or(100);
    const SHARD_SEED: u64 = 0x5ca1ab1e;

    println!("== scale sweep ==");
    println!("scale: {scale:?}, procs: {proc_counts:?}, arity: {arity}, budget: {budget_gb} GB");
    println!();

    // Outer order: app × backend × ascending procs, so the budget gate
    // can cut a family short after its first breach.
    let mut cells = Vec::new();
    for &app in &apps {
        for &backend in &backends {
            for &procs in &proc_counts {
                cells.push(Cell {
                    app,
                    backend,
                    procs,
                });
            }
        }
    }

    // One cell at a time, regardless of --jobs: events/sec and peak RSS
    // are per-process measurements.
    let mut breached: Vec<(AppKind, BackendKind)> = Vec::new();
    let mut outcomes: Vec<Outcome> = Vec::new();
    for cell in cells {
        if breached.contains(&(cell.app, cell.backend)) {
            eprintln!(
                "skipping {}/{} at {}p: smaller run already breached the budget",
                cell.app.label(),
                cell.backend.cli_name(),
                cell.procs
            );
            outcomes.push(Outcome {
                cell,
                host_secs: 0.0,
                events: 0,
                finish_cycles: 0,
                sim_secs: 0.0,
                verified: false,
                stats: CellStats {
                    peak_rss_bytes: 0,
                    budget_exceeded: false,
                },
                skipped: true,
            });
            continue;
        }
        eprintln!(
            "running {} under {} at {}p ...",
            cell.app.label(),
            cell.backend.cli_name(),
            cell.procs
        );
        let budget = Some(budget_gb << 30);
        let mut measured = run_cells_measured(1, vec![cell], budget, |cell| {
            let cfg = MidwayConfig::new(cell.procs, cell.backend).scale_out(arity, SHARD_SEED);
            let start = Instant::now();
            let out = run_app(cell.app, cfg, scale);
            let host_secs = start.elapsed().as_secs_f64();
            (cell, host_secs, out)
        });
        let ((cell, host_secs, out), stats) = measured.pop().expect("one cell in, one out");
        assert!(
            out.verified,
            "{:?} failed verification at {}p under {:?}",
            cell.app, cell.procs, cell.backend
        );
        eprintln!(
            "  {:.1}s host, {} events ({}/s), peak rss {} MB",
            host_secs,
            out.messages,
            fmt_f64((out.messages as f64 / host_secs.max(1e-9)).round(), 0),
            stats.peak_rss_bytes >> 20,
        );
        if stats.budget_exceeded {
            breached.push((cell.app, cell.backend));
        }
        outcomes.push(Outcome {
            host_secs,
            events: out.messages,
            finish_cycles: out.finish_time.cycles(),
            sim_secs: out.exec_secs,
            verified: out.verified,
            stats,
            skipped: false,
            cell,
        });
    }

    let mut t = TextTable::new(&[
        "app", "backend", "procs", "host s", "events", "events/s", "sim s", "peak MB",
    ])
    .left_cols(2);
    for o in &outcomes {
        if o.skipped {
            t.row(&[
                o.cell.app.label().to_string(),
                o.cell.backend.cli_name().to_string(),
                o.cell.procs.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "skipped".to_string(),
            ]);
            continue;
        }
        t.row(&[
            o.cell.app.label().to_string(),
            o.cell.backend.cli_name().to_string(),
            o.cell.procs.to_string(),
            fmt_f64(o.host_secs, 1),
            o.events.to_string(),
            fmt_f64((o.events as f64 / o.host_secs.max(1e-9)).round(), 0),
            fmt_f64(o.sim_secs, 2),
            (o.stats.peak_rss_bytes >> 20).to_string(),
        ]);
    }
    println!("{t}");

    let cells_json: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            Json::obj([
                ("app", Json::str(o.cell.app.label())),
                ("backend", Json::str(o.cell.backend.cli_name())),
                ("procs", Json::U64(o.cell.procs as u64)),
                ("skipped", Json::Bool(o.skipped)),
                ("verified", Json::Bool(o.verified)),
                ("host_secs", Json::F64(o.host_secs)),
                ("events", Json::U64(o.events)),
                (
                    "events_per_sec",
                    Json::F64(o.events as f64 / o.host_secs.max(1e-9)),
                ),
                ("finish_cycles", Json::U64(o.finish_cycles)),
                ("sim_secs", Json::F64(o.sim_secs)),
                ("peak_rss_mb", Json::U64(o.stats.peak_rss_bytes >> 20)),
                ("budget_exceeded", Json::Bool(o.stats.budget_exceeded)),
            ])
        })
        .collect();
    let json = Json::obj([
        ("harness", Json::str("scale_sweep")),
        ("scale", Json::str(scale.label())),
        ("arity", Json::U64(u64::from(arity))),
        ("shard_seed", Json::U64(SHARD_SEED)),
        ("budget_gb", Json::U64(budget_gb)),
        ("cells", Json::Arr(cells_json)),
    ]);
    let path = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_scale.json"));
    midway_bench::write_json(&path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nresults written to {}", path.display());
}
