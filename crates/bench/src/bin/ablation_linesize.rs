//! Ablation A4: the cache-line size trade-off under RT-DSM.
//!
//! "All cache lines in a region are the same size, although different
//! regions may have different cache line sizes" — the unit of coherency
//! "can be set to meet the needs of the application" (§2). This harness
//! sweeps the line size for a lock-protected array that a rotating writer
//! updates either densely or sparsely:
//!
//! * small lines: more dirtybits to set and scan, but transfers ship only
//!   what changed;
//! * large lines: cheaper area traps and scans, but a sparse writer drags
//!   whole lines of unmodified data across the network.
//!
//! Record once, sweep many: the workload is recorded once per writer
//! density at the finest line size, then each other line size is
//! evaluated by replaying the trace against a rebuilt system — the
//! recorded byte stream is independent of the coherency unit.

use midway_bench::{run_cells, BenchArgs, Json};
use midway_core::{BackendKind, Counters, Midway, MidwayConfig, MidwayRun, Proc, SystemBuilder};
use midway_replay::{replay_on, verify_replay, Trace};
use midway_stats::{fmt_f64, fmt_u64, TextTable};

const N: usize = 8 * 1024; // 64 KB of f64
const PROCS: usize = 4;
const ROUNDS: usize = 8;

/// Records the rotating-writer workload once, at one-element (8 B) lines.
fn record(stride: usize, label: &str) -> Trace {
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<f64>("data", N, 1);
    let lock = b.lock(vec![data.full_range()]);
    let done = b.barrier(vec![]);
    let spec = b.build();
    let cfg = MidwayConfig::new(PROCS, BackendKind::Rt).record(true);
    let run: MidwayRun<()> = Midway::run(cfg, &spec, |p: &mut Proc| {
        // Each round one processor writes every `stride`-th element of
        // its quarter; the next round's writer pulls the lock across.
        for round in 0..ROUNDS {
            if round % PROCS == p.id() {
                p.acquire(lock);
                let chunk = N / PROCS;
                let lo = p.id() * chunk;
                for i in (lo..lo + chunk).step_by(stride) {
                    p.write(&data, i, (round * i) as f64);
                }
                p.release(lock);
            }
            p.barrier(done);
        }
    })
    .unwrap();
    Trace::from_run(label, "fixed", true, &run)
}

fn measure(trace: &Trace, elems_per_line: usize) -> (f64, f64, u64, u64) {
    let line_shift = 3 + elems_per_line.trailing_zeros(); // 8 B elements
    let run = if elems_per_line == 1 {
        // The recorded line size: take the equivalence-oracle path.
        verify_replay(trace).unwrap_or_else(|d| panic!("linesize replay diverged: {d}"))
    } else {
        let spec = trace.blueprint.with_shared_line_shift(line_shift).build();
        replay_on(trace, trace.recorded_cfg(), &spec)
            .unwrap_or_else(|e| panic!("linesize replay failed: {e}"))
    };
    let avg = Counters::average(&run.counters);
    (
        run.cfg.cost.cycles_to_millis(run.finish_time.cycles()),
        avg.avg(|c| c.data_bytes_sent) / 1024.0,
        avg.totals().dirtybits_set,
        avg.totals().clean_dirtybits_read + avg.totals().dirty_dirtybits_read,
    )
}

fn main() {
    let args = BenchArgs::parse();
    println!("== Ablation: cache-line size sweep (RT-DSM) ==\n");
    let mut tables = Vec::new();
    for (key, label, stride) in [
        ("dense", "dense writer (every element)", 1usize),
        ("sparse", "sparse writer (every 8th)", 8),
    ] {
        println!("-- {label} --");
        let trace = record(stride, key);
        let mut t = TextTable::new(&[
            "line size (B)",
            "exec (ms)",
            "data/proc (KB)",
            "dirtybits set",
            "bits scanned",
        ]);
        // Every line size replays the same in-memory trace read-only: one
        // cell per line size, rows joined in sweep order.
        let rows = run_cells(args.jobs, vec![1usize, 4, 16, 64, 512], |elems_per_line| {
            let (ms, kb, set, scanned) = measure(&trace, elems_per_line);
            [
                fmt_u64(8 * elems_per_line as u64),
                fmt_f64(ms, 1),
                fmt_f64(kb, 1),
                fmt_u64(set),
                fmt_u64(scanned),
            ]
        });
        for row in &rows {
            t.row(row);
        }
        println!("{t}");
        tables.push((key, t));
    }
    println!("Reading: a dense writer favours large lines (fewer bits, same data);");
    println!("a sparse writer pays for them in excess data — the unit of coherency");
    println!("should match the application's write granularity, which is exactly");
    println!("the knob VM-DSM lacks (its unit is pinned to the 4 KB page).");

    let mut pairs = args.meta_json("ablation_linesize");
    for (key, t) in &tables {
        pairs.push(((*key).to_string(), Json::table(t)));
    }
    args.emit("ablation_linesize", &Json::Obj(pairs));
}
