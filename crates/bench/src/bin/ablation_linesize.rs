//! Ablation A4: the cache-line size trade-off under RT-DSM.
//!
//! "All cache lines in a region are the same size, although different
//! regions may have different cache line sizes" — the unit of coherency
//! "can be set to meet the needs of the application" (§2). This harness
//! sweeps the line size for a lock-protected array that a rotating writer
//! updates either densely or sparsely:
//!
//! * small lines: more dirtybits to set and scan, but transfers ship only
//!   what changed;
//! * large lines: cheaper area traps and scans, but a sparse writer drags
//!   whole lines of unmodified data across the network.

use midway_core::{BackendKind, Counters, Midway, MidwayConfig, Proc, SystemBuilder};
use midway_stats::{fmt_f64, fmt_u64, TextTable};

fn run_case(elems_per_line: usize, stride: usize) -> (f64, f64, u64, u64) {
    let n = 8 * 1024; // 64 KB of f64
    let procs = 4;
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<f64>("data", n, elems_per_line);
    let lock = b.lock(vec![data.full_range()]);
    let done = b.barrier(vec![]);
    let spec = b.build();
    let run = Midway::run(
        MidwayConfig::new(procs, BackendKind::Rt),
        &spec,
        |p: &mut Proc| {
            // Each round one processor writes every `stride`-th element of
            // its quarter; the next round's writer pulls the lock across.
            for round in 0..8usize {
                if round % procs == p.id() {
                    p.acquire(lock);
                    let chunk = n / procs;
                    let lo = p.id() * chunk;
                    for i in (lo..lo + chunk).step_by(stride) {
                        p.write(&data, i, (round * i) as f64);
                    }
                    p.release(lock);
                }
                p.barrier(done);
            }
        },
    )
    .unwrap();
    let avg = Counters::average(&run.counters);
    (
        run.cfg.cost.cycles_to_millis(run.finish_time.cycles()),
        avg.avg(|c| c.data_bytes_sent) / 1024.0,
        avg.totals().dirtybits_set,
        avg.totals().clean_dirtybits_read + avg.totals().dirty_dirtybits_read,
    )
}

fn main() {
    println!("== Ablation: cache-line size sweep (RT-DSM) ==\n");
    for (label, stride) in [
        ("dense writer (every element)", 1),
        ("sparse writer (every 8th)", 8),
    ] {
        println!("-- {label} --");
        let mut t = TextTable::new(&[
            "line size (B)",
            "exec (ms)",
            "data/proc (KB)",
            "dirtybits set",
            "bits scanned",
        ]);
        for elems_per_line in [1usize, 4, 16, 64, 512] {
            let (ms, kb, set, scanned) = run_case(elems_per_line, stride);
            t.row(&[
                fmt_u64(8 * elems_per_line as u64),
                fmt_f64(ms, 1),
                fmt_f64(kb, 1),
                fmt_u64(set),
                fmt_u64(scanned),
            ]);
        }
        println!("{t}");
    }
    println!("Reading: a dense writer favours large lines (fewer bits, same data);");
    println!("a sparse writer pays for them in excess data — the unit of coherency");
    println!("should match the application's write granularity, which is exactly");
    println!("the knob VM-DSM lacks (its unit is pinned to the 4 KB page).");
}
