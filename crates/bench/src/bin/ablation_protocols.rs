//! Ablation A1/A2: the §3.5 alternative strategies.
//!
//! Compares, per application: RT-DSM, VM-DSM, the "blast" strawman (no
//! write detection; all bound data shipped on every transfer),
//! "twin-everything" (no trapping; every bound page twinned and diffed at
//! every transfer) and the hybrid backend (§5: dirtybits for small
//! regions, page twinning for large ones, chosen per region). The paper
//! argues blast "would transfer data
//! unnecessarily when synchronization objects guard large data objects
//! being sparsely written", and that twin-everything trades trapping for
//! more expensive collection — "strategies that reduce the number of page
//! faults by increasing the amount of data diffed cannot minimize the
//! total cost of write detection".
//!
//! One cached RT trace per application drives all four backends: the
//! recorded op stream captures what the application did, so replaying it
//! under another backend reproduces that backend's live run exactly.
//! `--live` forces live application runs instead.
//!
//! Pass `--net-sweep` to also rerun RT/VM under a 2× faster and 2× slower
//! network, demonstrating that the RT-vs-VM ordering is insensitive to the
//! estimated network constants.

use midway_apps::{run_app, AppKind, AppOutcome};
use midway_bench::{banner, cached_trace, replay_outcome, run_cells, BenchArgs, Json};
use midway_core::{BackendKind, MidwayConfig, NetModel};
use midway_replay::replay;
use midway_stats::{fmt_f64, TextTable};

const BACKENDS: [BackendKind; 5] = [
    BackendKind::Rt,
    BackendKind::Vm,
    BackendKind::Blast,
    BackendKind::TwinAll,
    BackendKind::Hybrid,
];

fn main() {
    let args = BenchArgs::parse();
    banner("Ablation: §3.5 alternative strategies", &args);

    let mut t = TextTable::new(&[
        "App",
        "RT (s)",
        "VM (s)",
        "Blast (s)",
        "TwinAll (s)",
        "Hybrid (s)",
        "RT MB",
        "VM MB",
        "Blast MB",
        "TwinAll MB",
        "Hybrid MB",
    ]);
    let mut apps_json = Vec::new();
    // One cell per application: the five backends of an app share its
    // cached RT trace, so they stay inside one cell.
    let app_outs = run_cells(args.jobs, AppKind::all().into_iter().collect(), |app| {
        let outs: Vec<AppOutcome> = if args.flag("--live") {
            eprintln!("running {} (live) ...", app.label());
            BACKENDS
                .into_iter()
                .map(|b| {
                    let out = run_app(app, MidwayConfig::new(args.procs, b), args.scale);
                    assert!(out.verified, "{app:?} under {b:?} failed verification");
                    out
                })
                .collect()
        } else {
            let trace = cached_trace(&args, app, BackendKind::Rt);
            BACKENDS
                .into_iter()
                .map(|b| replay_outcome(&trace, app, b))
                .collect()
        };
        (app, outs)
    });
    for (app, outs) in app_outs {
        let mut cells = vec![app.label().to_string()];
        cells.extend(outs.iter().map(|o| fmt_f64(o.exec_secs, 1)));
        cells.extend(outs.iter().map(|o| fmt_f64(o.data_mb_total, 2)));
        t.row(&cells);
        apps_json.push(Json::obj([
            ("app", Json::str(app.label())),
            (
                "exec_secs",
                Json::obj(
                    BACKENDS
                        .iter()
                        .zip(&outs)
                        .map(|(b, o)| (b.cli_name(), Json::F64(o.exec_secs))),
                ),
            ),
            (
                "data_mb",
                Json::obj(
                    BACKENDS
                        .iter()
                        .zip(&outs)
                        .map(|(b, o)| (b.cli_name(), Json::F64(o.data_mb_total))),
                ),
            ),
        ]));
    }
    println!("{t}");

    let mut pairs = args.meta_json("ablation_protocols");
    pairs.push(("apps".to_string(), Json::Arr(apps_json)));

    if args.flag("--net-sweep") {
        println!("\n== Network sensitivity (RT vs VM execution time, s) ==");
        let mut t = TextTable::new(&[
            "App", "RT 0.5x", "VM 0.5x", "RT 1x", "VM 1x", "RT 2x", "VM 2x",
        ]);
        let mut sweep_json = Vec::new();
        // The main loop above already warmed each app's trace cache, so
        // these per-app cells only read it.
        let rows = run_cells(args.jobs, AppKind::all().into_iter().collect(), |app| {
            let trace = (!args.flag("--live")).then(|| cached_trace(&args, app, BackendKind::Rt));
            let mut cells = vec![app.label().to_string()];
            let mut points = Vec::new();
            for (num, den) in [(1u64, 2u64), (1, 1), (2, 1)] {
                for b in [BackendKind::Rt, BackendKind::Vm] {
                    let net = NetModel::atm_cluster().scaled(num, den);
                    let secs = match &trace {
                        Some(trace) => {
                            let mut cfg = trace.recorded_cfg().net(net);
                            cfg.backend = b;
                            let run = replay(trace, cfg)
                                .unwrap_or_else(|e| panic!("{app:?} net replay failed: {e}"));
                            AppOutcome::from_run(app, run, trace.meta.verified).exec_secs
                        }
                        None => {
                            eprintln!("net-sweep {} (live) ...", app.label());
                            let cfg = MidwayConfig::new(args.procs, b).net(net);
                            run_app(app, cfg, args.scale).exec_secs
                        }
                    };
                    cells.push(fmt_f64(secs, 1));
                    points.push(Json::obj([
                        ("backend", Json::str(b.cli_name())),
                        ("net_scale", Json::F64(num as f64 / den as f64)),
                        ("exec_secs", Json::F64(secs)),
                    ]));
                }
            }
            (app, cells, points)
        });
        for (app, cells, points) in rows {
            t.row(&cells);
            sweep_json.push(Json::obj([
                ("app", Json::str(app.label())),
                ("points", Json::Arr(points)),
            ]));
        }
        println!("{t}");
        pairs.push(("net_sweep".to_string(), Json::Arr(sweep_json)));
    }

    args.emit("ablation_protocols", &Json::Obj(pairs));
}
