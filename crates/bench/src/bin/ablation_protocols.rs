//! Ablation A1/A2: the §3.5 alternative strategies.
//!
//! Compares, per application: RT-DSM, VM-DSM, the "blast" strawman (no
//! write detection; all bound data shipped on every transfer) and
//! "twin-everything" (no trapping; every bound page twinned and diffed at
//! every transfer). The paper argues blast "would transfer data
//! unnecessarily when synchronization objects guard large data objects
//! being sparsely written", and that twin-everything trades trapping for
//! more expensive collection — "strategies that reduce the number of page
//! faults by increasing the amount of data diffed cannot minimize the
//! total cost of write detection".
//!
//! Pass `--net-sweep` to also rerun RT/VM under a 2× faster and 2× slower
//! network, demonstrating that the RT-vs-VM ordering is insensitive to the
//! estimated network constants.

use midway_apps::{run_app, AppKind};
use midway_bench::{banner, procs_from_args, scale_from_args};
use midway_core::{BackendKind, MidwayConfig, NetModel};
use midway_stats::{fmt_f64, TextTable};

fn main() {
    let scale = scale_from_args();
    let procs = procs_from_args();
    banner("Ablation: §3.5 alternative strategies", scale, procs);

    let mut t = TextTable::new(&[
        "App",
        "RT (s)",
        "VM (s)",
        "Blast (s)",
        "TwinAll (s)",
        "RT MB",
        "VM MB",
        "Blast MB",
        "TwinAll MB",
    ]);
    for app in AppKind::all() {
        eprintln!("running {} ...", app.label());
        let outs: Vec<_> = [
            BackendKind::Rt,
            BackendKind::Vm,
            BackendKind::Blast,
            BackendKind::TwinAll,
        ]
        .into_iter()
        .map(|b| {
            let out = run_app(app, MidwayConfig::new(procs, b), scale);
            assert!(out.verified, "{app:?} under {b:?} failed verification");
            out
        })
        .collect();
        let mut cells = vec![app.label().to_string()];
        cells.extend(outs.iter().map(|o| fmt_f64(o.exec_secs, 1)));
        cells.extend(outs.iter().map(|o| fmt_f64(o.data_mb_total, 2)));
        t.row(&cells);
    }
    println!("{t}");

    if std::env::args().any(|a| a == "--net-sweep") {
        println!("\n== Network sensitivity (RT vs VM execution time, s) ==");
        let mut t = TextTable::new(&[
            "App", "RT 0.5x", "VM 0.5x", "RT 1x", "VM 1x", "RT 2x", "VM 2x",
        ]);
        for app in AppKind::all() {
            eprintln!("net-sweep {} ...", app.label());
            let mut cells = vec![app.label().to_string()];
            for (num, den) in [(1u64, 2u64), (1, 1), (2, 1)] {
                for b in [BackendKind::Rt, BackendKind::Vm] {
                    let cfg =
                        MidwayConfig::new(procs, b).net(NetModel::atm_cluster().scaled(num, den));
                    let out = run_app(app, cfg, scale);
                    cells.push(fmt_f64(out.exec_secs, 1));
                }
            }
            t.row(&cells);
        }
        println!("{t}");
    }
}
