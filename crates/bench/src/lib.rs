//! Shared plumbing for the benchmark harnesses that regenerate the
//! paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — primitive operation costs |
//! | `table2` | Table 2 — per-processor invocation counts |
//! | `table3` | Table 3 — write-trapping time |
//! | `table4` | Table 4 — write-collection time |
//! | `table5` | Table 5 — memory references |
//! | `fig2` | Figure 2 — execution time and data transferred |
//! | `fig3` | Figure 3 — trapping cost vs. page-fault time |
//! | `fig4` | Figure 4 — total detection cost vs. page-fault time |
//! | `ablation_protocols` | §3.5 blast / twin-everything alternatives |
//! | `ablation_rt_variants` | §3.5 update-queue / two-level dirtybits |
//! | `ablation_linesize` | cache-line size sweep |
//! | `false_sharing` | false-sharing microbenchmark |
//! | `probe` | wall-clock probe: host time per paper-scale run (`-v` for counters) |
//!
//! Run with `--scale paper` (default; use `--release`) or
//! `--scale medium|small` for quicker passes.

use midway_apps::{run_app, AppKind, AppOutcome, Scale};
use midway_core::{BackendKind, MidwayConfig};

/// Parses `--scale paper|medium|small` from the command line.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
    {
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        Some("paper") | None => Scale::Paper,
        Some(other) => panic!("unknown scale {other:?} (use paper|medium|small)"),
    }
}

/// Parses `--procs N` (default: the paper's 8).
pub fn procs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--procs")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--procs takes a number"))
        .unwrap_or(8)
}

/// One application measured under both detection systems.
pub struct SuiteRun {
    /// The application.
    pub app: AppKind,
    /// The RT-DSM run.
    pub rt: AppOutcome,
    /// The VM-DSM run.
    pub vm: AppOutcome,
}

/// Runs every application under RT-DSM and VM-DSM.
///
/// # Panics
///
/// Panics if any run fails its own verification — tables derived from an
/// incorrect execution would be meaningless.
pub fn run_suite(scale: Scale, procs: usize) -> Vec<SuiteRun> {
    AppKind::all()
        .into_iter()
        .map(|app| {
            eprintln!("running {} ...", app.label());
            let rt = run_app(app, MidwayConfig::new(procs, BackendKind::Rt), scale);
            assert!(rt.verified, "{app:?} failed verification under RT");
            let vm = run_app(app, MidwayConfig::new(procs, BackendKind::Vm), scale);
            assert!(vm.verified, "{app:?} failed verification under VM");
            SuiteRun { app, rt, vm }
        })
        .collect()
}

/// Prints the standard scale/procs banner.
pub fn banner(title: &str, scale: Scale, procs: usize) {
    println!("== {title} ==");
    println!("scale: {scale:?}, processors: {procs}");
    if scale != Scale::Paper {
        println!("(note: reduced input sizes; run with --scale paper for the paper's sizes)");
    }
    println!();
}
