//! A minimal JSON value, writer and parser, so every harness can emit —
//! and report generators can read back — machine-readable results
//! without an external serialization crate.

use std::io;
use std::path::Path;

use midway_stats::TextTable;

/// A JSON value built by the harnesses.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted without a decimal point).
    U64(u64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A [`TextTable`] as `{"headers": [...], "rows": [[...], ...]}` —
    /// the uniform machine-readable form of what a harness prints.
    pub fn table(t: &TextTable) -> Json {
        Json::obj([
            ("headers", Json::arr(t.headers().iter().map(Json::str))),
            (
                "rows",
                Json::arr(t.data_rows().map(|r| Json::arr(r.iter().map(Json::str)))),
            ),
        ])
    }

    /// Parses a JSON document — the inverse of [`Json::render`], strict
    /// enough for the harnesses' own output (no comments, no trailing
    /// commas). Numbers parse as [`Json::U64`] when they are unsigned
    /// integers and [`Json::F64`] otherwise, matching what the writer
    /// emits.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements; empty for non-arrays.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired: the writer never
                            // emits them (it escapes only control chars).
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid; find the char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf-8"));
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Writes `json` to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Returns any I/O error from creating directories or writing the file.
pub fn write_json(path: impl AsRef<Path>, json: &Json) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, json.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let j = Json::obj([
            ("name", Json::str("fig3")),
            ("points", Json::arr([Json::U64(122), Json::U64(1200)])),
            ("ratio", Json::F64(2.5)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
        ]);
        let s = j.render();
        assert!(s.contains("\"name\": \"fig3\""));
        assert!(s.contains("\"points\": [\n    122,\n    1200\n  ]"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_nan() {
        let j = Json::arr([Json::str("a\"b\nc"), Json::F64(f64::NAN)]);
        let s = j.render();
        assert!(s.contains("\"a\\\"b\\nc\""));
        assert!(s.contains("null"));
    }

    #[test]
    fn parse_inverts_render() {
        let j = Json::obj([
            ("name", Json::str("scale_sweep")),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            ("ratio", Json::F64(2.5)),
            (
                "cells",
                Json::arr([Json::obj([
                    ("procs", Json::U64(64)),
                    ("sim_secs", Json::F64(22.116)),
                    ("label", Json::str("a\"b\nc")),
                ])]),
            ),
        ]);
        let back = Json::parse(&j.render()).expect("round-trip");
        assert_eq!(back, j);
    }

    #[test]
    fn parse_reads_foreign_formatting_and_rejects_junk() {
        let v = Json::parse("  {\"a\":[1,2.0e1,-3.5],\"b\":\"\\u0041\"} ").expect("parses");
        assert_eq!(v.get("b").and_then(Json::as_str), Some("A"));
        assert_eq!(v.get("a").unwrap().items()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().items()[1].as_f64(), Some(20.0));
        assert_eq!(v.get("a").unwrap().items()[2].as_f64(), Some(-3.5));

        for bad in ["{", "[1,]", "{\"a\" 1}", "nul", "\"open", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn committed_svc_results_round_trip_and_trailing_garbage_is_rejected() {
        // The sweep writer's real output is the parser's contract: the
        // committed BENCH_svc.json must parse, re-render byte-identically
        // (parse ∘ render = id on writer output), and carry the swept
        // grid; the same document with trailing garbage must not parse.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_svc.json");
        let text = std::fs::read_to_string(path).expect("BENCH_svc.json is committed");
        let doc = Json::parse(&text).expect("committed results parse");
        assert_eq!(doc.render(), text, "render is parse's inverse");
        assert_eq!(doc.get("harness").and_then(Json::as_str), Some("svc_sweep"));
        assert!(!doc.get("cells").unwrap().items().is_empty());

        for junk in ["{}", " null", "]"] {
            let bad = format!("{text}{junk}");
            let err = Json::parse(&bad).expect_err("trailing garbage must fail");
            assert!(err.contains("trailing"), "wrong error: {err}");
        }
    }

    #[test]
    fn accessors_are_total() {
        let v = Json::parse("{\"n\": 3}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("missing"), None);
        assert!(v.items().is_empty(), "objects have no array items");
        assert_eq!(v.as_str(), None);
        assert_eq!(v.as_bool(), None);
    }

    #[test]
    fn tables_become_headers_and_rows() {
        let mut t = TextTable::new(&["App", "RT"]);
        t.row(&["water", "15.6"]);
        t.separator();
        t.row(&["sor", "8.2"]);
        let s = Json::table(&t).render();
        assert!(s.contains("\"headers\""));
        assert!(s.matches('[').count() >= 3, "two rows plus headers: {s}");
        assert!(!s.contains("[]"), "separators are skipped, not emitted");
    }
}
