//! A minimal JSON value and writer, so every harness can emit
//! machine-readable results without an external serialization crate.

use std::io;
use std::path::Path;

use midway_stats::TextTable;

/// A JSON value built by the harnesses.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted without a decimal point).
    U64(u64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A [`TextTable`] as `{"headers": [...], "rows": [[...], ...]}` —
    /// the uniform machine-readable form of what a harness prints.
    pub fn table(t: &TextTable) -> Json {
        Json::obj([
            ("headers", Json::arr(t.headers().iter().map(Json::str))),
            (
                "rows",
                Json::arr(t.data_rows().map(|r| Json::arr(r.iter().map(Json::str)))),
            ),
        ])
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Writes `json` to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Returns any I/O error from creating directories or writing the file.
pub fn write_json(path: impl AsRef<Path>, json: &Json) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, json.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let j = Json::obj([
            ("name", Json::str("fig3")),
            ("points", Json::arr([Json::U64(122), Json::U64(1200)])),
            ("ratio", Json::F64(2.5)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
        ]);
        let s = j.render();
        assert!(s.contains("\"name\": \"fig3\""));
        assert!(s.contains("\"points\": [\n    122,\n    1200\n  ]"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_nan() {
        let j = Json::arr([Json::str("a\"b\nc"), Json::F64(f64::NAN)]);
        let s = j.render();
        assert!(s.contains("\"a\\\"b\\nc\""));
        assert!(s.contains("null"));
    }

    #[test]
    fn tables_become_headers_and_rows() {
        let mut t = TextTable::new(&["App", "RT"]);
        t.row(&["water", "15.6"]);
        t.separator();
        t.row(&["sor", "8.2"]);
        let s = Json::table(&t).render();
        assert!(s.contains("\"headers\""));
        assert!(s.matches('[').count() >= 3, "two rows plus headers: {s}");
        assert!(!s.contains("[]"), "separators are skipped, not emitted");
    }
}
