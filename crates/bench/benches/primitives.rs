//! Host-side microbenchmarks of the substrate primitives.
//!
//! These measure *our implementation's* wall-clock cost (nanoseconds on
//! the host), complementing Table 1, which holds the *modelled* costs
//! (cycles on the simulated R3000). They exist to keep the simulator
//! honest: the write path, scans and diffs must stay cheap enough that
//! paper-scale workloads run in seconds.
//!
//! The harness is hand-rolled on `std::time::Instant` (the workspace
//! builds offline, with no external bench framework): each benchmark is
//! warmed up, then timed over enough iterations to fill a ~50 ms window,
//! reporting the mean ns/iter over five such samples.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use midway_core::{BackendKind, Midway, MidwayConfig, Proc, SystemBuilder};
use midway_mem::diff::PageDiff;
use midway_mem::{DirtyBits, LayoutBuilder, LocalStore, MemClass, StoreKind, Template};
use midway_proto::{rt, Binding};
use midway_stats::CostModel;

const SAMPLE_MILLIS: u128 = 50;
const SAMPLES: usize = 5;

/// Times `f` and prints a criterion-style `name ... ns/iter` line.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up and estimate the per-iteration cost.
    let mut iters = 1u64;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed().as_nanos();
        if elapsed > 5_000_000 {
            break (elapsed / u128::from(iters)).max(1);
        }
        iters = iters.saturating_mul(4);
    };
    let iters = ((SAMPLE_MILLIS * 1_000_000) / per_iter).clamp(1, u128::from(u64::MAX)) as u64;
    let mut best = u128::MAX;
    let mut worst = 0u128;
    let mut total = 0u128;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() / u128::from(iters);
        best = best.min(ns);
        worst = worst.max(ns);
        total += ns;
    }
    println!(
        "{name:<40} {:>10} ns/iter (min {best}, max {worst}, {iters} iters)",
        total / SAMPLES as u128
    );
}

fn bench_dirtybits() {
    let cost = CostModel::r3000_mach();
    let mut lb = LayoutBuilder::new();
    let alloc = lb.alloc("x", 1 << 16, MemClass::Shared, 3);
    let layout = lb.build();
    let desc = layout.region_of(alloc.addr);
    let template = Template::for_region(desc);
    let mut bits = DirtyBits::new(desc.lines());

    let mut i = 0u64;
    bench("template_invoke_doubleword", || {
        let addr = alloc.addr + (i % 8000) * 8;
        i += 1;
        black_box(template.invoke(&mut bits, addr, StoreKind::Doubleword, &cost));
    });

    let mut bits = DirtyBits::new(8192);
    for l in (0..8192).step_by(7) {
        bits.mark(l);
    }
    bench("dirtybit_scan_8k_lines", || {
        black_box(bits.scan(0..8192, 1, 99));
    });
}

fn bench_diff() {
    let twin = vec![0u8; 4096];
    let mut uniform = twin.clone();
    uniform[100] = 1;
    let mut alternating = twin.clone();
    for w in (0..1024).step_by(2) {
        alternating[w * 4] = 0xFF;
    }
    bench("page_diff_uniform", || {
        black_box(PageDiff::compute(&uniform, &twin));
    });
    bench("page_diff_alternating", || {
        black_box(PageDiff::compute(&alternating, &twin));
    });
    let diff = PageDiff::compute(&alternating, &twin);
    let mut page = twin.clone();
    bench("page_diff_apply", || {
        diff.apply(&mut page);
        black_box(&page);
    });
}

fn bench_rt_collect() {
    let mut lb = LayoutBuilder::new();
    let alloc = lb.alloc("x", 1 << 16, MemClass::Shared, 3);
    let layout = lb.build();
    let binding = Binding::new(vec![alloc.range()]);
    let mut store = LocalStore::new(Arc::clone(&layout));
    let mut dirty = rt::DirtyMap::new(&layout);
    for i in (0..8192).step_by(5) {
        rt::mark_write(&mut dirty, &layout, alloc.addr + i * 8, 8);
    }
    let mut now = 10;
    bench("rt_collect_64KB_binding", || {
        now += 1;
        black_box(rt::collect(
            &mut store, &mut dirty, &layout, &binding, 1, now,
        ));
    });
}

fn bench_end_to_end() {
    // A small but complete cluster run: how much host time one simulated
    // lock hand-off costs, per backend.
    for backend in [BackendKind::Rt, BackendKind::Vm] {
        bench(&format!("cluster_100_handoffs_{backend:?}"), || {
            let mut sb = SystemBuilder::new();
            let data = sb.shared_array::<u64>("d", 64, 1);
            let lock = sb.lock(vec![data.full_range()]);
            let spec = sb.build();
            let run = Midway::run(MidwayConfig::new(2, backend), &spec, |p: &mut Proc| {
                for _ in 0..50 {
                    p.acquire(lock);
                    let v = p.read(&data, 0);
                    p.write(&data, 0, v + 1);
                    p.release(lock);
                }
            })
            .unwrap();
            black_box(run.finish_time);
        });
    }
}

fn main() {
    bench_dirtybits();
    bench_diff();
    bench_rt_collect();
    bench_end_to_end();
}
