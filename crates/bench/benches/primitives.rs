//! Host-side microbenchmarks of the substrate primitives.
//!
//! These measure *our implementation's* wall-clock cost (nanoseconds on
//! the host), complementing Table 1, which holds the *modelled* costs
//! (cycles on the simulated R3000). They exist to keep the simulator
//! honest: the write path, scans and diffs must stay cheap enough that
//! paper-scale workloads run in seconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use midway_core::{BackendKind, Midway, MidwayConfig, Proc, SystemBuilder};
use midway_mem::diff::PageDiff;
use midway_mem::{DirtyBits, LayoutBuilder, LocalStore, MemClass, StoreKind, Template};
use midway_proto::{rt, Binding};
use midway_stats::CostModel;

fn bench_dirtybits(c: &mut Criterion) {
    let cost = CostModel::r3000_mach();
    let mut lb = LayoutBuilder::new();
    let alloc = lb.alloc("x", 1 << 16, MemClass::Shared, 3);
    let layout = lb.build();
    let desc = layout.region_of(alloc.addr);
    let template = Template::for_region(desc);
    let mut bits = DirtyBits::new(desc.lines());

    c.bench_function("template_invoke_doubleword", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let addr = alloc.addr + (i % 8000) * 8;
            i += 1;
            black_box(template.invoke(&mut bits, addr, StoreKind::Doubleword, &cost))
        })
    });

    c.bench_function("dirtybit_scan_8k_lines", |b| {
        let mut bits = DirtyBits::new(8192);
        for l in (0..8192).step_by(7) {
            bits.mark(l);
        }
        b.iter(|| black_box(bits.scan(0..8192, 1, 99)))
    });
}

fn bench_diff(c: &mut Criterion) {
    let twin = vec![0u8; 4096];
    let mut uniform = twin.clone();
    uniform[100] = 1;
    let mut alternating = twin.clone();
    for w in (0..1024).step_by(2) {
        alternating[w * 4] = 0xFF;
    }
    c.bench_function("page_diff_uniform", |b| {
        b.iter(|| black_box(PageDiff::compute(&uniform, &twin)))
    });
    c.bench_function("page_diff_alternating", |b| {
        b.iter(|| black_box(PageDiff::compute(&alternating, &twin)))
    });
    let diff = PageDiff::compute(&alternating, &twin);
    c.bench_function("page_diff_apply", |b| {
        let mut page = twin.clone();
        b.iter(|| {
            diff.apply(&mut page);
            black_box(&page);
        })
    });
}

fn bench_rt_collect(c: &mut Criterion) {
    let mut lb = LayoutBuilder::new();
    let alloc = lb.alloc("x", 1 << 16, MemClass::Shared, 3);
    let layout = lb.build();
    let binding = Binding::new(vec![alloc.range()]);
    c.bench_function("rt_collect_64KB_binding", |b| {
        let mut store = LocalStore::new(Arc::clone(&layout));
        let mut dirty = rt::DirtyMap::new(&layout);
        for i in (0..8192).step_by(5) {
            rt::mark_write(&mut dirty, &layout, alloc.addr + i * 8, 8);
        }
        let mut now = 10;
        b.iter(|| {
            now += 1;
            black_box(rt::collect(
                &mut store, &mut dirty, &layout, &binding, 1, now,
            ))
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // A small but complete cluster run: how much host time one simulated
    // lock hand-off costs, per backend.
    for backend in [BackendKind::Rt, BackendKind::Vm] {
        c.bench_function(&format!("cluster_100_handoffs_{backend:?}"), |b| {
            b.iter(|| {
                let mut sb = SystemBuilder::new();
                let data = sb.shared_array::<u64>("d", 64, 1);
                let lock = sb.lock(vec![data.full_range()]);
                let spec = sb.build();
                let run = Midway::run(MidwayConfig::new(2, backend), &spec, |p: &mut Proc| {
                    for _ in 0..50 {
                        p.acquire(lock);
                        let v = p.read(&data, 0);
                        p.write(&data, 0, v + 1);
                        p.release(lock);
                    }
                })
                .unwrap();
                black_box(run.finish_time)
            })
        });
    }
}

criterion_group!(
    benches,
    bench_dirtybits,
    bench_diff,
    bench_rt_collect,
    bench_end_to_end
);
criterion_main!(benches);
