//! Plain-text table rendering for the benchmark harnesses.

use std::fmt;

/// A simple aligned text table.
///
/// The first column is left-aligned (row labels); all other columns are
/// right-aligned (numbers). Rendering matches what the harness binaries
/// print and what `EXPERIMENTS.md` records.
///
/// # Examples
///
/// ```
/// use midway_stats::TextTable;
///
/// let mut t = TextTable::new(&["App", "RT", "VM"]);
/// t.row(&["water", "15.6", "309.6"]);
/// let s = t.to_string();
/// assert!(s.contains("water"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    left_cols: usize,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> TextTable {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            left_cols: 1,
        }
    }

    /// Left-aligns the first `n` columns (labels) instead of just the
    /// first; the rest stay right-aligned (numbers).
    pub fn left_cols(mut self, n: usize) -> TextTable {
        self.left_cols = n;
        self
    }

    /// Appends a row. Short rows are padded with empty cells.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells.iter().map(|c| c.as_ref().to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a separator row (rendered as a dashed line).
    pub fn separator(&mut self) {
        self.rows.push(Vec::new());
    }

    /// Number of data rows (separators included).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, separators skipped.
    pub fn data_rows(&self) -> impl Iterator<Item = &[String]> {
        self.rows
            .iter()
            .filter(|r| !r.is_empty())
            .map(Vec::as_slice)
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (no alignment, separators skipped).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            if row.is_empty() {
                continue;
            }
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            if i < self.left_cols {
                write!(f, "{:<width$}", h, width = widths[i])?;
            } else {
                write!(f, "{:>width$}", h, width = widths[i])?;
            }
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            if row.is_empty() {
                writeln!(f, "{}", "-".repeat(total))?;
                continue;
            }
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i < self.left_cols {
                    write!(f, "{:<width$}", c, width = widths[i])?;
                } else {
                    write!(f, "{:>width$}", c, width = widths[i])?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["Op", "Count"]);
        t.row(&["dirtybits set", "43,180"]);
        t.row(&["faults", "258"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Op"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned: both data rows end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[2].ends_with("43,180"));
        assert!(lines[3].ends_with("258"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(&["A", "B", "C"]);
        t.row(&["x"]);
        assert_eq!(t.len(), 1);
        let _ = t.to_string(); // must not panic
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a,b", "1"]);
        t.separator();
        t.row(&["plain", "2"]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,value\n\"a,b\",1\nplain,2\n");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(&["only"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains("only"));
    }
}
