//! Parameter sweep helpers for the Figure 3/4 experiments.

use crate::cost::CostModel;

/// `n` evenly spaced integers from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or `hi < lo`.
pub fn linspace_u64(lo: u64, hi: u64, n: usize) -> Vec<u64> {
    assert!(n >= 2, "need at least two sweep points");
    assert!(hi >= lo, "sweep range must be nondecreasing");
    (0..n)
        .map(|i| lo + (hi - lo) * i as u64 / (n as u64 - 1))
        .collect()
}

/// The page-fault service-time sweep used by Figures 3 and 4.
///
/// The paper varies the fault time between 122 µs (Thekkath & Levy's fast
/// exception handler plus the unavoidable 4 KB twin copy) and 1200 µs
/// (Mach's external pager).
#[derive(Clone, Copy, Debug)]
pub struct FaultSweep {
    /// Low end of the sweep, in microseconds (paper: 122).
    pub lo_micros: u64,
    /// High end of the sweep, in microseconds (paper: 1200).
    pub hi_micros: u64,
    /// Number of sweep points, including both endpoints.
    pub points: usize,
}

impl FaultSweep {
    /// The paper's sweep range with the given number of points.
    pub fn paper(points: usize) -> FaultSweep {
        FaultSweep {
            lo_micros: 122,
            hi_micros: 1200,
            points,
        }
    }

    /// Yields one [`CostModel`] per sweep point, derived from `base`.
    pub fn models(&self, base: CostModel) -> Vec<CostModel> {
        linspace_u64(self.lo_micros, self.hi_micros, self.points)
            .into_iter()
            .map(|us| base.with_fault_micros(us as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_includes_endpoints() {
        let v = linspace_u64(122, 1200, 5);
        assert_eq!(v.first(), Some(&122));
        assert_eq!(v.last(), Some(&1200));
        assert_eq!(v.len(), 5);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn paper_sweep_spans_fast_to_mach() {
        let models = FaultSweep::paper(3).models(CostModel::r3000_mach());
        assert_eq!(models[0].page_write_fault, 122 * 25);
        assert_eq!(models[2].page_write_fault, 30_000);
    }
}
