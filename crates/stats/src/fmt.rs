//! Number formatting for report tables.

/// Formats an unsigned integer with thousands separators: `1284004` →
/// `"1,284,004"`.
pub fn fmt_u64(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    let offset = digits.len() % 3;
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (i + 3 - offset).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Formats a float with `decimals` fractional digits and thousands
/// separators in the integer part: `3499.25` → `"3,499.2"` (1 decimal).
pub fn fmt_f64(v: f64, decimals: usize) -> String {
    let formatted = format!("{v:.decimals$}");
    let (sign, rest) = match formatted.strip_prefix('-') {
        Some(r) => ("-", r),
        None => ("", formatted.as_str()),
    };
    let (int_part, frac_part) = match rest.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (rest, None),
    };
    let grouped = fmt_u64(int_part.parse::<u64>().unwrap_or(0));
    match frac_part {
        Some(f) => format!("{sign}{grouped}.{f}"),
        None => format!("{sign}{grouped}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_integers() {
        assert_eq!(fmt_u64(0), "0");
        assert_eq!(fmt_u64(999), "999");
        assert_eq!(fmt_u64(1_000), "1,000");
        assert_eq!(fmt_u64(1_284_004), "1,284,004");
        assert_eq!(fmt_u64(30_000), "30,000");
    }

    #[test]
    fn groups_floats() {
        assert_eq!(fmt_f64(3499.25, 1), "3,499.2");
        assert_eq!(fmt_f64(0.36, 3), "0.360");
        assert_eq!(fmt_f64(-29.1, 1), "-29.1");
        assert_eq!(fmt_f64(1200.0, 0), "1,200");
    }
}
