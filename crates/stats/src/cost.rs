//! The primitive-operation cost model (paper Table 1).

/// Measured costs of the primitive operations, in cycles.
///
/// These are the paper's Table 1 values for a 25 MHz MIPS R3000 running
/// Mach 3.0 with a 4 KB page size. All simulation charging goes through
/// this structure so that the Figure 3/4 sweeps (varying the page-fault
/// service time between a fast exception handler at 122 µs and Mach's
/// external pager at 1200 µs) are a one-field change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Processor clock rate in MHz (paper: 25).
    pub mhz: u32,
    /// Virtual-memory page size in bytes (paper: 4096).
    pub page_size: usize,

    // --- RT-DSM primitives ---
    /// Dirtybit set for a word write (paper: 9 cycles / 0.360 µs).
    pub dirtybit_set_word: u64,
    /// Dirtybit set for a doubleword write (paper: 9 cycles).
    pub dirtybit_set_double: u64,
    /// Penalty for a misclassified write to private memory: the private
    /// template returns without side effects (paper: 6 cycles).
    pub dirtybit_set_private: u64,
    /// Inline+template base cost for an area (multi-line) write; the
    /// per-line dirtybit stores are charged on top. Estimated from the
    /// Appendix A description (stack frame + register saves + call).
    pub dirtybit_set_area_base: u64,
    /// Reading a clean dirtybit during collection (paper: 5 cycles).
    pub dirtybit_read_clean: u64,
    /// Reading a dirty dirtybit during collection (paper: 4 cycles).
    pub dirtybit_read_dirty: u64,
    /// Updating a dirtybit with a new timestamp (paper: 2 cycles).
    pub dirtybit_update: u64,

    // --- exact measured microseconds for the rounded cycle entries ---
    // Table 1 reports both cycles and µs; the cycle column is rounded
    // (0.217 µs is 5.425 cycles at 25 MHz). The integer cycle fields above
    // drive deterministic simulation charging; these µs values drive the
    // Table 3/4 derivations, exactly as the paper computes them.
    /// Clean dirtybit read, measured (paper: 0.217 µs).
    pub dirtybit_read_clean_us: f64,
    /// Dirty dirtybit read, measured (paper: 0.187 µs).
    pub dirtybit_read_dirty_us: f64,
    /// Dirtybit timestamp update, measured (paper: 0.067 µs).
    pub dirtybit_update_us: f64,
    /// Uniform-page diff, measured (paper: 260 µs; the cycle column's
    /// 7,000 is likewise rounded).
    pub page_diff_uniform_us: f64,

    // --- §3.5 RT variants ---
    /// Per-write cost of the update-queue variant (paper: "roughly triples
    /// the cost of write trapping" → 27 cycles).
    pub dirtybit_set_queue: u64,
    /// Per-write cost of the two-level dirtybit variant (paper: one extra
    /// store, "increasing its length by about 10%" → 10 cycles).
    pub dirtybit_set_two_level: u64,
    /// Reading a first-level (summary) dirtybit during collection.
    pub two_level_l1_read: u64,

    // --- VM-DSM primitives ---
    /// Servicing a page write fault, including the page copy (twin) and the
    /// protection call (paper: 30,000 cycles / 1200 µs with Mach's external
    /// pager; 122 µs with a fast exception handler). Sweepable.
    pub page_write_fault: u64,
    /// Diffing a page when none or all of the data changed
    /// (paper: 7,000 cycles / 260 µs).
    pub page_diff_uniform: u64,
    /// Diffing a page when every other word changed
    /// (paper: 46,750 cycles / 1870 µs).
    pub page_diff_alternating: u64,
    /// Protection call to allow read-write access (paper: 3,125 cycles).
    pub protect_rw: u64,
    /// Protection call to allow read-only access (paper: 3,175 cycles).
    pub protect_ro: u64,
    /// Block copy per KB, cold cache (paper: 2,100 cycles).
    pub copy_per_kb_cold: u64,
    /// Block copy per KB, warm cache (paper: 650 cycles).
    pub copy_per_kb_warm: u64,
}

impl CostModel {
    /// The paper's measured values (Table 1): 25 MHz R3000, Mach 3.0.
    pub fn r3000_mach() -> CostModel {
        CostModel {
            mhz: 25,
            page_size: 4096,
            dirtybit_set_word: 9,
            dirtybit_set_double: 9,
            dirtybit_set_private: 6,
            dirtybit_set_area_base: 30,
            dirtybit_read_clean: 5,
            dirtybit_read_dirty: 4,
            dirtybit_update: 2,
            dirtybit_read_clean_us: 0.217,
            dirtybit_read_dirty_us: 0.187,
            dirtybit_update_us: 0.067,
            page_diff_uniform_us: 260.0,
            dirtybit_set_queue: 27,
            dirtybit_set_two_level: 10,
            two_level_l1_read: 5,
            page_write_fault: 30_000,
            page_diff_uniform: 7_000,
            page_diff_alternating: 46_750,
            protect_rw: 3_125,
            protect_ro: 3_175,
            copy_per_kb_cold: 2_100,
            copy_per_kb_warm: 650,
        }
    }

    /// Returns this model with the page-fault service time replaced by
    /// `micros` microseconds (the Figure 3/4 sweep axis).
    pub fn with_fault_micros(mut self, micros: f64) -> CostModel {
        self.page_write_fault = (micros * self.mhz as f64).round() as u64;
        self
    }

    /// The page-fault service time of this model, in microseconds.
    pub fn fault_micros(&self) -> f64 {
        self.page_write_fault as f64 / self.mhz as f64
    }

    /// Converts cycles to microseconds under this model's clock.
    pub fn cycles_to_micros(&self, cycles: u64) -> f64 {
        cycles as f64 / self.mhz as f64
    }

    /// Converts cycles to milliseconds under this model's clock.
    pub fn cycles_to_millis(&self, cycles: u64) -> f64 {
        self.cycles_to_micros(cycles) / 1_000.0
    }

    /// Converts cycles to seconds under this model's clock.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        self.cycles_to_micros(cycles) / 1_000_000.0
    }

    /// Cost of diffing one page whose changed words form `changed_runs`
    /// maximal runs, out of `words` comparable words.
    ///
    /// The paper gives two endpoints: a uniform page (none or all changed,
    /// 7,000 cycles — a pure scan) and the worst case of every other word
    /// changed (46,750 cycles — `words/2` runs, each paying run-start
    /// bookkeeping). We interpolate linearly in the number of runs, which
    /// matches both endpoints and charges intermediate pages by how
    /// fragmented their modifications are.
    pub fn page_diff_cycles(&self, changed_runs: usize, words: usize) -> u64 {
        if words == 0 {
            return self.page_diff_uniform;
        }
        let max_runs = (words / 2).max(1);
        let runs = changed_runs.min(max_runs) as u64;
        let span = self
            .page_diff_alternating
            .saturating_sub(self.page_diff_uniform);
        self.page_diff_uniform + span * runs / max_runs as u64
    }

    /// Cost of copying `bytes` with the given cache temperature.
    pub fn copy_cycles(&self, bytes: usize, warm: bool) -> u64 {
        let per_kb = if warm {
            self.copy_per_kb_warm
        } else {
            self.copy_per_kb_cold
        };
        (bytes as u64 * per_kb).div_ceil(1024)
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::r3000_mach()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_round_trip_to_microseconds() {
        let c = CostModel::r3000_mach();
        // Table 1: 9 cycles = 0.360 µs, 30,000 cycles = 1200 µs.
        assert!((c.cycles_to_micros(c.dirtybit_set_word) - 0.360).abs() < 1e-9);
        assert!((c.fault_micros() - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn fault_sweep_endpoint_matches_fast_exception_handler() {
        let c = CostModel::r3000_mach().with_fault_micros(122.0);
        assert_eq!(c.page_write_fault, 3_050);
    }

    #[test]
    fn diff_interpolation_hits_both_paper_endpoints() {
        let c = CostModel::r3000_mach();
        let words = 1024; // 4 KB page of 4-byte words
        assert_eq!(c.page_diff_cycles(0, words), 7_000);
        assert_eq!(c.page_diff_cycles(1, words), 7_000 + (46_750 - 7_000) / 512);
        assert_eq!(c.page_diff_cycles(512, words), 46_750);
        // More runs than possible is clamped.
        assert_eq!(c.page_diff_cycles(10_000, words), 46_750);
    }

    #[test]
    fn copy_cost_scales_per_kb() {
        let c = CostModel::r3000_mach();
        assert_eq!(c.copy_cycles(4096, false), 4 * 2_100);
        assert_eq!(c.copy_cycles(1024, true), 650);
        // Partial KBs round up.
        assert_eq!(c.copy_cycles(1, true), 1);
        assert_eq!(c.copy_cycles(0, true), 0);
    }
}
