//! Cost model and reporting utilities for the Midway DSM reproduction.
//!
//! This crate holds the paper's measured primitive-operation costs
//! (Table 1), helpers to sweep model parameters (the page-fault service
//! time axis of Figures 3 and 4), and plain-text table/CSV rendering used
//! by the benchmark harnesses.

mod cost;
mod fmt;
mod sweep;
mod table;

pub use cost::CostModel;
pub use fmt::{fmt_f64, fmt_u64};
pub use sweep::{linspace_u64, FaultSweep};
pub use table::TextTable;
