//! Transport abstraction for the Midway DSM reproduction.
//!
//! The DSM protocol engine in `midway-core` was written against the
//! virtual-time simulator's `ProcHandle`. This crate extracts that
//! surface into the [`Transport`] trait and provides the second
//! implementation the paper's real 8-node cluster calls for:
//! [`RealTransport`], which runs one OS thread per processor over real
//! loopback sockets with a wall clock standing in for the virtual clock.
//!
//! ```text
//!                    protocol engine (midway-core)
//!                               │ generic over
//!                               ▼
//!                        trait Transport
//!                        ┌──────┴────────┐
//!             ProcHandle<M>          RealTransport<M: Wire>
//!          (midway-sim, impl #1)      (this crate, impl #2)
//!          virtual time, exactly     wall clock, OS threads,
//!          reproducible              TCP or lossy UDP loopback
//! ```
//!
//! Real frames are serialized with the dependency-free [`Wire`] codec;
//! [`RealCluster::run`] is the socket-backed counterpart of the
//! simulator's `Cluster::run`.

mod hub;
mod real;
mod transport;
mod wire;

pub use real::{
    RealCluster, RealConfig, RealError, RealMode, RealOutcome, RealTransport, MAX_UDP_PAYLOAD,
};
pub use transport::Transport;
pub use wire::{
    decode_exact, encode_to_vec, put_bytes, put_u32, put_u64, Wire, WireError, WireReader,
};
