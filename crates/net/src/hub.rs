//! Shared in-process state for a real-transport run: per-processor
//! inboxes, the distributed-quiescence detector, and the poison channel
//! that aborts every thread on the first failure.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering::SeqCst};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Why a real-transport run was aborted. Converted to
/// [`RealError`](crate::RealError) at the end of the run.
#[derive(Clone, Debug)]
pub(crate) enum RealPoison {
    /// A protocol layer reported an invariant violation.
    Protocol { proc: usize, message: String },
    /// The runtime reported an application API misuse.
    App { proc: usize, message: String },
    /// A processor closure panicked.
    Panic { proc: usize, message: String },
    /// A socket operation failed or a frame failed to decode.
    Io { proc: usize, message: String },
    /// The wall-clock watchdog fired.
    Watchdog { secs: u64, dumps: Vec<String> },
}

/// Panic payload used to unwind a processor thread out of a poisoned run.
/// The poison itself is already stored in the hub when this is thrown.
pub(crate) struct RealAbort;

/// What a processor is doing right now, for watchdog dumps and for
/// deciding whether a reader-side EOF is expected.
pub(crate) mod status {
    pub const APP: u8 = 0;
    pub const RECV: u8 = 1;
    pub const DRAIN: u8 = 2;
    pub const FINISHED: u8 = 3;

    pub fn label(s: u8) -> &'static str {
        match s {
            APP => "app",
            RECV => "recv",
            DRAIN => "drain",
            FINISHED => "finished",
            _ => "?",
        }
    }
}

/// Minimum global inactivity before a UDP-mode hub may quiesce. Loopback
/// datagram delivery is microseconds; anything still "in flight" after
/// this long is genuinely lost and the reliable layer's timers (which
/// block quiescence on their own) are responsible for it.
const UDP_SETTLE_NANOS: u64 = 5_000_000;

/// A self-posted timer waiting in a processor's local heap. Ordered by
/// `(deliver_at_nanos, seq)` with the comparison inverted so that
/// `BinaryHeap`'s max element is the *earliest* deadline.
pub(crate) struct TimerEntry<M> {
    pub at_nanos: u64,
    pub seq: u64,
    pub msg: M,
}

impl<M> PartialEq for TimerEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.at_nanos, self.seq) == (other.at_nanos, other.seq)
    }
}

impl<M> Eq for TimerEntry<M> {}

impl<M> PartialOrd for TimerEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for TimerEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted: the heap's max is the earliest (at, seq).
        (other.at_nanos, other.seq).cmp(&(self.at_nanos, self.seq))
    }
}

/// Per-run shared state. One `Arc<Hub<M>>` is shared by every processor
/// thread, socket reader thread, and the watchdog.
///
/// # Quiescence
///
/// `drain_recv` must return `None` exactly when nothing can ever arrive
/// again. With no global scheduler that is a distributed-termination
/// problem; the hub solves it with counters and a double-read validation:
///
/// a processor that is draining with an empty inbox and no local timers
/// marks itself `idle_drain` and then checks, in order: every processor
/// is `idle_drain`, no processor is mid-handler (`busy`), no timers are
/// pending anywhere, every inbox is empty, and (on TCP, where the wire is
/// lossless) every frame sent has been received. The `activity` counter
/// is read before and after; any state change in between bumps it, so a
/// stable double-read means all the individual reads observed one
/// consistent quiet state. Once such a state exists it is permanent —
/// every message originates from a non-idle processor or an in-flight
/// frame, and there are none — so committing `quiesced` is safe.
///
/// On UDP the frame counters are skipped (datagrams may be genuinely
/// lost, so `sent == received` may never hold); two substitutes apply.
/// First, a settle window: quiescence cannot commit until the whole hub
/// has been inactive for [`UDP_SETTLE`], which dwarfs loopback delivery
/// latency and closes the window where a datagram is out of the sender
/// but not yet in an inbox. Second, for the DSM the reliable channel
/// above carries the real guarantee: its retransmit timer is armed
/// exactly while data is unacknowledged, so "no timers pending anywhere"
/// already implies every data frame was delivered. Stray duplicate or
/// ack datagrams may land after quiescence and are simply never read —
/// they carry no protocol obligations.
pub(crate) struct Hub<M> {
    pub procs: usize,
    pub start: Instant,
    /// Whether `frames_sent == frames_received` participates in the
    /// quiescence check (true for TCP, false for UDP).
    pub track_frames: bool,
    inboxes: Vec<Mutex<VecDeque<(usize, M)>>>,
    conds: Vec<Condvar>,
    inbox_len: Vec<AtomicUsize>,
    pub idle_drain: Vec<AtomicBool>,
    pub busy: Vec<AtomicBool>,
    pub pending_self: Vec<AtomicU64>,
    pub status: Vec<AtomicU8>,
    pub last_event_ms: Vec<AtomicU64>,
    /// Each processor's reliable-channel incarnation epoch (0 = never
    /// crashed), published via `Transport::note_recovery_status` for
    /// watchdog dumps.
    pub epoch: Vec<AtomicU64>,
    /// Sequence number of each processor's last stable checkpoint
    /// (0 = none yet), published alongside the epoch.
    pub last_ckpt: Vec<AtomicU64>,
    pub frames_sent: AtomicU64,
    pub frames_received: AtomicU64,
    /// Messages handed to processor closures (network + self timers).
    pub delivered: AtomicU64,
    activity: AtomicU64,
    /// Hub-relative nanos of the last activity bump (UDP settle window).
    last_activity: AtomicU64,
    quiesced: AtomicBool,
    poisoned: AtomicBool,
    pub done: AtomicBool,
    poison: Mutex<Option<RealPoison>>,
}

impl<M: Send> Hub<M> {
    pub fn new(procs: usize, track_frames: bool) -> Hub<M> {
        Hub {
            procs,
            start: Instant::now(),
            track_frames,
            inboxes: (0..procs).map(|_| Mutex::new(VecDeque::new())).collect(),
            conds: (0..procs).map(|_| Condvar::new()).collect(),
            inbox_len: (0..procs).map(|_| AtomicUsize::new(0)).collect(),
            idle_drain: (0..procs).map(|_| AtomicBool::new(false)).collect(),
            busy: (0..procs).map(|_| AtomicBool::new(false)).collect(),
            pending_self: (0..procs).map(|_| AtomicU64::new(0)).collect(),
            status: (0..procs).map(|_| AtomicU8::new(status::APP)).collect(),
            last_event_ms: (0..procs).map(|_| AtomicU64::new(0)).collect(),
            epoch: (0..procs).map(|_| AtomicU64::new(0)).collect(),
            last_ckpt: (0..procs).map(|_| AtomicU64::new(0)).collect(),
            frames_sent: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            activity: AtomicU64::new(0),
            last_activity: AtomicU64::new(0),
            quiesced: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            done: AtomicBool::new(false),
            poison: Mutex::new(None),
        }
    }

    /// Nanoseconds since the run started (shared epoch for all clocks).
    pub fn nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Bumps the activity counter, invalidating any in-progress
    /// quiescence double-read and restarting the settle window.
    pub fn bump(&self) {
        self.last_activity.store(self.nanos(), SeqCst);
        self.activity.fetch_add(1, SeqCst);
    }

    pub fn touch(&self, proc: usize) {
        self.last_event_ms[proc].store(self.nanos() / 1_000_000, SeqCst);
    }

    pub fn quiesced(&self) -> bool {
        self.quiesced.load(SeqCst)
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(SeqCst)
    }

    /// Delivers a network message into `dst`'s inbox and wakes it.
    /// `frames_received` is incremented only *after* the push so the
    /// TCP quiescence check can never observe "all frames received" while
    /// a decoded frame is still outside every inbox.
    pub fn push(&self, dst: usize, src: usize, msg: M) {
        {
            let mut q = lock(&self.inboxes[dst]);
            q.push_back((src, msg));
            self.inbox_len[dst].fetch_add(1, SeqCst);
            self.bump();
            self.conds[dst].notify_all();
        }
        self.frames_received.fetch_add(1, SeqCst);
    }

    /// Pops the next inbox message for `me`, if any.
    pub fn try_pop(&self, me: usize) -> Option<(usize, M)> {
        let mut q = lock(&self.inboxes[me]);
        let item = q.pop_front()?;
        self.inbox_len[me].fetch_sub(1, SeqCst);
        self.bump();
        Some(item)
    }

    /// Blocks `me` for up to `timeout` waiting for an inbox push, a
    /// poison, or quiescence — whichever notifies first.
    pub fn wait(&self, me: usize, timeout: std::time::Duration) {
        let q = lock(&self.inboxes[me]);
        if !q.is_empty() || self.is_poisoned() || self.quiesced() {
            return;
        }
        let _ = self.conds[me]
            .wait_timeout(q, timeout)
            .unwrap_or_else(PoisonError::into_inner);
    }

    pub fn notify_all(&self) {
        for c in &self.conds {
            c.notify_all();
        }
    }

    /// Attempts to commit global quiescence; returns true on success.
    /// Called by draining processors; see the type-level docs for the
    /// correctness argument.
    pub fn try_quiesce(&self) -> bool {
        if self.quiesced() {
            return true;
        }
        let before = self.activity.load(SeqCst);
        let all_idle = (0..self.procs).all(|p| self.idle_drain[p].load(SeqCst));
        if !all_idle {
            return false;
        }
        if self.busy.iter().any(|b| b.load(SeqCst)) {
            return false;
        }
        if self
            .pending_self
            .iter()
            .map(|p| p.load(SeqCst))
            .sum::<u64>()
            != 0
        {
            return false;
        }
        if self.inbox_len.iter().map(|l| l.load(SeqCst)).sum::<usize>() != 0 {
            return false;
        }
        if self.track_frames {
            if self.frames_sent.load(SeqCst) != self.frames_received.load(SeqCst) {
                return false;
            }
        } else if self.nanos().saturating_sub(self.last_activity.load(SeqCst)) < UDP_SETTLE_NANOS {
            return false;
        }
        if self.activity.load(SeqCst) != before {
            return false;
        }
        if self.is_poisoned() {
            return false;
        }
        self.quiesced.store(true, SeqCst);
        self.notify_all();
        true
    }

    /// Records the first poison and wakes everyone. Does not unwind the
    /// caller — socket reader threads and the watchdog use this and then
    /// exit normally.
    pub fn fail_soft(&self, poison: RealPoison) {
        {
            let mut slot = lock(&self.poison);
            if slot.is_none() {
                *slot = Some(poison);
            }
        }
        self.poisoned.store(true, SeqCst);
        self.bump();
        self.notify_all();
    }

    pub fn take_poison(&self) -> Option<RealPoison> {
        lock(&self.poison).take()
    }

    /// One human-readable line per processor, for watchdog abort reports.
    /// Includes the processor's last published crash-tolerance status —
    /// incarnation epoch and last stable checkpoint ("none" before the
    /// first) — so a hang after a recovery is attributable from the dump
    /// alone.
    pub fn dump(&self) -> Vec<String> {
        (0..self.procs)
            .map(|p| {
                let ckpt = match self.last_ckpt[p].load(SeqCst) {
                    0 => "none".to_string(),
                    seq => format!("#{seq}"),
                };
                format!(
                    "proc {p}: status={} idle_drain={} busy={} inbox={} pending_self={} \
                     epoch={} ckpt={ckpt} last_event=+{}ms",
                    status::label(self.status[p].load(SeqCst)),
                    self.idle_drain[p].load(SeqCst),
                    self.busy[p].load(SeqCst),
                    self.inbox_len[p].load(SeqCst),
                    self.pending_self[p].load(SeqCst),
                    self.epoch[p].load(SeqCst),
                    self.last_event_ms[p].load(SeqCst),
                )
            })
            .collect()
    }
}

/// The hub's mutexes are only held for queue operations that cannot
/// panic, so a poisoned guard is always recoverable.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_reports_recovery_status_per_proc() {
        let hub: Hub<()> = Hub::new(2, true);
        hub.epoch[1].store(3, SeqCst);
        hub.last_ckpt[1].store(7, SeqCst);
        let lines = hub.dump();
        assert_eq!(lines.len(), 2);
        // A never-crashed, never-checkpointed processor reads epoch 0 and
        // "none" — the dump must not invent a checkpoint sequence.
        assert!(
            lines[0].starts_with("proc 0: status=app"),
            "unexpected line: {}",
            lines[0]
        );
        assert!(lines[0].contains("epoch=0 ckpt=none"), "{}", lines[0]);
        assert!(lines[1].contains("epoch=3 ckpt=#7"), "{}", lines[1]);
        // The whole line keeps the fixed key=value shape the watchdog
        // report parser-by-eyeball relies on.
        for key in [
            "status=",
            "idle_drain=",
            "busy=",
            "inbox=",
            "pending_self=",
            "last_event=+",
        ] {
            assert!(lines[1].contains(key), "missing {key} in {}", lines[1]);
        }
    }
}
