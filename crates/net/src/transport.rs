//! The transport seam: the exact message-passing surface the DSM protocol
//! engine needs, abstracted from the virtual-time simulator.

use midway_sim::{Category, ProcHandle, VirtualTime};

/// The message-passing surface a processor's protocol engine runs against.
///
/// This trait is extracted verbatim from the concrete
/// [`ProcHandle`](midway_sim::ProcHandle) API the DSM runtime was written
/// on: per-processor identity, a cycle clock with charge categories,
/// point-to-point `send`, blocking `recv`, the quiescence-aware
/// `drain_recv`, the `post_self` timer primitive, and typed violation
/// reporting. Anything that implements it can host the protocol engine
/// unchanged; the repo ships two implementations:
///
/// * the virtual-time simulator's `ProcHandle` (deterministic, impl #1),
/// * [`RealTransport`](crate::RealTransport) over loopback TCP or UDP
///   sockets with one OS thread per processor (wall-clock, impl #2).
///
/// # Contract
///
/// Implementations must preserve the properties the protocol engine
/// assumes:
///
/// * **Per-pair FIFO.** Messages from processor `a` to processor `b` are
///   delivered in send order. No ordering is promised across pairs.
/// * **Self-posts are local.** [`post_self`](Transport::post_self) never
///   touches the network and is delivered back to the poster (src = own
///   id) no earlier than `delay` cycles later.
/// * **Quiescence.** [`drain_recv`](Transport::drain_recv) returns `None`
///   only when every processor is draining and no message or timer is
///   outstanding anywhere.
/// * **Violations poison everyone.** The violation methods abort the whole
///   run with a typed error and wake every blocked peer; they never
///   return.
/// * **Monotone clock.** [`now`](Transport::now) never goes backwards.
pub trait Transport {
    /// The message type carried by this transport.
    type Msg;

    /// This processor's id, in `0..procs()`.
    fn id(&self) -> usize;

    /// The number of processors in the cluster.
    fn procs(&self) -> usize;

    /// Current time on this processor's clock, in cycles.
    fn now(&self) -> VirtualTime;

    /// Advances (or, for wall-clock transports, merely accounts) `cycles`
    /// against `cat` in the per-category breakdown.
    fn charge(&mut self, cat: Category, cycles: u64);

    /// Charges application compute time.
    fn work(&mut self, cycles: u64) {
        self.charge(Category::Compute, cycles);
    }

    /// Sends `msg` (declared wire size `bytes`) to processor `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is this processor or out of range.
    fn send(&mut self, dst: usize, msg: Self::Msg, bytes: u64);

    /// Schedules `msg` for delivery back to this processor after `delay`
    /// cycles, with no network charges. The deterministic timer primitive.
    fn post_self(&mut self, msg: Self::Msg, delay: u64);

    /// Receives the next message addressed to this processor, advancing
    /// the clock to its delivery time. Returns `(delivery time, src, msg)`.
    fn recv(&mut self) -> (VirtualTime, usize, Self::Msg);

    /// Like [`recv`](Transport::recv), but returns `None` once the whole
    /// cluster has quiesced (all processors draining, nothing in flight).
    fn drain_recv(&mut self) -> Option<(VirtualTime, usize, Self::Msg)>;

    /// Aborts the run with a typed protocol-invariant error. Never returns.
    fn protocol_violation(&mut self, message: String) -> !;

    /// Aborts the run with a typed application-misuse error. Never returns.
    fn app_violation(&mut self, message: String) -> !;

    /// Publishes this processor's crash-tolerance status — its
    /// reliable-channel incarnation epoch and the sequence number of its
    /// last stable checkpoint — to whatever observability surface the
    /// transport has. Purely informational: implementations must not let
    /// it affect delivery or timing. The default does nothing (the
    /// simulator's reports carry the same facts through counters); the
    /// real transport surfaces it in watchdog state dumps.
    fn note_recovery_status(&mut self, epoch: u32, checkpoint_seq: u64) {
        let _ = (epoch, checkpoint_seq);
    }
}

/// Impl #1: the virtual-time simulator's processor handle.
///
/// Every method forwards to the inherent `ProcHandle` method of the same
/// name, so code generic over [`Transport`] behaves bit-for-bit like code
/// written directly against the simulator.
impl<M: Send + Clone> Transport for ProcHandle<M> {
    type Msg = M;

    fn id(&self) -> usize {
        ProcHandle::id(self)
    }

    fn procs(&self) -> usize {
        ProcHandle::procs(self)
    }

    fn now(&self) -> VirtualTime {
        ProcHandle::now(self)
    }

    fn charge(&mut self, cat: Category, cycles: u64) {
        ProcHandle::charge(self, cat, cycles);
    }

    fn work(&mut self, cycles: u64) {
        ProcHandle::work(self, cycles);
    }

    fn send(&mut self, dst: usize, msg: M, bytes: u64) {
        ProcHandle::send(self, dst, msg, bytes);
    }

    fn post_self(&mut self, msg: M, delay: u64) {
        ProcHandle::post_self(self, msg, delay);
    }

    fn recv(&mut self) -> (VirtualTime, usize, M) {
        ProcHandle::recv(self)
    }

    fn drain_recv(&mut self) -> Option<(VirtualTime, usize, M)> {
        ProcHandle::drain_recv(self)
    }

    fn protocol_violation(&mut self, message: String) -> ! {
        ProcHandle::protocol_violation(self, message)
    }

    fn app_violation(&mut self, message: String) -> ! {
        ProcHandle::app_violation(self, message)
    }
}
