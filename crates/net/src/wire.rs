//! Hand-rolled wire encoding for real-transport frames.
//!
//! The workspace is deliberately free of external crates, so messages that
//! cross a real socket are serialized by a small fixed-width codec instead
//! of serde/bincode: little-endian scalars, `u32`-length-prefixed byte
//! strings, one tag byte per enum variant. The [`Wire`] trait is what a
//! message type must implement to ride [`RealTransport`](crate::RealTransport);
//! the DSM's `NetMsg` codec lives next to the message definitions in
//! `midway-core`.

use std::fmt;

/// A malformed or truncated wire frame.
///
/// Decoding failures are protocol-fatal on a real transport (there is no
/// way to resynchronize a corrupt stream), so errors carry a description
/// good enough to debug from a poison report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    /// Convenience constructor.
    pub fn new(msg: impl Into<String>) -> WireError {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// A cursor over a received frame's payload bytes.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a complete frame payload.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError(format!(
                "truncated frame: wanted {n} bytes for {what}, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, what: &str) -> Result<Vec<u8>, WireError> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    /// Asserts the frame is fully consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError(format!(
                "{} trailing bytes after a complete message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`-length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(
        out,
        u32::try_from(b.len()).expect("byte string fits in u32"),
    );
    out.extend_from_slice(b);
}

/// A message that can cross a real socket.
///
/// `encode` appends the full message to `out`; `decode` consumes exactly
/// one message from the reader. Round-tripping must be lossless:
/// `decode(encode(m)) == m`.
pub trait Wire: Sized {
    /// Serializes `self` onto the end of `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Deserializes one message, consuming its bytes from `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a message into a fresh buffer (helper for one-shot callers).
pub fn encode_to_vec<M: Wire>(msg: &M) -> Vec<u8> {
    let mut out = Vec::new();
    msg.encode(&mut out);
    out
}

/// Decodes a complete frame payload, requiring full consumption.
pub fn decode_exact<M: Wire>(buf: &[u8]) -> Result<M, WireError> {
    let mut r = WireReader::new(buf);
    let msg = M::decode(&mut r)?;
    r.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Probe {
        a: u64,
        b: u32,
        tag: u8,
        blob: Vec<u8>,
    }

    impl Wire for Probe {
        fn encode(&self, out: &mut Vec<u8>) {
            put_u64(out, self.a);
            put_u32(out, self.b);
            out.push(self.tag);
            put_bytes(out, &self.blob);
        }

        fn decode(r: &mut WireReader<'_>) -> Result<Probe, WireError> {
            Ok(Probe {
                a: r.u64("a")?,
                b: r.u32("b")?,
                tag: r.u8("tag")?,
                blob: r.bytes("blob")?,
            })
        }
    }

    #[test]
    fn round_trip_is_lossless() {
        let p = Probe {
            a: u64::MAX - 3,
            b: 0xDEAD_BEEF,
            tag: 7,
            blob: vec![1, 2, 3, 0, 255],
        };
        assert_eq!(decode_exact::<Probe>(&encode_to_vec(&p)).unwrap(), p);
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let p = Probe {
            a: 1,
            b: 2,
            tag: 3,
            blob: vec![9; 10],
        };
        let full = encode_to_vec(&p);
        for cut in 0..full.len() {
            assert!(
                decode_exact::<Probe>(&full[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let p = Probe {
            a: 1,
            b: 2,
            tag: 3,
            blob: vec![],
        };
        let mut full = encode_to_vec(&p);
        full.push(0);
        assert!(decode_exact::<Probe>(&full).is_err());
    }
}
