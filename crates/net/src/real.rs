//! Impl #2: a real transport over loopback sockets, one OS thread per
//! processor.
//!
//! Where the simulator interleaves processors deterministically under a
//! virtual clock, this transport runs them as genuinely concurrent OS
//! threads exchanging length-prefixed frames over `std::net` sockets —
//! TCP by default, or UDP with optional deterministic loss injection so
//! the DSM's go-back-N reliable channel has real packet loss to recover
//! from. The wall clock (scaled by a configurable cycles-per-microsecond
//! rate) stands in for the virtual clock.
//!
//! The concurrency architecture per processor:
//!
//! * the processor thread itself runs the application closure and owns
//!   the transport handle (lazily dialed write sockets, local timer heap);
//! * a listener/accept thread (TCP) or a socket reader thread (UDP)
//!   decodes inbound frames and pushes them into the processor's inbox
//!   in the shared [`Hub`];
//! * an optional watchdog thread aborts a hung run at a wall-clock
//!   deadline with a per-processor state dump.
//!
//! Each direction of each processor pair gets its own TCP stream (dialed
//! on first send), so per-pair FIFO follows directly from TCP's byte
//! ordering. UDP datagrams on loopback are also delivered in order in
//! practice, but the transport makes no such promise — the reliable
//! channel above handles loss, duplication, and reordering.

use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::Ordering::SeqCst;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use midway_sim::{
    Category, FaultDecision, FaultPlan, FaultStats, ProcReport, VirtualTime, CATEGORY_COUNT,
};

use crate::hub::{status, Hub, RealAbort, RealPoison, TimerEntry};
use crate::transport::Transport;
use crate::wire::{decode_exact, Wire};

/// Largest frame a TCP reader will accept (a corrupt length prefix must
/// not trigger a giant allocation).
const MAX_TCP_FRAME: usize = 1 << 28;

/// Largest payload sent in one UDP datagram. Loopback accepts datagrams
/// up to 64 KiB; anything bigger must use TCP.
pub const MAX_UDP_PAYLOAD: usize = 60_000;

/// How long a draining processor sleeps between quiescence probes.
const DRAIN_POLL: Duration = Duration::from_micros(500);

/// Condvar-wait cap for blocking receives (a guard against lost wakeups,
/// not a polling interval: pushes and poisons notify immediately).
const RECV_WAIT: Duration = Duration::from_millis(25);

/// Which socket flavor a real-transport run uses.
#[derive(Clone, Debug)]
pub enum RealMode {
    /// Length-prefixed frames over per-direction loopback TCP streams.
    /// Lossless and per-pair FIFO; the DSM can run with its reliable
    /// channel disabled, exactly as on the simulator's perfect network.
    Tcp,
    /// One datagram per message over loopback UDP, with deterministic
    /// loss/duplication injected at the send site per the embedded
    /// [`FaultPlan`]. The DSM must run its reliable channel on top.
    Udp {
        /// Per-message fault schedule (`FaultPlan::seeded(0)` for a
        /// lossless-but-untrusted link). `Reorder`/`Delay` decisions
        /// deliver normally: real sockets offer no delay hook. Boxed:
        /// the plan's crash table would otherwise dwarf `Tcp`.
        loss: Box<FaultPlan>,
    },
}

/// Configuration for a real-transport run.
#[derive(Clone, Debug)]
pub struct RealConfig {
    /// Socket flavor.
    pub mode: RealMode,
    /// Wall-clock to cycle conversion rate. The default, 25 cycles/µs,
    /// matches the paper's 25 MHz R3000 so cycle-denominated protocol
    /// constants (timeouts, backoffs) keep sensible real durations.
    pub cycles_per_micro: u64,
    /// Wall-clock deadline after which a hung run is aborted with
    /// per-processor state dumps. `None` disables the watchdog.
    pub watchdog: Option<Duration>,
}

impl RealConfig {
    /// Loopback TCP with the default clock rate and a 120 s watchdog.
    pub fn tcp() -> RealConfig {
        RealConfig {
            mode: RealMode::Tcp,
            cycles_per_micro: 25,
            watchdog: Some(Duration::from_secs(120)),
        }
    }

    /// Loopback UDP with the given loss plan, default clock rate, and a
    /// 120 s watchdog.
    pub fn udp(loss: FaultPlan) -> RealConfig {
        RealConfig {
            mode: RealMode::Udp {
                loss: Box::new(loss),
            },
            ..RealConfig::tcp()
        }
    }

    /// Replaces the clock conversion rate.
    pub fn cycles_per_micro(mut self, rate: u64) -> RealConfig {
        assert!(rate > 0, "clock rate must be positive");
        self.cycles_per_micro = rate;
        self
    }

    /// Replaces (or disables) the watchdog deadline.
    pub fn watchdog(mut self, deadline: Option<Duration>) -> RealConfig {
        self.watchdog = deadline;
        self
    }
}

impl Default for RealConfig {
    fn default() -> RealConfig {
        RealConfig::tcp()
    }
}

/// Why a real-transport run failed. The counterpart of the simulator's
/// `SimError`, plus socket and watchdog failures that cannot occur under
/// virtual time.
#[derive(Clone, Debug)]
pub enum RealError {
    /// A protocol layer detected an invariant violation.
    Protocol {
        /// The processor that detected the violation.
        proc: usize,
        /// Description of the violated invariant.
        message: String,
    },
    /// The runtime detected an application-level misuse of the DSM API.
    App {
        /// The processor whose application misused the API.
        proc: usize,
        /// Description of the misuse.
        message: String,
    },
    /// An application closure panicked on some processor.
    Panic {
        /// The processor whose closure panicked.
        proc: usize,
        /// The panic payload, rendered as a string where possible.
        message: String,
    },
    /// A socket operation failed or an inbound frame failed to decode.
    Io {
        /// The processor on whose behalf the operation ran.
        proc: usize,
        /// Description of the failure.
        message: String,
    },
    /// The wall-clock watchdog deadline passed before the run finished.
    Watchdog {
        /// The deadline that expired, in seconds.
        secs: u64,
        /// One state line per processor at the moment of the abort.
        dumps: Vec<String>,
    },
}

impl std::fmt::Display for RealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealError::Protocol { proc, message } => {
                write!(f, "protocol violation on processor {proc}: {message}")
            }
            RealError::App { proc, message } => {
                write!(f, "application violation on processor {proc}: {message}")
            }
            RealError::Panic { proc, message } => {
                write!(f, "processor {proc} panicked: {message}")
            }
            RealError::Io { proc, message } => {
                write!(f, "transport i/o failure on processor {proc}: {message}")
            }
            RealError::Watchdog { secs, dumps } => {
                writeln!(f, "real-transport run hung past the {secs}s watchdog:")?;
                for d in dumps {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RealError {}

impl From<RealPoison> for RealError {
    fn from(p: RealPoison) -> RealError {
        match p {
            RealPoison::Protocol { proc, message } => RealError::Protocol { proc, message },
            RealPoison::App { proc, message } => RealError::App { proc, message },
            RealPoison::Panic { proc, message } => RealError::Panic { proc, message },
            RealPoison::Io { proc, message } => RealError::Io { proc, message },
            RealPoison::Watchdog { secs, dumps } => RealError::Watchdog { secs, dumps },
        }
    }
}

/// The result of a successful real-transport run. Mirrors the simulator's
/// `RunOutcome`, but times are wall-clock-derived and therefore vary from
/// run to run.
#[derive(Debug)]
pub struct RealOutcome<R> {
    /// Per-processor closure return values, indexed by processor id.
    pub results: Vec<R>,
    /// Per-processor accounting, indexed by processor id.
    pub reports: Vec<ProcReport>,
    /// The latest per-processor final clock.
    pub finish_time: VirtualTime,
    /// Messages handed to processor closures (network + self timers).
    pub messages_delivered: u64,
}

/// Per-processor socket state.
enum Links {
    Tcp {
        addrs: Arc<Vec<SocketAddr>>,
        /// Outbound stream per destination, dialed on first send.
        writers: Vec<Option<TcpStream>>,
    },
    Udp {
        sock: UdpSocket,
        addrs: Arc<Vec<SocketAddr>>,
        loss: Box<FaultPlan>,
        /// Per-destination datagram sequence numbers feeding the loss plan.
        seqs: Vec<u64>,
    },
}

/// A real processor's transport handle: impl #2 of
/// [`Transport`](crate::Transport). Owned by exactly one OS thread.
pub struct RealTransport<M> {
    me: usize,
    procs: usize,
    cycles_per_micro: u64,
    hub: Arc<Hub<M>>,
    links: Links,
    timers: std::collections::BinaryHeap<TimerEntry<M>>,
    timer_seq: u64,
    charged: [u64; CATEGORY_COUNT],
    msgs_sent: u64,
    bytes_sent: u64,
    msgs_received: u64,
    fault_stats: FaultStats,
    scratch: Vec<u8>,
    busy_marked: bool,
    idle_marked: bool,
}

impl<M: Wire + Send> RealTransport<M> {
    fn cycles_to_nanos(&self, cycles: u64) -> u64 {
        cycles.saturating_mul(1_000) / self.cycles_per_micro
    }

    /// Poisons the run and unwinds this thread. Free of `&mut self` so it
    /// can be called while socket state is mutably borrowed.
    fn die(hub: &Hub<M>, poison: RealPoison) -> ! {
        hub.fail_soft(poison);
        panic_any(RealAbort)
    }

    fn clear_busy(&mut self) {
        if self.busy_marked {
            self.hub.busy[self.me].store(false, SeqCst);
            self.hub.bump();
            self.busy_marked = false;
        }
    }

    fn mark_active(&mut self) {
        if self.idle_marked {
            self.hub.idle_drain[self.me].store(false, SeqCst);
            self.hub.bump();
            self.idle_marked = false;
        }
        self.hub.busy[self.me].store(true, SeqCst);
        self.busy_marked = true;
        self.hub.delivered.fetch_add(1, SeqCst);
        self.hub.touch(self.me);
        self.hub.status[self.me].store(status::APP, SeqCst);
    }

    fn recv_inner(&mut self, draining: bool) -> Option<(VirtualTime, usize, M)> {
        self.hub.status[self.me].store(
            if draining {
                status::DRAIN
            } else {
                status::RECV
            },
            SeqCst,
        );
        // Returning from the previous recv marked this processor busy;
        // coming back for the next message ends that handler span.
        self.clear_busy();
        loop {
            if self.hub.is_poisoned() {
                panic_any(RealAbort);
            }
            if draining && self.hub.quiesced() {
                return None;
            }
            let now_ns = self.hub.nanos();
            if self.timers.peek().is_some_and(|e| e.at_nanos <= now_ns) {
                let e = self.timers.pop().expect("peeked entry");
                self.hub.pending_self[self.me].fetch_sub(1, SeqCst);
                self.hub.bump();
                self.mark_active();
                return Some((self.now(), self.me, e.msg));
            }
            if let Some((src, msg)) = self.hub.try_pop(self.me) {
                self.msgs_received += 1;
                self.mark_active();
                return Some((self.now(), src, msg));
            }
            let wait = match self.timers.peek() {
                // Sleep until the earliest timer (capped: a push still
                // wakes us immediately via the inbox condvar).
                Some(e) => {
                    Duration::from_nanos(e.at_nanos.saturating_sub(now_ns).max(1)).min(RECV_WAIT)
                }
                None if draining => {
                    if !self.idle_marked {
                        self.hub.idle_drain[self.me].store(true, SeqCst);
                        self.idle_marked = true;
                    }
                    if self.hub.try_quiesce() {
                        return None;
                    }
                    DRAIN_POLL
                }
                None => RECV_WAIT,
            };
            self.hub.wait(self.me, wait);
        }
    }

    fn send_tcp(
        hub: &Hub<M>,
        me: usize,
        addrs: &[SocketAddr],
        writers: &mut [Option<TcpStream>],
        dst: usize,
        payload: &[u8],
    ) {
        use std::io::Write;
        if writers[dst].is_none() {
            let stream = TcpStream::connect(addrs[dst])
                .and_then(|s| {
                    s.set_nodelay(true)?;
                    Ok(s)
                })
                .and_then(|mut s| {
                    // The hello frame tells the acceptor which processor
                    // this stream carries traffic from.
                    s.write_all(&u32::try_from(me).expect("proc id fits u32").to_le_bytes())?;
                    Ok(s)
                });
            match stream {
                Ok(s) => writers[dst] = Some(s),
                Err(e) => Self::die(
                    hub,
                    RealPoison::Io {
                        proc: me,
                        message: format!("dialing proc {dst}: {e}"),
                    },
                ),
            }
        }
        let w = writers[dst].as_mut().expect("just dialed");
        // Counted before the write so the quiescence check errs toward
        // "still in flight" if it races the push on the receiver side.
        hub.frames_sent.fetch_add(1, SeqCst);
        let len = u32::try_from(payload.len()).expect("frame fits u32");
        let io = w
            .write_all(&len.to_le_bytes())
            .and_then(|()| w.write_all(payload));
        if let Err(e) = io {
            Self::die(
                hub,
                RealPoison::Io {
                    proc: me,
                    message: format!("writing to proc {dst}: {e}"),
                },
            );
        }
    }

    fn report(&self) -> ProcReport {
        ProcReport {
            final_time: self.now(),
            breakdown: self.charged,
            msgs_sent: self.msgs_sent,
            bytes_sent: self.bytes_sent,
            msgs_received: self.msgs_received,
            fault_stats: self.fault_stats,
        }
    }
}

impl<M: Wire + Send> Transport for RealTransport<M> {
    type Msg = M;

    fn id(&self) -> usize {
        self.me
    }

    fn procs(&self) -> usize {
        self.procs
    }

    /// Wall-clock time since the run started, converted to cycles. The
    /// clock runs whether or not anything is charged; the per-category
    /// breakdown is purely observational here.
    fn now(&self) -> VirtualTime {
        VirtualTime(self.hub.nanos().saturating_mul(self.cycles_per_micro) / 1_000)
    }

    fn charge(&mut self, cat: Category, cycles: u64) {
        self.charged[cat as usize] += cycles;
    }

    fn send(&mut self, dst: usize, msg: M, bytes: u64) {
        assert!(dst < self.procs, "destination {dst} out of range");
        assert_ne!(
            dst, self.me,
            "self-send: local operations must not use the network"
        );
        self.msgs_sent += 1;
        self.bytes_sent += bytes;
        self.scratch.clear();
        match &mut self.links {
            Links::Tcp { addrs, writers } => {
                msg.encode(&mut self.scratch);
                Self::send_tcp(&self.hub, self.me, addrs, writers, dst, &self.scratch);
            }
            Links::Udp {
                sock,
                addrs,
                loss,
                seqs,
            } => {
                // Datagram layout: [u32 src][payload]. The loss plan sees
                // the same (src, dst, seq) identity the simulator's fault
                // layer would, so a given plan drops "the same" messages.
                self.scratch
                    .extend_from_slice(&u32::try_from(self.me).expect("id fits u32").to_le_bytes());
                msg.encode(&mut self.scratch);
                if self.scratch.len() - 4 > MAX_UDP_PAYLOAD {
                    Self::die(
                        &self.hub,
                        RealPoison::Io {
                            proc: self.me,
                            message: format!(
                                "message of {} bytes exceeds the {MAX_UDP_PAYLOAD}-byte UDP \
                                 payload limit; use the TCP mode",
                                self.scratch.len() - 4
                            ),
                        },
                    );
                }
                let seq = seqs[dst];
                seqs[dst] += 1;
                let copies = match loss.decide(self.me, dst, seq) {
                    FaultDecision::Drop => {
                        self.fault_stats.dropped += 1;
                        0
                    }
                    FaultDecision::Duplicate { .. } => {
                        self.fault_stats.duplicated += 1;
                        2
                    }
                    // Real sockets offer no delay hook; these deliver
                    // normally and are not counted as injected.
                    FaultDecision::Deliver
                    | FaultDecision::Reorder { .. }
                    | FaultDecision::Delay { .. } => 1,
                };
                for _ in 0..copies {
                    if let Err(e) = sock.send_to(&self.scratch, addrs[dst]) {
                        Self::die(
                            &self.hub,
                            RealPoison::Io {
                                proc: self.me,
                                message: format!("udp send to proc {dst}: {e}"),
                            },
                        );
                    }
                }
            }
        }
        self.hub.bump();
        self.hub.touch(self.me);
    }

    fn post_self(&mut self, msg: M, delay: u64) {
        let at_nanos = self.hub.nanos().saturating_add(self.cycles_to_nanos(delay));
        self.timers.push(TimerEntry {
            at_nanos,
            seq: self.timer_seq,
            msg,
        });
        self.timer_seq += 1;
        self.hub.pending_self[self.me].fetch_add(1, SeqCst);
    }

    fn recv(&mut self) -> (VirtualTime, usize, M) {
        self.recv_inner(false)
            .expect("blocking recv cannot observe quiescence")
    }

    fn drain_recv(&mut self) -> Option<(VirtualTime, usize, M)> {
        self.recv_inner(true)
    }

    fn protocol_violation(&mut self, message: String) -> ! {
        Self::die(
            &self.hub,
            RealPoison::Protocol {
                proc: self.me,
                message,
            },
        )
    }

    fn app_violation(&mut self, message: String) -> ! {
        Self::die(
            &self.hub,
            RealPoison::App {
                proc: self.me,
                message,
            },
        )
    }

    fn note_recovery_status(&mut self, epoch: u32, checkpoint_seq: u64) {
        self.hub.epoch[self.me].store(u64::from(epoch), SeqCst);
        self.hub.last_ckpt[self.me].store(checkpoint_seq, SeqCst);
    }
}

/// Entry point: runs one closure per processor, each on its own OS
/// thread, over real loopback sockets.
pub struct RealCluster;

impl RealCluster {
    /// Runs `f` on every processor of a real-transport cluster and
    /// collects the results. The counterpart of the simulator's
    /// `Cluster::run`.
    ///
    /// # Errors
    ///
    /// Returns [`RealError`] if any closure panics or reports a
    /// violation, a socket operation fails, or the watchdog deadline
    /// passes.
    pub fn run<M, R, F>(cfg: &RealConfig, procs: usize, f: F) -> Result<RealOutcome<R>, RealError>
    where
        M: Wire + Send + 'static,
        R: Send,
        F: Fn(&mut RealTransport<M>) -> R + Send + Sync,
    {
        assert!(procs > 0, "cluster needs at least one processor");
        let hub: Arc<Hub<M>> = Arc::new(Hub::new(procs, matches!(cfg.mode, RealMode::Tcp)));
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..procs).map(|_| None).collect());
        let reports: Mutex<Vec<Option<ProcReport>>> =
            Mutex::new((0..procs).map(|_| None).collect());

        // Bind every endpoint before any thread starts, so first sends
        // can dial without a handshake barrier.
        enum Sockets {
            Tcp(Vec<TcpListener>),
            Udp(Vec<UdpSocket>),
        }
        let bind_err = |e: std::io::Error| RealError::Io {
            proc: 0,
            message: format!("binding loopback socket: {e}"),
        };
        let (sockets, addrs) = match &cfg.mode {
            RealMode::Tcp => {
                let mut ls = Vec::with_capacity(procs);
                let mut addrs = Vec::with_capacity(procs);
                for _ in 0..procs {
                    let l = TcpListener::bind("127.0.0.1:0").map_err(bind_err)?;
                    addrs.push(l.local_addr().map_err(bind_err)?);
                    ls.push(l);
                }
                (Sockets::Tcp(ls), Arc::new(addrs))
            }
            RealMode::Udp { .. } => {
                let mut socks = Vec::with_capacity(procs);
                let mut addrs = Vec::with_capacity(procs);
                for _ in 0..procs {
                    let s = UdpSocket::bind("127.0.0.1:0").map_err(bind_err)?;
                    addrs.push(s.local_addr().map_err(bind_err)?);
                    socks.push(s);
                }
                (Sockets::Udp(socks), Arc::new(addrs))
            }
        };

        std::thread::scope(|s| {
            // Inbound plumbing: accept threads (TCP) or reader threads
            // (UDP), one per processor.
            match &sockets {
                Sockets::Tcp(listeners) => {
                    for (owner, listener) in listeners.iter().enumerate() {
                        let hub = Arc::clone(&hub);
                        let listener = listener
                            .try_clone()
                            .expect("cloning a bound listener cannot fail in practice");
                        s.spawn(move || accept_loop(s, hub, listener, owner));
                    }
                }
                Sockets::Udp(socks) => {
                    for (owner, sock) in socks.iter().enumerate() {
                        let hub = Arc::clone(&hub);
                        let sock = sock
                            .try_clone()
                            .expect("cloning a bound socket cannot fail in practice");
                        s.spawn(move || udp_reader(hub, sock, owner));
                    }
                }
            }

            // Processor threads.
            let handles: Vec<_> = (0..procs)
                .map(|id| {
                    let hub = Arc::clone(&hub);
                    let links = match (&cfg.mode, &sockets) {
                        (RealMode::Tcp, _) => Links::Tcp {
                            addrs: Arc::clone(&addrs),
                            writers: (0..procs).map(|_| None).collect(),
                        },
                        (RealMode::Udp { loss }, Sockets::Udp(socks)) => Links::Udp {
                            sock: socks[id]
                                .try_clone()
                                .expect("cloning a bound socket cannot fail in practice"),
                            addrs: Arc::clone(&addrs),
                            loss: loss.clone(),
                            seqs: vec![0; procs],
                        },
                        (RealMode::Udp { .. }, Sockets::Tcp(_)) => unreachable!(),
                    };
                    let cycles_per_micro = cfg.cycles_per_micro;
                    let f = &f;
                    let results = &results;
                    let reports = &reports;
                    s.spawn(move || {
                        let mut t = RealTransport {
                            me: id,
                            procs,
                            cycles_per_micro,
                            hub,
                            links,
                            timers: std::collections::BinaryHeap::new(),
                            timer_seq: 0,
                            charged: [0; CATEGORY_COUNT],
                            msgs_sent: 0,
                            bytes_sent: 0,
                            msgs_received: 0,
                            fault_stats: FaultStats::default(),
                            scratch: Vec::new(),
                            busy_marked: false,
                            idle_marked: false,
                        };
                        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut t)));
                        // FINISHED before the transport (and its sockets)
                        // drops, so peer readers treat the EOF as expected.
                        t.hub.status[id].store(status::FINISHED, SeqCst);
                        match outcome {
                            Ok(val) => {
                                lock_vec(reports)[id] = Some(t.report());
                                lock_vec(results)[id] = Some(val);
                            }
                            Err(payload) => {
                                if payload.downcast_ref::<RealAbort>().is_none() {
                                    t.hub.fail_soft(RealPoison::Panic {
                                        proc: id,
                                        message: panic_message(&*payload),
                                    });
                                }
                            }
                        }
                    })
                })
                .collect();

            // Watchdog.
            if let Some(deadline) = cfg.watchdog {
                let hub = Arc::clone(&hub);
                s.spawn(move || watchdog(hub, deadline));
            }

            for h in handles {
                let _ = h.join();
            }
            hub.done.store(true, SeqCst);

            // Wake the inbound plumbing so the scope can close: a dummy
            // hello (TCP) or datagram (UDP) tagged u32::MAX per endpoint.
            // Reader threads on dialed streams have already seen EOF (the
            // processor transports just dropped their write sockets).
            use std::io::Write;
            let wake = u32::MAX.to_le_bytes();
            match &sockets {
                Sockets::Tcp(_) => {
                    for addr in addrs.iter() {
                        if let Ok(mut s) = TcpStream::connect(addr) {
                            let _ = s.write_all(&wake);
                        }
                    }
                }
                Sockets::Udp(_) => {
                    if let Ok(s) = UdpSocket::bind("127.0.0.1:0") {
                        for addr in addrs.iter() {
                            let _ = s.send_to(&wake, addr);
                        }
                    }
                }
            }
        });

        if let Some(poison) = hub.take_poison() {
            return Err(poison.into());
        }
        let results: Vec<R> = into_vec(results)
            .into_iter()
            .map(|r| r.expect("every processor finished"))
            .collect();
        let reports: Vec<ProcReport> = into_vec(reports)
            .into_iter()
            .map(|r| r.expect("every processor reported"))
            .collect();
        let finish_time = reports
            .iter()
            .map(|r| r.final_time)
            .max()
            .unwrap_or(VirtualTime::ZERO);
        Ok(RealOutcome {
            results,
            reports,
            finish_time,
            messages_delivered: hub.delivered.load(SeqCst),
        })
    }
}

/// TCP accept loop for processor `owner`: every inbound stream opens with
/// a 4-byte hello naming the dialing processor, then carries that pair's
/// frames for the rest of the run.
fn accept_loop<'scope, M: Wire + Send + 'static>(
    s: &'scope std::thread::Scope<'scope, '_>,
    hub: Arc<Hub<M>>,
    listener: TcpListener,
    owner: usize,
) {
    use std::io::Read;
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let mut hello = [0u8; 4];
                if stream.read_exact(&mut hello).is_err() {
                    continue;
                }
                let src = u32::from_le_bytes(hello);
                if src == u32::MAX {
                    // Shutdown wake-up from the end of the run.
                    if hub.done.load(SeqCst) || hub.is_poisoned() {
                        return;
                    }
                    continue;
                }
                let src = src as usize;
                if src >= hub.procs {
                    hub.fail_soft(RealPoison::Io {
                        proc: owner,
                        message: format!("hello from out-of-range processor {src}"),
                    });
                    return;
                }
                let hub = Arc::clone(&hub);
                s.spawn(move || tcp_reader(hub, stream, src, owner));
            }
            Err(e) => {
                if !hub.done.load(SeqCst) && !hub.is_poisoned() {
                    hub.fail_soft(RealPoison::Io {
                        proc: owner,
                        message: format!("accept failed: {e}"),
                    });
                }
                return;
            }
        }
    }
}

/// Decodes `[u32 len][payload]` frames from one inbound TCP stream and
/// pushes them into `owner`'s inbox.
fn tcp_reader<M: Wire + Send>(hub: Arc<Hub<M>>, mut stream: TcpStream, src: usize, owner: usize) {
    use std::io::Read;
    let mut lenbuf = [0u8; 4];
    loop {
        if stream.read_exact(&mut lenbuf).is_err() {
            // EOF is the normal end of a stream: the peer finished and
            // dropped its write socket. Anything else is a failure.
            let expected = hub.status[src].load(SeqCst) == status::FINISHED
                || hub.done.load(SeqCst)
                || hub.quiesced()
                || hub.is_poisoned();
            if !expected {
                hub.fail_soft(RealPoison::Io {
                    proc: owner,
                    message: format!("stream from proc {src} closed mid-run"),
                });
            }
            return;
        }
        let len = u32::from_le_bytes(lenbuf) as usize;
        if len > MAX_TCP_FRAME {
            hub.fail_soft(RealPoison::Io {
                proc: owner,
                message: format!("frame of {len} bytes from proc {src} exceeds the frame cap"),
            });
            return;
        }
        let mut payload = vec![0u8; len];
        if stream.read_exact(&mut payload).is_err() {
            hub.fail_soft(RealPoison::Io {
                proc: owner,
                message: format!("truncated frame from proc {src}"),
            });
            return;
        }
        match decode_exact::<M>(&payload) {
            Ok(msg) => hub.push(owner, src, msg),
            Err(e) => {
                hub.fail_soft(RealPoison::Io {
                    proc: owner,
                    message: format!("bad frame from proc {src}: {e}"),
                });
                return;
            }
        }
    }
}

/// Decodes `[u32 src][payload]` datagrams from `owner`'s UDP socket and
/// pushes them into its inbox. Malformed datagrams are dropped silently —
/// on a lossy link they are indistinguishable from loss, and the reliable
/// channel above recovers either way.
fn udp_reader<M: Wire + Send>(hub: Arc<Hub<M>>, sock: UdpSocket, owner: usize) {
    let mut buf = vec![0u8; 65_536];
    loop {
        match sock.recv_from(&mut buf) {
            Ok((n, _)) => {
                if n < 4 {
                    continue;
                }
                let src = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
                if src == u32::MAX {
                    // Shutdown wake-up from the end of the run.
                    if hub.done.load(SeqCst) || hub.is_poisoned() {
                        return;
                    }
                    continue;
                }
                let src = src as usize;
                if src >= hub.procs {
                    continue;
                }
                if let Ok(msg) = decode_exact::<M>(&buf[4..n]) {
                    hub.push(owner, src, msg);
                }
            }
            Err(e) => {
                if !hub.done.load(SeqCst) && !hub.is_poisoned() {
                    hub.fail_soft(RealPoison::Io {
                        proc: owner,
                        message: format!("udp recv: {e}"),
                    });
                }
                return;
            }
        }
    }
}

/// Aborts the run with per-processor state dumps if the wall-clock
/// deadline passes. Exits quietly once the run finishes, quiesces, or is
/// already poisoned. Note the limit shared with the simulator: a closure
/// spinning in pure compute without touching the transport can only be
/// observed, not interrupted — the dump will show it stuck in `app`.
fn watchdog<M: Send>(hub: Arc<Hub<M>>, deadline: Duration) {
    loop {
        if hub.done.load(SeqCst) || hub.is_poisoned() || hub.quiesced() {
            return;
        }
        if hub.start.elapsed() >= deadline {
            hub.fail_soft(RealPoison::Watchdog {
                secs: deadline.as_secs(),
                dumps: hub.dump(),
            });
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn lock_vec<T>(m: &Mutex<Vec<Option<T>>>) -> std::sync::MutexGuard<'_, Vec<Option<T>>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn into_vec<T>(m: Mutex<Vec<Option<T>>>) -> Vec<Option<T>> {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
