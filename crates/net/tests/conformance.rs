//! Transport-trait conformance suite.
//!
//! Every behavioral property the DSM protocol engine relies on is checked
//! as a generic function over [`Transport`], then run against all three
//! concrete configurations: the virtual-time simulator (`ProcHandle`),
//! real loopback TCP, and real loopback UDP. A transport that passes this
//! suite can host the protocol engine.

use std::time::Duration;

use midway_net::{put_u64, RealCluster, RealConfig, RealError, Transport, Wire, WireError};
use midway_sim::{Cluster, ClusterConfig, FaultPlan, ProcHandle, SimError};

/// The suite's message type: a bare payload word.
#[derive(Clone, Debug, PartialEq, Eq)]
struct TMsg(u64);

impl Wire for TMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }

    fn decode(r: &mut midway_net::WireReader<'_>) -> Result<TMsg, WireError> {
        Ok(TMsg(r.u64("payload")?))
    }
}

/// Short watchdog so a conformance bug fails the suite instead of
/// hanging it.
fn tcp() -> RealConfig {
    RealConfig::tcp().watchdog(Some(Duration::from_secs(30)))
}

fn udp() -> RealConfig {
    RealConfig::udp(FaultPlan::seeded(0)).watchdog(Some(Duration::from_secs(30)))
}

// ---------------------------------------------------------------- ordering

/// Per-pair FIFO: every processor > 0 sends a numbered burst to proc 0,
/// which must observe each source's numbers in send order (no cross-pair
/// ordering is asserted).
fn ordering_body<T: Transport<Msg = TMsg>>(t: &mut T, burst: u64) -> bool {
    if t.id() == 0 {
        let senders = t.procs() - 1;
        let mut next = vec![0u64; t.procs()];
        for _ in 0..senders as u64 * burst {
            let (_, src, TMsg(n)) = t.recv();
            if n != next[src] {
                return false;
            }
            next[src] += 1;
        }
        next.iter().skip(1).all(|&n| n == burst)
    } else {
        for n in 0..burst {
            t.send(0, TMsg(n), 8);
        }
        true
    }
}

#[test]
fn ordering_sim() {
    let out = Cluster::run(ClusterConfig::new(4), |h: &mut ProcHandle<TMsg>| {
        ordering_body(h, 200)
    })
    .unwrap();
    assert!(out.results.iter().all(|&ok| ok));
}

#[test]
fn ordering_tcp() {
    let out = RealCluster::run(&tcp(), 4, |t| ordering_body(t, 200)).unwrap();
    assert!(out.results.iter().all(|&ok| ok));
}

/// UDP promises less: datagrams may be lost (the kernel sheds load under
/// bursts even on loopback), so the conformance property is per-pair
/// *monotone* order of whatever arrives, not lossless delivery. The
/// reliable channel above the transport recovers the rest.
fn ordering_udp_body<T: Transport<Msg = TMsg>>(t: &mut T, burst: u64) -> bool {
    if t.id() == 0 {
        let mut last: Vec<Option<u64>> = vec![None; t.procs()];
        let mut total = 0u64;
        while let Some((_, src, TMsg(n))) = t.drain_recv() {
            if last[src].is_some_and(|prev| n <= prev) {
                return false;
            }
            last[src] = Some(n);
            total += 1;
        }
        total > 0
    } else {
        for n in 0..burst {
            t.send(0, TMsg(n), 8);
        }
        while t.drain_recv().is_some() {}
        true
    }
}

#[test]
fn ordering_udp() {
    let out = RealCluster::run(&udp(), 4, |t| ordering_udp_body(t, 200)).unwrap();
    assert!(out.results.iter().all(|&ok| ok));
}

// ---------------------------------------------------------- self delivery

/// Self-posts come back from the processor's own id, in deadline order,
/// never early.
fn self_post_body<T: Transport<Msg = TMsg>>(t: &mut T) -> Vec<u64> {
    let posted_at = t.now();
    t.post_self(TMsg(3), 30_000);
    t.post_self(TMsg(1), 10_000);
    t.post_self(TMsg(2), 20_000);
    let mut got = Vec::new();
    for _ in 0..3 {
        let (at, src, TMsg(n)) = t.recv();
        assert_eq!(src, t.id(), "self-posts must come from self");
        assert!(
            at.cycles() >= posted_at.cycles() + n * 10_000,
            "timer fired early: {at:?} for delay {}",
            n * 10_000
        );
        got.push(n);
    }
    got
}

#[test]
fn self_post_sim() {
    let out = Cluster::run(ClusterConfig::new(2), |h: &mut ProcHandle<TMsg>| {
        self_post_body(h)
    })
    .unwrap();
    assert_eq!(out.results, vec![vec![1, 2, 3], vec![1, 2, 3]]);
}

#[test]
fn self_post_tcp() {
    let out = RealCluster::run(&tcp(), 2, self_post_body).unwrap();
    assert_eq!(out.results, vec![vec![1, 2, 3], vec![1, 2, 3]]);
}

#[test]
fn self_post_udp() {
    let out = RealCluster::run(&udp(), 2, self_post_body).unwrap();
    assert_eq!(out.results, vec![vec![1, 2, 3], vec![1, 2, 3]]);
}

// ------------------------------------------------------------- violations

/// Proc 0 reports a protocol violation while its peers sit blocked in
/// `recv` and `drain_recv`; the violation must come through typed, with
/// the reporter's id, and must wake everyone (the run terminates).
fn violation_body<T: Transport<Msg = TMsg>>(t: &mut T) {
    match t.id() {
        0 => t.protocol_violation("acquire for lock 9 routed to non-home".into()),
        1 => {
            t.recv();
        }
        _ => while t.drain_recv().is_some() {},
    }
}

#[test]
fn violation_sim() {
    let err = Cluster::run(ClusterConfig::new(3), |h: &mut ProcHandle<TMsg>| {
        violation_body(h)
    })
    .unwrap_err();
    match err {
        SimError::ProtocolViolation { proc, message } => {
            assert_eq!(proc, 0);
            assert!(message.contains("lock 9"));
        }
        other => panic!("expected protocol violation, got {other:?}"),
    }
}

#[test]
fn violation_tcp() {
    let err = RealCluster::run(&tcp(), 3, violation_body).unwrap_err();
    match err {
        RealError::Protocol { proc, message } => {
            assert_eq!(proc, 0);
            assert!(message.contains("lock 9"));
        }
        other => panic!("expected protocol violation, got {other:?}"),
    }
}

#[test]
fn violation_udp() {
    let err = RealCluster::run(&udp(), 3, violation_body).unwrap_err();
    match err {
        RealError::Protocol { proc, message } => {
            assert_eq!(proc, 0);
            assert!(message.contains("lock 9"));
        }
        other => panic!("expected protocol violation, got {other:?}"),
    }
}

/// App violations carry their own type.
fn app_violation_body<T: Transport<Msg = TMsg>>(t: &mut T) {
    match t.id() {
        0 => t.app_violation("shared write out of bounds".into()),
        _ => while t.drain_recv().is_some() {},
    }
}

#[test]
fn app_violation_sim() {
    let err = Cluster::run(ClusterConfig::new(2), |h: &mut ProcHandle<TMsg>| {
        app_violation_body(h)
    })
    .unwrap_err();
    assert!(matches!(err, SimError::AppViolation { proc: 0, .. }));
}

#[test]
fn app_violation_tcp() {
    let err = RealCluster::run(&tcp(), 2, app_violation_body).unwrap_err();
    assert!(matches!(err, RealError::App { proc: 0, .. }));
}

/// Plain panics in the closure are caught and attributed.
fn panic_body<T: Transport<Msg = TMsg>>(t: &mut T) {
    if t.id() == 1 {
        panic!("boom on proc 1");
    }
    while t.drain_recv().is_some() {}
}

#[test]
fn panic_tcp() {
    let err = RealCluster::run(&tcp(), 3, panic_body).unwrap_err();
    match err {
        RealError::Panic { proc, message } => {
            assert_eq!(proc, 1);
            assert!(message.contains("boom"));
        }
        other => panic!("expected panic report, got {other:?}"),
    }
}

// ------------------------------------------------------------- quiescence

/// `drain_recv` returns every sent message, then `None` everywhere once
/// the cluster is quiet — including messages sent from inside drain
/// handlers (proc 1 forwards what it gets to proc 2).
fn drain_body<T: Transport<Msg = TMsg>>(t: &mut T) -> u64 {
    if t.id() == 0 {
        for n in 0..10 {
            t.send(1, TMsg(n), 8);
        }
    }
    let mut seen = 0;
    while let Some((_, src, TMsg(n))) = t.drain_recv() {
        if src != t.id() {
            seen += 1;
        }
        if t.id() == 1 && src == 0 {
            t.send(2, TMsg(n), 8);
        }
    }
    seen
}

#[test]
fn drain_quiesce_sim() {
    let out = Cluster::run(ClusterConfig::new(3), |h: &mut ProcHandle<TMsg>| {
        drain_body(h)
    })
    .unwrap();
    assert_eq!(out.results, vec![0, 10, 10]);
}

#[test]
fn drain_quiesce_tcp() {
    let out = RealCluster::run(&tcp(), 3, drain_body).unwrap();
    assert_eq!(out.results, vec![0, 10, 10]);
}

#[test]
fn drain_quiesce_udp() {
    let out = RealCluster::run(&udp(), 3, drain_body).unwrap();
    assert_eq!(out.results, vec![0, 10, 10]);
}

/// Pending self-timers hold off quiescence: a drain must still deliver a
/// timer posted before draining started, even with an empty network.
fn drain_timer_body<T: Transport<Msg = TMsg>>(t: &mut T) -> u64 {
    t.post_self(TMsg(7), 50_000);
    let mut ticks = 0;
    while let Some((_, src, _)) = t.drain_recv() {
        assert_eq!(src, t.id());
        ticks += 1;
    }
    ticks
}

#[test]
fn drain_waits_for_timers_sim() {
    let out = Cluster::run(ClusterConfig::new(2), |h: &mut ProcHandle<TMsg>| {
        drain_timer_body(h)
    })
    .unwrap();
    assert_eq!(out.results, vec![1, 1]);
}

#[test]
fn drain_waits_for_timers_tcp() {
    let out = RealCluster::run(&tcp(), 2, drain_timer_body).unwrap();
    assert_eq!(out.results, vec![1, 1]);
}

// ------------------------------------------------------------ real extras

#[test]
fn watchdog_aborts_hung_run_with_dumps() {
    // Both processors block in recv forever (the simulator would call it
    // a deadlock; wall-clock transports cannot see that, so the watchdog
    // steps in).
    let cfg = RealConfig::tcp().watchdog(Some(Duration::from_millis(300)));
    let err = RealCluster::run(&cfg, 2, |t: &mut midway_net::RealTransport<TMsg>| {
        t.recv();
    })
    .unwrap_err();
    match err {
        RealError::Watchdog { dumps, .. } => {
            assert_eq!(dumps.len(), 2);
            assert!(dumps[0].contains("status=recv"), "dump: {}", dumps[0]);
        }
        other => panic!("expected watchdog abort, got {other:?}"),
    }
}

#[test]
fn udp_injected_drops_are_deterministic_and_counted() {
    let run = || {
        let cfg =
            RealConfig::udp(FaultPlan::lossy(3, 200_000)).watchdog(Some(Duration::from_secs(30)));
        let out = RealCluster::run(&cfg, 2, |t: &mut midway_net::RealTransport<TMsg>| {
            if t.id() == 0 {
                for n in 0..500 {
                    t.send(1, TMsg(n), 8);
                }
            }
            let mut got = 0u64;
            while t.drain_recv().is_some() {
                got += 1;
            }
            got
        })
        .unwrap();
        (out.results[1], out.reports[0].fault_stats.dropped)
    };
    let (got, dropped) = run();
    assert!(dropped > 0, "20% loss must drop something");
    // Injected drops never reach the socket; the kernel may shed more
    // under the burst, so delivery is bounded, not exact.
    assert!(got <= 500 - dropped, "got {got}, injected drops {dropped}");
    assert!(got > 0, "most of the burst should survive");
    // The injection schedule is a pure function of (seed, src, dst, seq),
    // even though actual delivery is not.
    assert_eq!(run().1, dropped);
}

#[test]
fn tcp_report_counts_messages() {
    let out = RealCluster::run(&tcp(), 2, |t: &mut midway_net::RealTransport<TMsg>| {
        if t.id() == 0 {
            for n in 0..25 {
                t.send(1, TMsg(n), 16);
            }
        }
        let mut got = 0u64;
        while t.drain_recv().is_some() {
            got += 1;
        }
        got
    })
    .unwrap();
    assert_eq!(out.results, vec![0, 25]);
    assert_eq!(out.reports[0].msgs_sent, 25);
    assert_eq!(out.reports[0].bytes_sent, 25 * 16);
    assert_eq!(out.reports[1].msgs_received, 25);
    assert!(out.messages_delivered >= 25);
}
