//! Vector clocks for the happens-before analysis.

/// A fixed-width vector clock: one logical-time component per processor.
///
/// Component `p` counts processor `p`'s *release epochs*: it starts at 1
/// and is incremented each time `p` performs a synchronization release
/// (lock release or barrier entry). A write stamped with epoch `c` by
/// processor `p` happens-before an access by processor `q` exactly when
/// `q`'s clock has `vc[p] >= c`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// A fresh clock for a cluster of `procs` processors, with `own`'s
    /// component started at 1 so even never-synchronized writes carry a
    /// positive epoch.
    pub fn new(procs: usize, own: usize) -> VClock {
        let mut v = vec![0; procs];
        v[own] = 1;
        VClock(v)
    }

    /// A zero clock (used for synchronization-object clocks, which only
    /// ever accumulate joins).
    pub fn zero(procs: usize) -> VClock {
        VClock(vec![0; procs])
    }

    /// Component `p`.
    pub fn get(&self, p: usize) -> u64 {
        self.0[p]
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Advances component `p` (a new release epoch for processor `p`).
    pub fn tick(&mut self, p: usize) {
        self.0[p] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new(3, 0);
        let mut b = VClock::new(3, 2);
        b.tick(2);
        a.join(&b);
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 2);
    }

    #[test]
    fn own_component_starts_positive() {
        let a = VClock::new(2, 1);
        assert_eq!(a.get(0), 0);
        assert_eq!(a.get(1), 1);
    }
}
