//! Per-processor event logs: what the hooks record during a run.
//!
//! The checker never shares state between simulated processors while the
//! run is in flight — each processor appends to its own [`CheckLog`], and
//! the happens-before analysis merges the logs *after* the run (see
//! [`crate::analyze`]). This is what keeps live checking deterministic:
//! processor threads execute concurrently in real time, so any shared
//! checker state would observe a real-time-dependent interleaving.

use midway_mem::AddrRange;

/// One logged event. `at` is the processor's virtual time in cycles when
/// the event was recorded; within one log, times are monotone.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckEvent {
    /// A shared-memory load of `len` bytes at `addr`.
    Read { at: u64, addr: u64, len: u32 },
    /// A shared-memory store of `len` bytes at `addr`.
    Write { at: u64, addr: u64, len: u32 },
    /// A lock acquisition completed (logged once the grant arrived).
    Acquire { at: u64, lock: u32, exclusive: bool },
    /// A lock release was issued.
    Release { at: u64, lock: u32, exclusive: bool },
    /// A held lock was rebound to `ranges`.
    Rebind {
        at: u64,
        lock: u32,
        ranges: Vec<AddrRange>,
    },
    /// The processor entered a barrier (before arriving at the manager).
    BarrierEnter { at: u64, barrier: u32 },
    /// The processor left a barrier (after the release arrived).
    BarrierExit { at: u64, barrier: u32 },
    /// The transfer-apply path installed `bytes` bytes of update data
    /// (a lock grant's payload or a barrier release set).
    Apply { at: u64, bytes: u64 },
}

impl CheckEvent {
    /// The event's virtual time.
    pub fn at(&self) -> u64 {
        match self {
            CheckEvent::Read { at, .. }
            | CheckEvent::Write { at, .. }
            | CheckEvent::Acquire { at, .. }
            | CheckEvent::Release { at, .. }
            | CheckEvent::Rebind { at, .. }
            | CheckEvent::BarrierEnter { at, .. }
            | CheckEvent::BarrierExit { at, .. }
            | CheckEvent::Apply { at, .. } => *at,
        }
    }
}

/// One processor's append-only event log.
///
/// Adjacent reads (and adjacent writes) to contiguous or repeated
/// addresses coalesce into one ranged event, so tight loops over an array
/// cost one log entry instead of one per element. Coalescing never
/// crosses a synchronization event, so it cannot change the
/// happens-before relation — only the `at` provenance of the later
/// accesses in a run, which keeps the time of the run's first access.
#[derive(Debug, Default)]
pub struct CheckLog {
    events: Vec<CheckEvent>,
}

impl CheckLog {
    /// An empty log.
    pub fn new() -> CheckLog {
        CheckLog::default()
    }

    /// The recorded events, in program order.
    pub fn events(&self) -> &[CheckEvent] {
        &self.events
    }

    /// Consumes the log.
    pub fn into_events(self) -> Vec<CheckEvent> {
        self.events
    }

    /// Logs a read, coalescing with an immediately preceding adjacent or
    /// overlapping read.
    pub fn read(&mut self, at: u64, addr: u64, len: u32) {
        if let Some(CheckEvent::Read {
            addr: a, len: l, ..
        }) = self.events.last_mut()
        {
            if Self::merge(a, l, addr, len) {
                return;
            }
        }
        self.events.push(CheckEvent::Read { at, addr, len });
    }

    /// Logs a write, coalescing like [`CheckLog::read`].
    pub fn write(&mut self, at: u64, addr: u64, len: u32) {
        if let Some(CheckEvent::Write {
            addr: a, len: l, ..
        }) = self.events.last_mut()
        {
            if Self::merge(a, l, addr, len) {
                return;
            }
        }
        self.events.push(CheckEvent::Write { at, addr, len });
    }

    /// Tries to grow the previous access `(*a, *l)` to absorb the new one:
    /// forward-adjacent, backward-adjacent, or fully contained.
    fn merge(a: &mut u64, l: &mut u32, addr: u64, len: u32) -> bool {
        let end = *a + u64::from(*l);
        let new_end = addr + u64::from(len);
        if addr >= *a && new_end <= end {
            return true; // contained: a re-read of the same spot
        }
        if addr == end && u64::from(*l) + u64::from(len) <= u64::from(u32::MAX) {
            *l += len;
            return true;
        }
        if new_end == *a && u64::from(*l) + u64::from(len) <= u64::from(u32::MAX) {
            *a = addr;
            *l += len;
            return true;
        }
        false
    }

    /// Logs a completed lock acquisition.
    pub fn acquire(&mut self, at: u64, lock: u32, exclusive: bool) {
        self.events.push(CheckEvent::Acquire {
            at,
            lock,
            exclusive,
        });
    }

    /// Logs a lock release.
    pub fn release(&mut self, at: u64, lock: u32, exclusive: bool) {
        self.events.push(CheckEvent::Release {
            at,
            lock,
            exclusive,
        });
    }

    /// Logs a rebind of a held lock.
    pub fn rebind(&mut self, at: u64, lock: u32, ranges: Vec<AddrRange>) {
        self.events.push(CheckEvent::Rebind { at, lock, ranges });
    }

    /// Logs a barrier entry.
    pub fn barrier_enter(&mut self, at: u64, barrier: u32) {
        self.events.push(CheckEvent::BarrierEnter { at, barrier });
    }

    /// Logs a barrier exit.
    pub fn barrier_exit(&mut self, at: u64, barrier: u32) {
        self.events.push(CheckEvent::BarrierExit { at, barrier });
    }

    /// Logs a transfer application.
    pub fn apply(&mut self, at: u64, bytes: u64) {
        self.events.push(CheckEvent::Apply { at, bytes });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_reads_coalesce_both_directions() {
        let mut log = CheckLog::new();
        log.read(10, 100, 4);
        log.read(11, 104, 4); // forward
        log.read(12, 96, 4); // backward
        log.read(13, 100, 4); // contained
        assert_eq!(
            log.events(),
            &[CheckEvent::Read {
                at: 10,
                addr: 96,
                len: 12
            }]
        );
    }

    #[test]
    fn sync_events_stop_coalescing() {
        let mut log = CheckLog::new();
        log.write(1, 0, 8);
        log.release(2, 0, true);
        log.write(3, 8, 8);
        assert_eq!(log.events().len(), 3);
    }

    #[test]
    fn disjoint_accesses_stay_separate() {
        let mut log = CheckLog::new();
        log.read(1, 0, 4);
        log.read(2, 100, 4);
        log.write(3, 0, 4); // a write never merges into a read
        assert_eq!(log.events().len(), 3);
    }
}
