//! The post-run happens-before analysis.
//!
//! Per-processor event logs are merged into one stream ordered by
//! `(virtual time, processor id)`. Under the simulator's conservative
//! scheduler this linearization respects the protocol's happens-before
//! edges: every cross-processor edge (release → grant application,
//! barrier arrival → barrier release) includes at least one network hop
//! with positive modelled latency, so the effect's virtual time is
//! strictly greater than its cause's. Ties can therefore only involve
//! causally unrelated events, and any tie-break is sound.
//!
//! Clock rules (Djit⁺-style, adapted to entry consistency):
//!
//! * **Acquire** `l` by `p`: `VC_p ⊔= L_l` — the acquirer inherits the
//!   history of every previous releaser (the lock's home serializes the
//!   grant chain, including shared-mode holders).
//! * **Release** `l` by `p`: `L_l ⊔= VC_p`, then `VC_p[p] += 1` — the
//!   release publishes `p`'s history and opens a new write epoch.
//! * **Barrier enter** by `p` (episode `e`): `ACC_{b,e} ⊔= VC_p`, then
//!   `VC_p[p] += 1`. All of an episode's entries precede its exits in
//!   virtual time, so the accumulator is complete before anyone reads it.
//! * **Barrier exit** by `p` (episode `e`): `VC_p ⊔= ACC_{b,e}`.
//! * **Write** of a line by `p`: the line's last-writer stamp becomes
//!   `(p, VC_p[p])`, and `p`'s *first* write epoch for the line is
//!   remembered.
//! * **Read** of a line by `q`: stale iff the line has been written but
//!   *no* write to it happens-before `q` — no writer `p` (including `q`
//!   itself) has `VC_q[p] ≥` its first epoch for the line. Midway is
//!   update-based: a read returns the local copy, which holds whatever
//!   value synchronization last delivered. Reading concurrently with a
//!   *newer* remote write is therefore well-defined under entry
//!   consistency (sor's ghost-row reads do exactly that, against the
//!   previous phase's published value); what is broken is reading a line
//!   whose content no synchronization ever delivered to this processor.
//!
//! Coverage rules: a *write* must fall inside an exclusively held lock's
//! current binding, inside the writer's own partition of a partitioned
//! barrier, or inside a non-partitioned barrier's binding. A *read* may
//! be covered by any held lock (either mode) or by any barrier's union
//! binding (neighbours legitimately read other partitions once the
//! barrier publishes them). Accesses to private regions, and to shared
//! data that no synchronization object has ever bound (deliberately
//! unshared scratch), are exempt from coverage checks; the latter still
//! feed the last-writer clocks so cross-processor staleness is caught.

use std::collections::HashMap;

use midway_mem::{Addr, AddrRange, MemClass};

use crate::event::CheckEvent;
use crate::report::{ApplyStats, CheckReport, Finding, FindingKind, Staleness};
use crate::spec::CheckSpec;
use crate::VClock;

/// Last-writer stamp of one cache line (the finding's provenance).
struct LastWrite {
    proc: u32,
    at: u64,
}

/// Everything the stale-read rule tracks about one cache line.
struct LineState {
    /// The most recent write in merged order (the finding's provenance).
    last: LastWrite,
    /// Each writer's *first* write epoch for this line. A read has
    /// synchronized with the line iff some entry happens-before it.
    first: Vec<(u32, u64)>,
}

/// Per-lock analysis state.
struct LockState {
    /// Current bound ranges (tracks rebinds in merged order; rebinding
    /// requires an exclusive hold, so the order is total).
    cur: Vec<AddrRange>,
    /// Ranges retired by rebinds, for [`FindingKind::BindingViolation`].
    prev: Vec<AddrRange>,
    rebound: bool,
    clock: VClock,
}

/// Deduplication key: finding kind + accessor + line + implicated lock.
type DedupKey = (FindingKind, usize, u64, Option<u32>);

struct Analysis<'a> {
    spec: &'a CheckSpec,
    procs: usize,
    vc: Vec<VClock>,
    locks: Vec<LockState>,
    /// Held locks per processor: `(lock, exclusive)`.
    held: Vec<Vec<(u32, bool)>>,
    /// Barrier episode accumulators: `accs[barrier][episode]`.
    accs: Vec<Vec<VClock>>,
    /// Per-processor episode cursors: `[proc][barrier]`.
    enter_idx: Vec<Vec<usize>>,
    exit_idx: Vec<Vec<usize>>,
    /// Per-line write history, keyed by line base address.
    lines: HashMap<u64, LineState>,
    /// Every range any synchronization object has bound so far.
    bound: Vec<AddrRange>,
    dedup: HashMap<DedupKey, usize>,
    report: CheckReport,
}

/// Whether one of `ranges` contains all of `[addr, end)`.
fn covers(ranges: &[AddrRange], addr: u64, end: u64) -> bool {
    ranges.iter().any(|r| r.start <= addr && end <= r.end)
}

/// Whether any of `ranges` overlaps `[addr, end)`.
fn overlaps(ranges: &[AddrRange], addr: u64, end: u64) -> bool {
    ranges.iter().any(|r| r.start < end && addr < r.end)
}

impl Analysis<'_> {
    fn emit(&mut self, mut finding: Finding, line: u64) {
        let key = (finding.kind, finding.proc, line, finding.lock);
        let hit = self.dedup.get(&key).copied();
        if hit.is_none() {
            finding.alloc = self.spec.alloc_name(finding.addr).map(str::to_string);
            let idx = self.report.findings.len();
            self.dedup.insert(key, idx);
        }
        self.report.record(finding, hit);
    }

    /// The first binding-coverage failure kind for an uncovered access:
    /// a held rebound lock whose retired ranges contain the access makes
    /// it a binding violation; otherwise it is plain unguarded.
    fn uncovered_kind(
        &self,
        p: usize,
        addr: u64,
        end: u64,
        write: bool,
    ) -> (FindingKind, Option<u32>) {
        for (l, _) in &self.held[p] {
            let ls = &self.locks[*l as usize];
            if ls.rebound && overlaps(&ls.prev, addr, end) && !covers(&ls.cur, addr, end) {
                return (FindingKind::BindingViolation, Some(*l));
            }
        }
        let kind = if write {
            FindingKind::UnguardedWrite
        } else {
            FindingKind::UnguardedRead
        };
        (kind, None)
    }

    fn on_write(&mut self, p: usize, at: u64, addr: u64, len: u32) {
        let Some(region) = self.spec.layout.region(Addr(addr).region_index()) else {
            return;
        };
        if region.class == MemClass::Private {
            return;
        }
        let end = addr + u64::from(len);
        let line_size = region.line_size() as u64;
        let line0 = addr & !(line_size - 1);
        let covered = self.held[p]
            .iter()
            .any(|(l, exclusive)| *exclusive && covers(&self.locks[*l as usize].cur, addr, end))
            || self.spec.barriers.iter().any(|b| match &b.partitions {
                Some(parts) => covers(&parts[p], addr, end),
                None => covers(&b.ranges, addr, end),
            });
        if !covered && overlaps(&self.bound, addr, end) {
            let (kind, lock) = self.uncovered_kind(p, addr, end, true);
            self.emit(
                Finding {
                    kind,
                    proc: p,
                    at,
                    addr,
                    len,
                    alloc: None,
                    lock,
                    stale: None,
                    occurrences: 1,
                },
                line0,
            );
        }
        let epoch = self.vc[p].get(p);
        let mut line = line0;
        while line < end {
            let ls = self.lines.entry(line).or_insert_with(|| LineState {
                last: LastWrite { proc: p as u32, at },
                first: Vec::new(),
            });
            ls.last = LastWrite { proc: p as u32, at };
            if !ls.first.iter().any(|(wp, _)| *wp == p as u32) {
                ls.first.push((p as u32, epoch));
            }
            line += line_size;
        }
    }

    fn on_read(&mut self, p: usize, at: u64, addr: u64, len: u32) {
        let Some(region) = self.spec.layout.region(Addr(addr).region_index()) else {
            return;
        };
        if region.class == MemClass::Private {
            return;
        }
        let end = addr + u64::from(len);
        let line_size = region.line_size() as u64;
        let mut line = addr & !(line_size - 1);
        while line < end {
            if let Some(ls) = self.lines.get(&line) {
                let delivered = ls
                    .first
                    .iter()
                    .any(|(wp, e)| self.vc[p].get(*wp as usize) >= *e);
                if !delivered {
                    let stale = Staleness {
                        writer: ls.last.proc as usize,
                        write_at: ls.last.at,
                    };
                    self.emit(
                        Finding {
                            kind: FindingKind::StaleRead,
                            proc: p,
                            at,
                            addr: line,
                            len: line_size as u32,
                            alloc: None,
                            lock: None,
                            stale: Some(stale),
                            occurrences: 1,
                        },
                        line,
                    );
                }
            }
            line += line_size;
        }
        let covered = self.held[p]
            .iter()
            .any(|(l, _)| covers(&self.locks[*l as usize].cur, addr, end))
            || self
                .spec
                .barriers
                .iter()
                .any(|b| covers(&b.ranges, addr, end));
        if !covered && overlaps(&self.bound, addr, end) {
            let (kind, lock) = self.uncovered_kind(p, addr, end, false);
            let line0 = addr & !(line_size - 1);
            self.emit(
                Finding {
                    kind,
                    proc: p,
                    at,
                    addr,
                    len,
                    alloc: None,
                    lock,
                    stale: None,
                    occurrences: 1,
                },
                line0,
            );
        }
    }

    fn step(&mut self, p: usize, ev: &CheckEvent) {
        match ev {
            CheckEvent::Read { at, addr, len } => self.on_read(p, *at, *addr, *len),
            CheckEvent::Write { at, addr, len } => self.on_write(p, *at, *addr, *len),
            CheckEvent::Acquire {
                lock, exclusive, ..
            } => {
                let clock = self.locks[*lock as usize].clock.clone();
                self.vc[p].join(&clock);
                self.held[p].push((*lock, *exclusive));
            }
            CheckEvent::Release { lock, .. } => {
                self.locks[*lock as usize].clock.join(&self.vc[p]);
                self.vc[p].tick(p);
                self.held[p].retain(|(l, _)| l != lock);
            }
            CheckEvent::Rebind { lock, ranges, .. } => {
                let ls = &mut self.locks[*lock as usize];
                let old = std::mem::replace(&mut ls.cur, ranges.clone());
                ls.prev.extend(old);
                ls.rebound = true;
                self.bound.extend(ranges.iter().cloned());
            }
            CheckEvent::BarrierEnter { barrier, .. } => {
                let b = *barrier as usize;
                let e = self.enter_idx[p][b];
                self.enter_idx[p][b] += 1;
                while self.accs[b].len() <= e {
                    self.accs[b].push(VClock::zero(self.procs));
                }
                self.accs[b][e].join(&self.vc[p]);
                self.vc[p].tick(p);
            }
            CheckEvent::BarrierExit { barrier, .. } => {
                let b = *barrier as usize;
                let e = self.exit_idx[p][b];
                self.exit_idx[p][b] += 1;
                let acc = self.accs[b][e].clone();
                self.vc[p].join(&acc);
            }
            CheckEvent::Apply { bytes, .. } => {
                self.report.applies[p].count += 1;
                self.report.applies[p].bytes += bytes;
            }
        }
    }
}

/// Analyzes one run's per-processor event logs against `spec`.
///
/// `logs[p]` must be processor `p`'s events in program order with
/// monotone times (which [`crate::CheckLog`] guarantees).
pub fn analyze(spec: &CheckSpec, logs: &[Vec<CheckEvent>]) -> CheckReport {
    let procs = logs.len();
    let mut bound: Vec<AddrRange> = Vec::new();
    for l in &spec.locks {
        bound.extend(l.iter().cloned());
    }
    for b in &spec.barriers {
        bound.extend(b.ranges.iter().cloned());
        if let Some(parts) = &b.partitions {
            for part in parts {
                bound.extend(part.iter().cloned());
            }
        }
    }
    let mut a = Analysis {
        spec,
        procs,
        vc: (0..procs).map(|p| VClock::new(procs, p)).collect(),
        locks: spec
            .locks
            .iter()
            .map(|ranges| LockState {
                cur: ranges.clone(),
                prev: Vec::new(),
                rebound: false,
                clock: VClock::zero(procs),
            })
            .collect(),
        held: vec![Vec::new(); procs],
        accs: vec![Vec::new(); spec.barriers.len()],
        enter_idx: vec![vec![0; spec.barriers.len()]; procs],
        exit_idx: vec![vec![0; spec.barriers.len()]; procs],
        lines: HashMap::new(),
        bound,
        dedup: HashMap::new(),
        report: CheckReport {
            applies: vec![ApplyStats::default(); procs],
            events: logs.iter().map(|l| l.len() as u64).sum(),
            ..CheckReport::default()
        },
    };
    // K-way merge by (virtual time, processor id).
    let mut idx = vec![0usize; procs];
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (p, i) in idx.iter().enumerate() {
            if let Some(ev) = logs[p].get(*i) {
                if best.is_none_or(|(t, _)| ev.at() < t) {
                    best = Some((ev.at(), p));
                }
            }
        }
        let Some((_, p)) = best else { break };
        let ev = logs[p][idx[p]].clone();
        idx[p] += 1;
        a.step(p, &ev);
    }
    a.report
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // one-range bindings are the intended type here
mod tests {
    use super::*;
    use crate::spec::BarrierRanges;
    use crate::CheckLog;
    use midway_mem::LayoutBuilder;

    /// Two shared 64-byte arrays with 8-byte lines at known addresses,
    /// one private array; one lock over the first array's first half, one
    /// partitioned barrier over the second array.
    fn spec(procs: usize) -> (CheckSpec, u64, u64, u64) {
        let mut lb = LayoutBuilder::new();
        let a = lb.alloc("a", 64, MemClass::Shared, 3);
        let b = lb.alloc("b", 64, MemClass::Shared, 3);
        let p = lb.alloc("scratch", 64, MemClass::Private, 3);
        let (a0, b0, p0) = (a.addr.raw(), b.addr.raw(), p.addr.raw());
        let per = 64 / procs as u64;
        let spec = CheckSpec {
            layout: lb.build(),
            locks: vec![vec![a0..a0 + 32]],
            barriers: vec![BarrierRanges {
                ranges: vec![b0..b0 + 64],
                partitions: Some(
                    (0..procs as u64)
                        .map(|q| vec![b0 + q * per..b0 + (q + 1) * per])
                        .collect(),
                ),
            }],
        };
        (spec, a0, b0, p0)
    }

    #[test]
    fn lock_discipline_is_clean_and_transfers_happen_before() {
        let (spec, a0, _, _) = spec(2);
        let mut p0 = CheckLog::new();
        p0.acquire(10, 0, true);
        p0.write(11, a0, 8);
        p0.release(12, 0, true);
        let mut p1 = CheckLog::new();
        p1.acquire(50, 0, true);
        p1.read(51, a0, 8);
        p1.release(52, 0, true);
        let r = analyze(&spec, &[p0.into_events(), p1.into_events()]);
        assert!(r.is_clean(), "{}", r.summary());
        assert_eq!(r.events, 6);
    }

    #[test]
    fn read_without_the_lock_chain_is_stale_and_unguarded() {
        let (spec, a0, _, _) = spec(2);
        let mut p0 = CheckLog::new();
        p0.acquire(10, 0, true);
        p0.write(11, a0, 8);
        p0.release(12, 0, true);
        let mut p1 = CheckLog::new();
        p1.read(51, a0, 8); // no acquire: unguarded AND stale
        let r = analyze(&spec, &[p0.into_events(), p1.into_events()]);
        assert_eq!(r.count(FindingKind::StaleRead), 1);
        assert_eq!(r.count(FindingKind::UnguardedRead), 1);
        let s = r.first_of(FindingKind::StaleRead).unwrap();
        assert_eq!(s.proc, 1);
        assert_eq!(s.stale.unwrap().writer, 0);
        assert_eq!(s.addr, a0);
        assert_eq!(s.alloc.as_deref(), Some("a"));
    }

    #[test]
    fn unguarded_write_to_bound_data_is_reported_once_per_line() {
        let (spec, a0, _, _) = spec(2);
        let mut p1 = CheckLog::new();
        p1.write(5, a0 + 8, 4);
        p1.release(6, 0, true); // break coalescing
        p1.acquire(7, 0, true);
        p1.release(8, 0, true);
        p1.write(9, a0 + 8, 4); // same line again: dedups, still counted
        let r = analyze(&spec, &[Vec::new(), p1.into_events()]);
        // The 5..9 sequence holds the lock only between acquire/release.
        assert_eq!(r.count(FindingKind::UnguardedWrite), 2);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].occurrences, 2);
        assert_eq!(r.findings[0].proc, 1);
    }

    #[test]
    fn barrier_partitions_guard_writes_and_publish_reads() {
        let (spec, _, b0, _) = spec(2);
        let mut p0 = CheckLog::new();
        p0.write(1, b0, 8); // own partition
        p0.barrier_enter(2, 0);
        p0.barrier_exit(40, 0);
        p0.write(41, b0 + 32, 8); // proc 1's partition!
        let mut p1 = CheckLog::new();
        p1.barrier_enter(3, 0);
        p1.barrier_exit(42, 0);
        p1.read(43, b0, 8); // fine: published by the barrier
        let r = analyze(&spec, &[p0.into_events(), p1.into_events()]);
        assert_eq!(r.count(FindingKind::UnguardedWrite), 1);
        assert_eq!(r.count(FindingKind::StaleRead), 0);
        assert_eq!(r.count(FindingKind::UnguardedRead), 0);
        let f = r.first_of(FindingKind::UnguardedWrite).unwrap();
        assert_eq!((f.proc, f.addr), (0, b0 + 32));
    }

    #[test]
    fn reading_ahead_of_the_barrier_is_stale() {
        let (spec, _, b0, _) = spec(2);
        let mut p0 = CheckLog::new();
        p0.write(1, b0, 8);
        p0.barrier_enter(2, 0);
        p0.barrier_exit(40, 0);
        let mut p1 = CheckLog::new();
        p1.read(30, b0, 8); // before entering the barrier: stale
        p1.barrier_enter(31, 0);
        p1.barrier_exit(41, 0);
        p1.read(42, b0, 8); // after: clean
        let r = analyze(&spec, &[p0.into_events(), p1.into_events()]);
        assert_eq!(r.count(FindingKind::StaleRead), 1);
        assert_eq!(r.first_of(FindingKind::StaleRead).unwrap().at, 30);
    }

    #[test]
    fn second_episode_requires_its_own_barrier_crossing() {
        let (spec, _, b0, _) = spec(2);
        let mut p0 = CheckLog::new();
        p0.barrier_enter(1, 0);
        p0.barrier_exit(20, 0);
        p0.write(21, b0, 8);
        p0.barrier_enter(22, 0);
        p0.barrier_exit(60, 0);
        let mut p1 = CheckLog::new();
        p1.barrier_enter(2, 0);
        p1.barrier_exit(25, 0);
        p1.read(30, b0, 8); // episode-1 write not yet published: stale
        p1.barrier_enter(31, 0);
        p1.barrier_exit(61, 0);
        p1.read(62, b0, 8); // clean now
        let r = analyze(&spec, &[p0.into_events(), p1.into_events()]);
        assert_eq!(r.count(FindingKind::StaleRead), 1);
    }

    #[test]
    fn access_outside_a_rebound_locks_new_ranges_is_a_binding_violation() {
        let (spec, a0, _, _) = spec(2);
        let mut p0 = CheckLog::new();
        p0.acquire(1, 0, true);
        p0.rebind(2, 0, vec![a0..a0 + 16]);
        p0.write(3, a0 + 24, 8); // in the retired half of the old binding
        p0.release(4, 0, true);
        let r = analyze(&spec, &[p0.into_events(), Vec::new()]);
        assert_eq!(r.count(FindingKind::BindingViolation), 1);
        assert_eq!(r.count(FindingKind::UnguardedWrite), 0);
        let f = r.first_of(FindingKind::BindingViolation).unwrap();
        assert_eq!(f.lock, Some(0));
        assert_eq!(f.addr, a0 + 24);
    }

    #[test]
    fn never_bound_shared_data_is_exempt_from_coverage_but_not_staleness() {
        let (spec, a0, _, _) = spec(2);
        // Address range a0+32..a0+64 is shared but bound to nothing.
        let free = a0 + 32;
        let mut p0 = CheckLog::new();
        p0.write(1, free, 8);
        let mut p1 = CheckLog::new();
        p1.read(10, free, 8); // cross-processor without sync: stale
        let r = analyze(&spec, &[p0.into_events(), p1.into_events()]);
        assert_eq!(r.count(FindingKind::UnguardedWrite), 0);
        assert_eq!(r.count(FindingKind::UnguardedRead), 0);
        assert_eq!(r.count(FindingKind::StaleRead), 1);
    }

    #[test]
    fn private_regions_are_ignored_entirely() {
        let (spec, _, _, p0a) = spec(2);
        let mut p0 = CheckLog::new();
        p0.write(1, p0a, 8);
        let mut p1 = CheckLog::new();
        p1.read(2, p0a, 8);
        let r = analyze(&spec, &[p0.into_events(), p1.into_events()]);
        assert!(r.is_clean(), "{}", r.summary());
    }

    #[test]
    fn writes_under_a_shared_hold_are_unguarded() {
        let (spec, a0, _, _) = spec(2);
        let mut p0 = CheckLog::new();
        p0.acquire(1, 0, false); // shared mode
        p0.write(2, a0, 8);
        p0.read(3, a0, 8); // reads are fine under a shared hold
        p0.release(4, 0, false);
        let r = analyze(&spec, &[p0.into_events(), Vec::new()]);
        assert_eq!(r.count(FindingKind::UnguardedWrite), 1);
        assert_eq!(r.count(FindingKind::UnguardedRead), 0);
        // The stale check ignores the processor's own write.
        assert_eq!(r.count(FindingKind::StaleRead), 0);
    }

    #[test]
    fn apply_events_are_tallied_per_processor() {
        let (spec, _, _, _) = spec(2);
        let mut p1 = CheckLog::new();
        p1.apply(5, 128);
        p1.apply(9, 64);
        let r = analyze(&spec, &[Vec::new(), p1.into_events()]);
        assert_eq!(
            r.applies[1],
            ApplyStats {
                count: 2,
                bytes: 192
            }
        );
        assert_eq!(r.applies[0], ApplyStats::default());
    }
}
