//! The static system description the analysis checks accesses against.

use std::sync::Arc;

use midway_mem::{AddrRange, Layout};

/// One barrier's bindings as the checker sees them.
#[derive(Clone, Debug)]
pub struct BarrierRanges {
    /// The union binding (what neighbours may *read* after the barrier).
    pub ranges: Vec<AddrRange>,
    /// Per-processor write partitions, if the barrier is partitioned: a
    /// processor may only *write* its own partition.
    pub partitions: Option<Vec<Vec<AddrRange>>>,
}

/// The synchronization-object layout of a system: everything static the
/// happens-before analysis needs. Built from the core crate's
/// `SystemSpec` (or a replayed blueprint) before the run starts.
#[derive(Clone, Debug)]
pub struct CheckSpec {
    /// The memory layout (region classes, line sizes, allocation names).
    pub layout: Arc<Layout>,
    /// Initial per-lock bound ranges, indexed by lock id.
    pub locks: Vec<Vec<AddrRange>>,
    /// Per-barrier bindings, indexed by barrier id.
    pub barriers: Vec<BarrierRanges>,
}

impl CheckSpec {
    /// The name of the allocation containing `addr`, for provenance.
    pub fn alloc_name(&self, addr: u64) -> Option<&str> {
        self.layout
            .allocs()
            .iter()
            .find(|a| a.range().contains(&addr))
            .map(|a| a.name.as_str())
    }
}
