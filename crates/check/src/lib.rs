//! Dynamic entry-consistency checker for the Midway reproduction.
//!
//! Midway's correctness contract is that every shared datum is bound to a
//! synchronization object and only touched while that object is held; the
//! write-detection machinery silently ships wrong data when an
//! application breaks the contract. This crate detects such breaks
//! dynamically: the core runtime's hooks append to a per-processor
//! [`CheckLog`] during the run, and [`analyze`] merges the logs afterward
//! into a vector-clock happens-before analysis that reports four kinds of
//! [`Finding`]:
//!
//! * [`FindingKind::UnguardedWrite`] — a store outside every held
//!   exclusive lock's binding and outside the writer's barrier partition;
//! * [`FindingKind::UnguardedRead`] — a load outside every held lock's
//!   binding and every barrier binding;
//! * [`FindingKind::StaleRead`] — a load of a line whose most recent
//!   write does not happen-before the reader's clock;
//! * [`FindingKind::BindingViolation`] — an access that misses a held
//!   lock's current binding but falls in ranges retired by `rebind`.
//!
//! The checker is strictly off-clock: logging happens outside the
//! simulator's virtual-time accounting, no messages change, and a run
//! with checking enabled is bit-for-bit identical to one without.

mod analyze;
mod clock;
mod event;
mod report;
mod spec;

pub use analyze::analyze;
pub use clock::VClock;
pub use event::{CheckEvent, CheckLog};
pub use report::{ApplyStats, CheckReport, Finding, FindingKind, Staleness, MAX_FINDINGS};
pub use spec::{BarrierRanges, CheckSpec};
