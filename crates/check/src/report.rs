//! Findings and the per-run checker report.

use std::fmt;

/// The four entry-consistency violations the checker detects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A store to shared, bound data not covered by any exclusively held
    /// lock's binding or by the writer's own barrier partition.
    UnguardedWrite,
    /// A load of shared, bound data not covered by any held lock's
    /// binding or any barrier binding.
    UnguardedRead,
    /// A load of a line whose most recent write does not happen-before
    /// the reader's current vector clock.
    StaleRead,
    /// An access that misses every current binding but falls inside
    /// ranges a currently-held lock was bound to before a `rebind`.
    BindingViolation,
}

impl FindingKind {
    /// Every kind, in severity/report order.
    pub const ALL: [FindingKind; 4] = [
        FindingKind::UnguardedWrite,
        FindingKind::UnguardedRead,
        FindingKind::StaleRead,
        FindingKind::BindingViolation,
    ];

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::UnguardedWrite => "unguarded-write",
            FindingKind::UnguardedRead => "unguarded-read",
            FindingKind::StaleRead => "stale-read",
            FindingKind::BindingViolation => "binding-violation",
        }
    }

    fn index(self) -> usize {
        match self {
            FindingKind::UnguardedWrite => 0,
            FindingKind::UnguardedRead => 1,
            FindingKind::StaleRead => 2,
            FindingKind::BindingViolation => 3,
        }
    }
}

/// Stale-read provenance: who wrote the line the reader missed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Staleness {
    /// The processor whose write the reader has not synchronized with.
    pub writer: usize,
    /// The writer's virtual time at the write.
    pub write_at: u64,
}

/// One deduplicated finding with full provenance.
#[derive(Clone, Debug)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// The processor that performed the offending access.
    pub proc: usize,
    /// The processor's virtual time (cycles) at the access.
    pub at: u64,
    /// First byte of the offending access.
    pub addr: u64,
    /// Access length in bytes.
    pub len: u32,
    /// The allocation the address falls in, for readable reports.
    pub alloc: Option<String>,
    /// For [`FindingKind::BindingViolation`]: the held, rebound lock
    /// whose former ranges the access fell in.
    pub lock: Option<u32>,
    /// For [`FindingKind::StaleRead`]: the missed write.
    pub stale: Option<Staleness>,
    /// How many occurrences collapsed into this finding.
    pub occurrences: u64,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} proc {} at cycle {}: {:#x}+{}",
            self.kind.label(),
            self.proc,
            self.at,
            self.addr,
            self.len
        )?;
        if let Some(a) = &self.alloc {
            write!(f, " in \"{a}\"")?;
        }
        if let Some(l) = self.lock {
            write!(f, " (outside rebound lock {l}'s current binding)")?;
        }
        if let Some(s) = self.stale {
            write!(
                f,
                " (missed write by proc {} at cycle {})",
                s.writer, s.write_at
            )?;
        }
        if self.occurrences > 1 {
            write!(f, " [x{}]", self.occurrences)?;
        }
        Ok(())
    }
}

/// Findings kept in the report; further occurrences only bump counts.
pub const MAX_FINDINGS: usize = 256;

/// Per-processor transfer-apply statistics (the checker's view of the
/// data-moving path it hooks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Grant/barrier payload applications observed.
    pub count: u64,
    /// Update bytes those applications installed.
    pub bytes: u64,
}

/// The result of analyzing one run's event logs.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Deduplicated findings (at most [`MAX_FINDINGS`]), in the merged
    /// virtual-time order they were first detected.
    pub findings: Vec<Finding>,
    /// Total occurrences per kind, indexed like [`FindingKind::ALL`]
    /// (exact even when the findings list is capped).
    pub counts: [u64; 4],
    /// Events analyzed across all processors.
    pub events: u64,
    /// Per-processor transfer-apply activity.
    pub applies: Vec<ApplyStats>,
}

impl CheckReport {
    /// Total occurrences of `kind`.
    pub fn count(&self, kind: FindingKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total occurrences across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the run was free of findings.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// The first finding of `kind`, if any survived the cap.
    pub fn first_of(&self, kind: FindingKind) -> Option<&Finding> {
        self.findings.iter().find(|f| f.kind == kind)
    }

    /// One-line summary for CLI output.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("clean ({} events analyzed)", self.events)
        } else {
            let per: Vec<String> = FindingKind::ALL
                .iter()
                .filter(|k| self.count(**k) > 0)
                .map(|k| format!("{} {}", self.count(*k), k.label()))
                .collect();
            format!("{} findings: {}", self.total(), per.join(", "))
        }
    }

    pub(crate) fn record(&mut self, finding: Finding, dedup_hit: Option<usize>) {
        self.counts[finding.kind.index()] += 1;
        match dedup_hit {
            Some(i) => self.findings[i].occurrences += 1,
            None if self.findings.len() < MAX_FINDINGS => self.findings.push(finding),
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_survive_the_findings_cap() {
        let mut r = CheckReport::default();
        for i in 0..(MAX_FINDINGS + 10) {
            r.record(
                Finding {
                    kind: FindingKind::UnguardedWrite,
                    proc: 0,
                    at: i as u64,
                    addr: i as u64 * 64,
                    len: 4,
                    alloc: None,
                    lock: None,
                    stale: None,
                    occurrences: 1,
                },
                None,
            );
        }
        assert_eq!(r.findings.len(), MAX_FINDINGS);
        assert_eq!(
            r.count(FindingKind::UnguardedWrite),
            (MAX_FINDINGS + 10) as u64
        );
        assert!(!r.is_clean());
    }

    #[test]
    fn summary_lists_only_present_kinds() {
        let mut r = CheckReport::default();
        assert!(r.summary().starts_with("clean"));
        r.record(
            Finding {
                kind: FindingKind::StaleRead,
                proc: 1,
                at: 5,
                addr: 0x100,
                len: 8,
                alloc: Some("edges".into()),
                lock: None,
                stale: Some(Staleness {
                    writer: 0,
                    write_at: 3,
                }),
                occurrences: 1,
            },
            None,
        );
        assert_eq!(r.summary(), "1 findings: 1 stale-read");
        let shown = format!("{}", r.findings[0]);
        assert!(shown.contains("stale-read proc 1"), "{shown}");
        assert!(shown.contains("missed write by proc 0"), "{shown}");
    }
}
