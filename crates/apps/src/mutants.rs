//! Seeded entry-consistency bugs: the checker's true-positive suite.
//!
//! Each mutant is a compact variant of one benchmark application with one
//! deliberate violation of the entry-consistency contract planted in it —
//! the kind of bug the paper's programming model makes possible (bind the
//! wrong data, forget an acquire, read ahead of a barrier) and that the
//! write-detection machinery silently mis-executes rather than reports.
//! [`run_mutant`] runs one with the dynamic checker attached and returns
//! the run alongside the [`MutantExpectation`] describing the finding the
//! planted bug must produce; the racecheck harness and tests assert the
//! checker reports it with exactly that provenance, on every data-moving
//! backend.

use std::sync::Arc;

use midway_core::{
    FindingKind, Midway, MidwayConfig, MidwayRun, SimError, SystemBuilder, SystemSpec,
};

/// Which seeded bug to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutantKind {
    /// A matmul variant where processor 0 writes its slice of the
    /// lock-bound output without acquiring the lock.
    DropAcquire,
    /// A quicksort variant where a processor narrows a lock's binding
    /// with `rebind`, then keeps writing the range it just retired.
    RogueRebind,
    /// An sor variant where a processor reads a neighbour's edge slot
    /// before crossing the phase barrier that publishes it.
    ReadAhead,
}

impl MutantKind {
    /// All mutants, in presentation order.
    pub const ALL: [MutantKind; 3] = [
        MutantKind::DropAcquire,
        MutantKind::RogueRebind,
        MutantKind::ReadAhead,
    ];

    /// A short label for reports and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            MutantKind::DropAcquire => "matmul-drop-acquire",
            MutantKind::RogueRebind => "quicksort-rogue-rebind",
            MutantKind::ReadAhead => "sor-read-ahead",
        }
    }
}

/// The finding a mutant's planted bug must produce.
#[derive(Clone, Copy, Debug)]
pub struct MutantExpectation {
    /// The kind of violation planted.
    pub kind: FindingKind,
    /// The processor that commits it.
    pub proc: usize,
    /// The allocation the offending access falls in.
    pub alloc: &'static str,
}

/// Runs `kind` with the dynamic checker attached (`cfg.check` is forced
/// on) and returns the run plus the expectation its planted bug must
/// meet. Mutants do not verify an output — the checker's report *is*
/// their result.
///
/// # Panics
///
/// Panics if `cfg.procs < 2` (every mutant needs a victim and an
/// offender) or if the simulation itself fails.
pub fn run_mutant(kind: MutantKind, cfg: MidwayConfig) -> (MidwayRun<()>, MutantExpectation) {
    assert!(cfg.procs >= 2, "mutants need at least two processors");
    let cfg = cfg.check(true);
    let (run, expect) = match kind {
        MutantKind::DropAcquire => drop_acquire(cfg),
        MutantKind::RogueRebind => rogue_rebind(cfg),
        MutantKind::ReadAhead => read_ahead(cfg),
    };
    (run.expect("mutant simulation failed"), expect)
}

/// Matmul's discipline is "initialize the lock-bound input under the
/// lock"; this variant has processor 0 skip the acquire around its slice.
fn drop_acquire(cfg: MidwayConfig) -> (Result<MidwayRun<()>, SimError>, MutantExpectation) {
    const SLICE: usize = 8;
    let procs = cfg.procs;
    let mut b = SystemBuilder::new();
    let matrix = b.shared_array::<f64>("b", procs * SLICE, 1);
    let lock = b.lock(vec![matrix.full_range()]);
    let done = b.barrier(vec![]);
    let spec: Arc<SystemSpec> = b.build();

    let run = Midway::run(cfg, &spec, move |p| {
        let me = p.id();
        let vals: Vec<f64> = (0..SLICE).map(|k| (me * SLICE + k) as f64).collect();
        if me == 0 {
            // The bug: the slice store lands outside any held lock.
            p.write_slice(&matrix, me * SLICE, &vals);
        } else {
            p.acquire(lock);
            p.write_slice(&matrix, me * SLICE, &vals);
            p.release(lock);
        }
        p.barrier(done);
    });
    (
        run,
        MutantExpectation {
            kind: FindingKind::UnguardedWrite,
            proc: 0,
            alloc: "b",
        },
    )
}

/// Quicksort rebinds task locks to ever-narrower subranges; this variant
/// keeps writing the half of the range the rebind just retired.
fn rogue_rebind(cfg: MidwayConfig) -> (Result<MidwayRun<()>, SimError>, MutantExpectation) {
    const N: usize = 16;
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<f64>("data", N, 1);
    let lock = b.lock(vec![data.full_range()]);
    let done = b.barrier(vec![]);
    let spec: Arc<SystemSpec> = b.build();

    let run = Midway::run(cfg, &spec, move |p| {
        if p.id() == 0 {
            p.acquire(lock);
            p.rebind(lock, vec![data.range(0..N / 2)]);
            p.write(&data, 0, 1.0); // inside the narrowed binding: fine
            p.write(&data, N - 1, 2.0); // the bug: the retired half
            p.release(lock);
        } else {
            p.acquire(lock);
            p.write(&data, 1, 3.0);
            p.release(lock);
        }
        p.barrier(done);
    });
    (
        run,
        MutantExpectation {
            kind: FindingKind::BindingViolation,
            proc: 0,
            alloc: "data",
        },
    )
}

/// Sor publishes partition edges at a phase barrier; this variant has
/// processor 1 read its neighbour's edge slot before crossing it. The
/// long compute charge makes the premature read land after the
/// neighbour's write in virtual time on every backend, so the race is
/// deterministically a *stale* read, not a benign early one.
fn read_ahead(cfg: MidwayConfig) -> (Result<MidwayRun<()>, SimError>, MutantExpectation) {
    let procs = cfg.procs;
    let mut b = SystemBuilder::new();
    let edges = b.shared_array::<f64>("edges", procs, 1);
    let partitions = (0..procs).map(|q| vec![edges.range(q..q + 1)]).collect();
    let phase = b.barrier_partitioned(vec![edges.full_range()], partitions);
    let spec: Arc<SystemSpec> = b.build();

    let run = Midway::run(cfg, &spec, move |p| {
        let me = p.id();
        p.write(&edges, me, me as f64 + 0.5);
        if me == 1 {
            p.work(10_000_000);
            // The bug: the neighbour's slot is not published yet.
            let _ = p.read(&edges, 0);
        }
        p.barrier(phase);
        let left = me.checked_sub(1).unwrap_or(procs - 1);
        let _ = p.read(&edges, left);
    });
    (
        run,
        MutantExpectation {
            kind: FindingKind::StaleRead,
            proc: 1,
            alloc: "edges",
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_core::BackendKind;

    #[test]
    fn every_mutant_is_detected_with_its_provenance_on_rt() {
        for kind in MutantKind::ALL {
            let (run, expect) = run_mutant(kind, MidwayConfig::new(4, BackendKind::Rt));
            let report = run.check.expect("checker ran");
            let f = report
                .first_of(expect.kind)
                .unwrap_or_else(|| panic!("{}: no {:?} finding", kind.label(), expect.kind));
            assert_eq!(f.proc, expect.proc, "{}", kind.label());
            assert_eq!(f.alloc.as_deref(), Some(expect.alloc), "{}", kind.label());
        }
    }
}
