//! The paper's five benchmark applications, ported to the Midway DSM
//! reproduction.
//!
//! Each application follows the structure described in §4 of the paper:
//!
//! * [`water`] — N-body molecular dynamics (SPLASH), medium-grained
//!   sharing, with the private-accumulation optimization the paper cites.
//! * [`quicksort`] — TreadMarks parallel quicksort over 250,000 integers
//!   with a 1000-element bubblesort threshold and dynamic lock rebinding.
//! * [`matmul`] — 512×512 matrix multiply: coarse-grained, the expected
//!   best case for VM-DSM and worst case for RT-DSM.
//! * [`sor`] — red-black successive over-relaxation on a 1000×1000 grid
//!   for 25 iterations; only partition edges are shared.
//! * [`cholesky`] — sparse Cholesky factorization with per-column locks:
//!   fine-grained sharing. The SPLASH input matrices are unavailable, so a
//!   synthetic 2-D grid Laplacian (a standard sparse SPD test family) is
//!   factored instead; see `DESIGN.md`.
//!
//! Every application verifies its own output (sortedness, residuals,
//! factorization error) and returns a deterministic summary so runs can be
//! compared across backends and processor counts.

//! Beyond the paper's batch kernels, the crate carries the service-scale
//! workload family ([`kvstore`], [`socialgraph`], [`taskqueue`] — shared
//! scaffolding in [`service`]) and a cross-backend differential fuzzer
//! ([`fuzz`]) that turns backend agreement into a standing oracle.

pub mod cholesky;
pub mod fuzz;
pub mod kvstore;
pub mod matmul;
pub mod mutants;
pub mod quicksort;
pub mod service;
pub mod socialgraph;
pub mod sor;
pub mod taskqueue;
pub mod water;

mod driver;

pub use driver::{run_app, run_app_real, AppKind, AppOutcome, Scale};
