//! Sharded KV/object store: the service family's read-mostly workload.
//!
//! Clients issue get/put operations against a keyed value store. Keys are
//! drawn Zipfian — a small hot set absorbs most traffic, as in production
//! caches — and each key's value lives under its shard's
//! entry-consistency lock: puts take the lock exclusively, gets take it
//! shared, so the DSM ships exactly the shard's data on the lock chain.
//!
//! Every value is self-describing: a put of key `k` bumps the key's
//! version `v` and stores `mix64(k, v ^ w)` in payload word `w`. Readers
//! (and the final verifier) can therefore check any value against the
//! version that names it without knowing which processor wrote it — the
//! store's final logical content depends only on per-key write *counts*,
//! which the seeded operation streams fix, not on lock arbitration order.

use std::sync::Arc;

use midway_core::{
    BarrierId, LockId, Midway, MidwayConfig, MidwayRun, NetMsg, Proc, RealConfig, RealError,
    SharedArray, SystemBuilder, SystemSpec, Transport,
};

use crate::service::{mix64, shard_of, shard_range, ServiceParams, Zipf};

/// Cycles charged per put beyond the instrumented writes.
pub const CYCLES_PER_PUT: u64 = 800;
/// Cycles charged per get beyond the instrumented reads.
pub const CYCLES_PER_GET: u64 = 300;

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Client count, skew, op mix, think time, seed.
    pub svc: ServiceParams,
    /// Distinct keys.
    pub keys: usize,
    /// Shards (one lock each).
    pub shards: usize,
    /// Payload words per value.
    pub vwords: usize,
}

impl Params {
    /// A production-shaped configuration.
    pub fn paper() -> Params {
        Params {
            svc: ServiceParams::paper(),
            keys: 4096,
            shards: 32,
            vwords: 4,
        }
    }

    /// A tiny configuration for tests.
    pub fn small() -> Params {
        Params {
            svc: ServiceParams::small(),
            keys: 64,
            shards: 4,
            vwords: 2,
        }
    }
}

/// Per-processor outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Puts this processor committed.
    pub puts: u64,
    /// Gets this processor served.
    pub gets: u64,
    /// Whether every get observed a value consistent with its version.
    pub reads_consistent: bool,
    /// Global verification verdict (computed by processor 0).
    pub store_ok: Option<bool>,
}

struct Handles {
    /// Per-key version counters.
    vers: SharedArray<u64>,
    /// Per-key payload words (`vwords` each).
    vals: SharedArray<u64>,
    /// Per-processor `[puts, gets]` tallies.
    stats: SharedArray<u64>,
    shard_locks: Vec<LockId>,
    done: BarrierId,
}

fn build(p: Params, procs: usize) -> (Arc<SystemSpec>, Handles) {
    let mut b = SystemBuilder::new();
    let vers = b.shared_array::<u64>("vers", p.keys, 1);
    let vals = b.shared_array::<u64>("vals", p.keys * p.vwords, 1);
    let stats = b.shared_array::<u64>("stats", procs * 2, 1);
    let shard_locks = (0..p.shards)
        .map(|s| {
            let r = shard_range(s, p.keys, p.shards);
            b.lock(vec![
                vers.range(r.clone()),
                vals.range(r.start * p.vwords..r.end * p.vwords),
            ])
        })
        .collect();
    let done = b.barrier_partitioned(
        vec![stats.full_range()],
        (0..procs)
            .map(|q| vec![stats.range(q * 2..q * 2 + 2)])
            .collect(),
    );
    (
        b.build(),
        Handles {
            vers,
            vals,
            stats,
            shard_locks,
            done,
        },
    )
}

/// Runs the KV store under `cfg` and verifies the result.
///
/// # Panics
///
/// Panics if the simulation fails (deadlock or processor panic).
pub fn run(cfg: MidwayConfig, p: Params) -> MidwayRun<Outcome> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run(cfg, &spec, |proc: &mut Proc| session(proc, p, &h))
        .expect("kvstore simulation failed")
}

/// Runs the KV store over real sockets (`Midway::run_real`).
pub fn run_real(
    cfg: MidwayConfig,
    real: &RealConfig,
    p: Params,
) -> Result<MidwayRun<Outcome>, RealError> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run_real(cfg, real, &spec, |proc| session(proc, p, &h))
}

fn session<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, p: Params, h: &Handles) -> Outcome {
    let me = proc.id();
    let mut rng = p.svc.proc_rng(me);
    let zipf = Zipf::new(p.keys, p.svc.skew);
    let think = p.svc.think_per_op();
    let mut puts = 0u64;
    let mut gets = 0u64;
    let mut consistent = true;

    // Round-robin over the processor's client sessions: each pass issues
    // one operation per client, so sessions interleave as they would
    // behind one server thread.
    for _pass in 0..p.svc.ops_per_client {
        for _client in 0..p.svc.clients {
            let key = zipf.sample(&mut rng);
            let shard = shard_of(key, p.keys, p.shards);
            if rng.next_below(100) < u64::from(p.svc.write_pct) {
                proc.acquire(h.shard_locks[shard]);
                let v = proc.read(&h.vers, key) + 1;
                proc.write(&h.vers, key, v);
                for w in 0..p.vwords {
                    proc.write(&h.vals, key * p.vwords + w, mix64(key as u64, v ^ w as u64));
                }
                proc.release(h.shard_locks[shard]);
                proc.work(CYCLES_PER_PUT);
                puts += 1;
            } else {
                proc.acquire_shared(h.shard_locks[shard]);
                let v = proc.read(&h.vers, key);
                for w in 0..p.vwords {
                    let got = proc.read(&h.vals, key * p.vwords + w);
                    let want = if v == 0 {
                        0
                    } else {
                        mix64(key as u64, v ^ w as u64)
                    };
                    consistent &= got == want;
                }
                proc.release_shared(h.shard_locks[shard]);
                proc.work(CYCLES_PER_GET);
                gets += 1;
            }
            proc.idle(think);
        }
    }

    proc.write(&h.stats, me * 2, puts);
    proc.write(&h.stats, me * 2 + 1, gets);
    proc.barrier(h.done);

    // Processor 0 audits the whole store against the published tallies.
    let store_ok = (me == 0).then(|| verify(proc, p, h));
    Outcome {
        puts,
        gets,
        reads_consistent: consistent,
        store_ok,
    }
}

/// Processor 0's global audit: the sum of per-key versions must equal the
/// cluster-wide put count, and every value must match its version.
fn verify<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, p: Params, h: &Handles) -> bool {
    let mut total_puts = 0u64;
    for q in 0..proc.procs() {
        total_puts += proc.read(&h.stats, q * 2);
    }
    let mut vsum = 0u64;
    let mut values_ok = true;
    for s in 0..p.shards {
        proc.acquire_shared(h.shard_locks[s]);
        for key in shard_range(s, p.keys, p.shards) {
            let v = proc.read(&h.vers, key);
            vsum += v;
            for w in 0..p.vwords {
                let got = proc.read(&h.vals, key * p.vwords + w);
                let want = if v == 0 {
                    0
                } else {
                    mix64(key as u64, v ^ w as u64)
                };
                values_ok &= got == want;
            }
        }
        proc.release_shared(h.shard_locks[s]);
    }
    values_ok && vsum == total_puts
}

/// Whether an outcome set passes verification.
pub fn verified(outcomes: &[Outcome]) -> bool {
    outcomes[0].store_ok == Some(true) && outcomes.iter().all(|o| o.reads_consistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_core::BackendKind;

    #[test]
    fn serves_and_verifies_on_every_backend() {
        for backend in [
            BackendKind::Rt,
            BackendKind::Vm,
            BackendKind::Blast,
            BackendKind::TwinAll,
        ] {
            let run = run(MidwayConfig::new(3, backend), Params::small());
            assert!(verified(&run.results), "{backend:?}: {:?}", run.results);
            let puts: u64 = run.results.iter().map(|o| o.puts).sum();
            let gets: u64 = run.results.iter().map(|o| o.gets).sum();
            assert_eq!(puts + gets, (3 * Params::small().svc.ops_per_proc()) as u64);
        }
    }

    #[test]
    fn standalone_serves_the_same_streams() {
        let run = run(MidwayConfig::standalone(), Params::small());
        assert!(verified(&run.results));
        // No data moves standalone; the only "messages" are the think-time
        // timer ticks, one per client op.
        assert_eq!(run.messages, Params::small().svc.ops_per_proc() as u64);
    }

    #[test]
    fn hot_keys_draw_contended_lock_traffic() {
        // With web-like skew the hot shard's lock transfers dominate: the
        // run must actually move data on the lock chain, not just spin.
        let run = run(MidwayConfig::new(4, BackendKind::Rt), Params::small());
        let transfers: u64 = run.counters.iter().map(|c| c.lock_transfers_served).sum();
        assert!(transfers > 0, "no lock transfers at all");
    }
}
