//! Matrix multiply: coarse-grained sharing, high computation-to-
//! communication ratio (paper §4).
//!
//! "The matrix-multiply program is of interest because its data is
//! partitioned to minimize the amount of sharing and because it writes
//! every word on every page of the result matrix. The large number of
//! writes to each page helps the VM-DSM system best amortize the cost of
//! the initial page fault... This represents the expected best case for
//! VM-DSM, and the worst case for RT-DSM."
//!
//! Structure: each processor initializes its row stripes of `A` and `B`
//! (so initialization writes are spread evenly, as on the real system); an
//! init barrier broadcasts `B` (every processor needs all of it); each
//! processor computes its row stripe of `C`, writing every element; a
//! final barrier publishes `C`.

use std::sync::Arc;

use midway_core::{
    BarrierId, Midway, MidwayConfig, MidwayRun, NetMsg, Proc, RealConfig, RealError, SharedArray,
    SystemBuilder, SystemSpec, Transport,
};
use midway_sim::SplitMix64;

/// Cycles charged per fused multiply-add of the inner loop (estimated for
/// a 25 MHz R3000: FP multiply + add + two loads).
pub const CYCLES_PER_MAC: u64 = 12;

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Matrix dimension (paper: 512).
    pub n: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Params {
    /// The paper's configuration: 512×512 doubles.
    pub fn paper() -> Params {
        Params { n: 512, seed: 42 }
    }

    /// A small configuration for tests.
    pub fn small() -> Params {
        Params { n: 24, seed: 42 }
    }
}

/// Handles to the shared data.
struct Handles {
    a: SharedArray<f64>,
    b: SharedArray<f64>,
    c: SharedArray<f64>,
    /// Misclassified per-processor progress marker (see quicksort).
    scratch: SharedArray<f64>,
    init_done: BarrierId,
    all_done: BarrierId,
    n: usize,
}

/// The per-processor result: a checksum of the full result matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outcome {
    /// Deterministic checksum of `C` (identical on every processor).
    pub checksum: f64,
    /// Max `|C[i][j] - reference|` over sampled entries.
    pub max_sample_error: f64,
}

fn build(p: Params, procs: usize) -> (Arc<SystemSpec>, Handles) {
    let n = p.n;
    let mut b = SystemBuilder::new();
    let a = b.shared_array::<f64>("A", n * n, 1);
    let bm = b.shared_array::<f64>("B", n * n, 1);
    let c = b.shared_array::<f64>("C", n * n, 1);
    let scratch = b.private_array::<f64>("progress", 16);
    let stripe = |arr: &SharedArray<f64>, p: usize| {
        let rows = rows_of(n, procs, p);
        vec![arr.range(rows.start * n..rows.end * n)]
    };
    // The init barrier publishes B (everyone needs all of B); A's rows stay
    // where they were initialized.
    let init_done = b.barrier_partitioned(
        vec![bm.full_range()],
        (0..procs).map(|q| stripe(&bm, q)).collect(),
    );
    let all_done = b.barrier_partitioned(
        vec![c.full_range()],
        (0..procs).map(|q| stripe(&c, q)).collect(),
    );
    (
        b.build(),
        Handles {
            a,
            b: bm,
            c,
            scratch,
            init_done,
            all_done,
            n,
        },
    )
}

fn rows_of(n: usize, procs: usize, p: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(procs);
    (per * p).min(n)..(per * (p + 1)).min(n)
}

fn elem(seed: u64, which: u64, i: usize, j: usize, n: usize) -> f64 {
    let mut r = SplitMix64::new(seed ^ which.wrapping_mul(0x9E37) ^ (i * n + j) as u64);
    r.next_range_f64(-1.0, 1.0)
}

/// Runs matrix multiply under `cfg` and verifies the result.
///
/// # Panics
///
/// Panics if the simulation fails (deadlock or processor panic).
pub fn run(cfg: MidwayConfig, p: Params) -> MidwayRun<Outcome> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run(cfg, &spec, |proc: &mut Proc| session(proc, p, &h))
        .expect("matmul simulation failed")
}

/// Runs matrix multiply over real sockets (`Midway::run_real`).
pub fn run_real(
    cfg: MidwayConfig,
    real: &RealConfig,
    p: Params,
) -> Result<MidwayRun<Outcome>, RealError> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run_real(cfg, real, &spec, |proc| session(proc, p, &h))
}

fn session<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, p: Params, h: &Handles) -> Outcome {
    let n = h.n;
    {
        let me = proc.id();
        let rows = rows_of(n, proc.procs(), me);

        // Parallel initialization of A and B row stripes.
        for i in rows.clone() {
            for j in 0..n {
                proc.write(&h.a, i * n + j, elem(p.seed, 1, i, j, n));
                proc.write(&h.b, i * n + j, elem(p.seed, 2, i, j, n));
            }
        }
        proc.barrier(h.init_done);

        // Copy B into private memory (transposed for locality); reads are
        // local under the update protocol.
        let mut bt = vec![0.0f64; n * n];
        for k in 0..n {
            for j in 0..n {
                bt[j * n + k] = proc.read(&h.b, k * n + j);
            }
        }

        // Compute this stripe of C, writing every element.
        for i in rows.clone() {
            if i % 8 == 0 {
                // Misclassified private progress write (6-cycle penalty).
                proc.write(&h.scratch, me % 16, i as f64);
            }
            let row_a: Vec<f64> = proc.read_vec(&h.a, i * n..(i + 1) * n);
            for j in 0..n {
                let mut acc = 0.0;
                let bcol = &bt[j * n..(j + 1) * n];
                for (k, aik) in row_a.iter().enumerate() {
                    acc += aik * bcol[k];
                }
                proc.write(&h.c, i * n + j, acc);
            }
            proc.work((n * n) as u64 * CYCLES_PER_MAC);
        }
        proc.barrier(h.all_done);

        // Verification: checksum the full matrix (identical everywhere)
        // and check sampled entries against a direct computation.
        let mut checksum = 0.0;
        for i in 0..n {
            for j in 0..n {
                checksum += proc.read(&h.c, i * n + j) * ((i * 31 + j) % 17) as f64;
            }
        }
        let mut max_err = 0.0f64;
        let mut rng = SplitMix64::new(p.seed ^ 0xC0FFEE);
        for _ in 0..8 {
            let i = rng.next_below(n as u64) as usize;
            let j = rng.next_below(n as u64) as usize;
            let mut reference = 0.0;
            for k in 0..n {
                reference += elem(p.seed, 1, i, k, n) * elem(p.seed, 2, k, j, n);
            }
            let got = proc.read(&h.c, i * n + j);
            max_err = max_err.max((got - reference).abs());
        }
        Outcome {
            checksum,
            max_sample_error: max_err,
        }
    }
}

/// Whether an outcome passes verification.
pub fn verified(outcomes: &[Outcome]) -> bool {
    let first = outcomes[0].checksum;
    outcomes.iter().all(|o| {
        o.max_sample_error < 1e-9 && (o.checksum - first).abs() <= 1e-6 * first.abs().max(1.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_core::BackendKind;

    #[test]
    fn small_matmul_is_correct_on_every_backend() {
        for backend in [
            BackendKind::Rt,
            BackendKind::Vm,
            BackendKind::Blast,
            BackendKind::TwinAll,
        ] {
            let run = run(MidwayConfig::new(3, backend), Params::small());
            assert!(verified(&run.results), "{backend:?}: {:?}", run.results);
        }
    }

    #[test]
    fn standalone_matches_parallel_checksum() {
        let solo = run(MidwayConfig::standalone(), Params::small());
        let par = run(MidwayConfig::new(4, BackendKind::Rt), Params::small());
        let a = solo.results[0].checksum;
        let b = par.results[0].checksum;
        assert!((a - b).abs() <= 1e-6 * a.abs(), "{a} vs {b}");
    }

    #[test]
    fn every_result_element_is_written_once() {
        // RT-DSM's worst case: one dirtybit set per element of A, B and C
        // on this processor's stripes.
        let p = Params::small();
        let run = run(MidwayConfig::new(2, BackendKind::Rt), p);
        let n = p.n as u64;
        let per_proc = n / 2 * n;
        for c in &run.counters {
            assert_eq!(c.dirtybits_set, 3 * per_proc, "A + B init + C compute");
        }
    }

    #[test]
    fn vm_faults_amortize_across_many_writes() {
        let p = Params::small();
        let run = run(MidwayConfig::new(2, BackendKind::Vm), p);
        let writes = 3 * (p.n as u64 / 2) * p.n as u64;
        for c in &run.counters {
            assert!(
                c.write_faults * 64 < writes,
                "faults ({}) should be far rarer than writes ({writes})",
                c.write_faults
            );
        }
    }

    #[test]
    fn row_partition_covers_everything_without_overlap() {
        for n in [7, 24, 512] {
            for procs in [1, 3, 8] {
                let mut seen = vec![false; n];
                for p in 0..procs {
                    for r in rows_of(n, procs, p) {
                        assert!(!seen[r]);
                        seen[r] = true;
                    }
                }
                assert!(seen.iter().all(|s| *s), "n={n} procs={procs}");
            }
        }
    }
}
