//! N-body molecular dynamics (SPLASH `water`, paper §4).
//!
//! "The program evaluates forces and potentials for a system of 343 water
//! molecules in a liquid state for 5 steps. It exhibits medium-grained
//! sharing. Our version of water has the optimization suggested in [Singh
//! et al. 92], which collects changes to the molecules in private memory
//! during a time step, updating the shared molecules only at the end of
//! each time step."
//!
//! Each molecule carries nine position and nine force doubles (three atoms
//! × three coordinates). Forces are accumulated in private memory during
//! the pair phase and flushed into the shared force array under
//! per-molecule locks; owners then integrate their molecules and publish
//! positions through a partitioned barrier.

use std::sync::Arc;

use midway_core::{
    BarrierId, LockId, Midway, MidwayConfig, MidwayRun, NetMsg, Proc, RealConfig, RealError,
    SharedArray, SystemBuilder, SystemSpec, Transport,
};

/// Cycles charged per molecule-pair interaction (calibrated so the
/// standalone run lands near the paper's 104.2 s; see `DESIGN.md`).
pub const CYCLES_PER_PAIR: u64 = 8_900;
/// Cycles charged per molecule integration.
pub const CYCLES_PER_INTEGRATE: u64 = 600;

/// Values per molecule: three atoms × three coordinates.
const DOF: usize = 9;

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Molecules (paper: 343 = 7³).
    pub molecules: usize,
    /// Time steps (paper: 5).
    pub steps: usize,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Params {
        Params {
            molecules: 343,
            steps: 5,
        }
    }

    /// A small configuration for tests.
    pub fn small() -> Params {
        Params {
            molecules: 27,
            steps: 3,
        }
    }
}

/// Per-processor outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outcome {
    /// Checksum over the final positions of this processor's molecules.
    pub position_checksum: f64,
    /// Largest coordinate magnitude seen (sanity: the system stays bound).
    pub max_coord: f64,
}

struct Handles {
    pos: SharedArray<f64>,
    force: SharedArray<f64>,
    /// Velocities: per-molecule state a Midway port shares by default
    /// (heap data is shared unless annotated), written by the owner.
    vel: SharedArray<f64>,
    /// Accelerations from the previous step (velocity Verlet needs both).
    acc: SharedArray<f64>,
    mol_locks: Vec<LockId>,
    flush_done: BarrierId,
    step_done: BarrierId,
}

fn owner_of(n: usize, procs: usize, m: usize) -> usize {
    (m * procs / n.max(1)).min(procs - 1)
}

fn molecules_of(n: usize, procs: usize, p: usize) -> Vec<usize> {
    (0..n).filter(|m| owner_of(n, procs, *m) == p).collect()
}

fn build(p: Params, procs: usize) -> (Arc<SystemSpec>, Handles) {
    let n = p.molecules;
    let mut b = SystemBuilder::new();
    let pos = b.shared_array::<f64>("positions", n * DOF, 1);
    let force = b.shared_array::<f64>("forces", n * DOF, 1);
    let vel = b.shared_array::<f64>("velocities", n * DOF, 1);
    let acc = b.shared_array::<f64>("accelerations", n * DOF, 1);
    // The lock guards the molecule's whole mutable record, so transfers
    // also carry state only the owner writes — the source of the paper's
    // redundant-data observation for water.
    let mol_locks = (0..n)
        .map(|m| {
            b.lock(vec![
                force.range(m * DOF..(m + 1) * DOF),
                vel.range(m * DOF..(m + 1) * DOF),
                acc.range(m * DOF..(m + 1) * DOF),
            ])
        })
        .collect();
    // The flush barrier carries no data: forces travel under the locks.
    let flush_done = b.barrier(vec![]);
    // Position publication: each owner writes only its molecules.
    let partitions: Vec<_> = (0..procs)
        .map(|q| {
            molecules_of(n, procs, q)
                .into_iter()
                .map(|m| pos.range(m * DOF..(m + 1) * DOF))
                .collect()
        })
        .collect();
    let step_done = b.barrier_partitioned(vec![pos.full_range()], partitions);
    (
        b.build(),
        Handles {
            pos,
            force,
            vel,
            acc,
            mol_locks,
            flush_done,
            step_done,
        },
    )
}

/// Initial lattice position of atom `a` of molecule `m`.
fn initial(m: usize, a: usize, k: usize, side: usize) -> f64 {
    let cell = 3.8;
    let (x, y, z) = (m % side, (m / side) % side, m / (side * side));
    let base = [x as f64 * cell, y as f64 * cell, z as f64 * cell][k];
    // Small intra-molecular offsets per atom.
    base + 0.3 * a as f64 * [1.0, -0.5, 0.25][k]
}

/// Lennard-Jones-style force between molecule centres, clamped for
/// stability.
fn pair_force(ci: [f64; 3], cj: [f64; 3]) -> [f64; 3] {
    let d = [cj[0] - ci[0], cj[1] - ci[1], cj[2] - ci[2]];
    let r2 = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).max(1.0);
    if r2 > 36.0 {
        return [0.0; 3]; // cutoff
    }
    let inv = 1.0 / r2;
    let s6 = inv * inv * inv * 200.0;
    let mag = 24.0 * s6 * (1.0 - 2.0 * s6 * 0.05) * inv;
    [-mag * d[0], -mag * d[1], -mag * d[2]]
}

/// Runs water under `cfg`.
///
/// # Panics
///
/// Panics if the simulation fails.
pub fn run(cfg: MidwayConfig, p: Params) -> MidwayRun<Outcome> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run(cfg, &spec, |proc: &mut Proc| session(proc, p, &h))
        .expect("water simulation failed")
}

/// Runs water over real sockets (`Midway::run_real`).
pub fn run_real(
    cfg: MidwayConfig,
    real: &RealConfig,
    p: Params,
) -> Result<MidwayRun<Outcome>, RealError> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run_real(cfg, real, &spec, |proc| session(proc, p, &h))
}

fn session<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, p: Params, h: &Handles) -> Outcome {
    let n = p.molecules;
    let side = (n as f64).cbrt().round() as usize;
    {
        let me = proc.id();
        let procs = proc.procs();
        let mine = molecules_of(n, procs, me);

        // Owners publish initial positions.
        for &m in &mine {
            for a in 0..3 {
                for k in 0..3 {
                    proc.write(&h.pos, m * DOF + a * 3 + k, initial(m, a, k, side));
                }
            }
        }
        proc.barrier(h.step_done);

        // Private per-processor force accumulation (the paper's
        // optimization); molecule state itself is shared.
        let mut local_force = vec![0.0f64; n * DOF];
        let dt = 0.002;

        for _step in 0..p.steps {
            // Phase 1: pair forces into private memory.
            let all_pos: Vec<f64> = proc.read_vec(&h.pos, 0..n * DOF);
            let centre = |m: usize| -> [f64; 3] {
                let mut c = [0.0f64; 3];
                for a in 0..3 {
                    for (k, ck) in c.iter_mut().enumerate() {
                        *ck += all_pos[m * DOF + a * 3 + k] / 3.0;
                    }
                }
                c
            };
            let mut pairs = 0u64;
            for &i in &mine {
                let ci = centre(i);
                for j in i + 1..n {
                    let f = pair_force(ci, centre(j));
                    pairs += 1;
                    for a in 0..3 {
                        for k in 0..3 {
                            local_force[i * DOF + a * 3 + k] += f[k] / 3.0;
                            local_force[j * DOF + a * 3 + k] -= f[k] / 3.0;
                        }
                    }
                }
            }
            proc.work(pairs * CYCLES_PER_PAIR);

            // Phase 2: flush private accumulations into the shared force
            // array under per-molecule locks.
            for m in 0..n {
                let any = local_force[m * DOF..(m + 1) * DOF]
                    .iter()
                    .any(|v| *v != 0.0);
                if !any {
                    continue;
                }
                proc.acquire(h.mol_locks[m]);
                for k in 0..DOF {
                    let cur = proc.read(&h.force, m * DOF + k);
                    proc.write(&h.force, m * DOF + k, cur + local_force[m * DOF + k]);
                    local_force[m * DOF + k] = 0.0;
                }
                proc.release(h.mol_locks[m]);
            }
            proc.barrier(h.flush_done);

            // Phase 3: owners integrate (velocity Verlet) and reset forces.
            for &m in &mine {
                proc.acquire(h.mol_locks[m]);
                for k in 0..DOF {
                    let i = m * DOF + k;
                    let a_new = proc.read(&h.force, i); // unit mass
                    let a_old = proc.read(&h.acc, i);
                    let v = proc.read(&h.vel, i) + 0.5 * (a_old + a_new) * dt;
                    let x = proc.read(&h.pos, i) + v * dt + 0.5 * a_new * dt * dt;
                    proc.write(&h.vel, i, v);
                    proc.write(&h.acc, i, a_new);
                    proc.write(&h.pos, i, x);
                    proc.write(&h.force, i, 0.0);
                }
                proc.release(h.mol_locks[m]);
            }
            proc.work(mine.len() as u64 * CYCLES_PER_INTEGRATE);
            proc.barrier(h.step_done);
        }

        // Checksum own molecules' final positions.
        let mut checksum = 0.0;
        let mut max_coord = 0.0f64;
        for &m in &mine {
            for k in 0..DOF {
                let x = proc.read(&h.pos, m * DOF + k);
                checksum += x * ((m * DOF + k) % 11 + 1) as f64;
                max_coord = max_coord.max(x.abs());
            }
        }
        Outcome {
            position_checksum: checksum,
            max_coord,
        }
    }
}

/// Total position checksum.
pub fn checksum(outcomes: &[Outcome]) -> f64 {
    outcomes.iter().map(|o| o.position_checksum).sum()
}

/// Sanity verification: the system stays bound and produced real numbers.
pub fn verified(outcomes: &[Outcome]) -> bool {
    outcomes
        .iter()
        .all(|o| o.max_coord.is_finite() && o.max_coord < 1.0e4 && o.position_checksum.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_core::BackendKind;

    #[test]
    fn stable_on_every_backend() {
        for backend in [
            BackendKind::Rt,
            BackendKind::Vm,
            BackendKind::Blast,
            BackendKind::TwinAll,
        ] {
            let run = run(MidwayConfig::new(3, backend), Params::small());
            assert!(verified(&run.results), "{backend:?}");
        }
    }

    #[test]
    fn parallel_matches_standalone() {
        let solo = run(MidwayConfig::standalone(), Params::small());
        let par = run(MidwayConfig::new(4, BackendKind::Rt), Params::small());
        let a = checksum(&solo.results);
        let b = checksum(&par.results);
        // Force accumulation order differs across processor counts, so
        // agreement is approximate.
        assert!(
            (a - b).abs() <= 1e-6 * a.abs().max(1.0),
            "standalone {a} vs parallel {b}"
        );
    }

    #[test]
    fn rt_and_vm_agree() {
        let rt = run(MidwayConfig::new(3, BackendKind::Rt), Params::small());
        let vm = run(MidwayConfig::new(3, BackendKind::Vm), Params::small());
        let a = checksum(&rt.results);
        let b = checksum(&vm.results);
        assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn forces_travel_under_locks_not_barriers() {
        let run = run(MidwayConfig::new(3, BackendKind::Rt), Params::small());
        let acquires: u64 = run.counters.iter().map(|c| c.lock_acquires).sum();
        // Every processor flushes most molecules every step.
        assert!(acquires > (Params::small().molecules * Params::small().steps) as u64);
    }

    #[test]
    fn molecule_partition_is_total() {
        for procs in [1, 3, 8] {
            let n = 343;
            let mut count = 0;
            for p in 0..procs {
                count += molecules_of(n, procs, p).len();
            }
            assert_eq!(count, n);
        }
    }
}
