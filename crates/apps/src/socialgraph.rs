//! Social-graph updates: posts, follows and timeline reads (the service
//! family's graph-mutation workload, after DRust's evaluation set).
//!
//! The graph is `nodes` profiles, each with a post counter, a payload
//! (the latest post, `payload_words` wide) and an adjacency list of up to
//! `max_degree` followers. Nodes are sharded; a shard's lock binds the
//! counters, payloads, degrees and adjacency rows of its node range.
//!
//! Clients issue three operation kinds, with targets drawn Zipfian so a
//! few celebrity nodes absorb most of the traffic:
//!
//! * **post** (mutating) — bump the node's post counter `c` and write
//!   payload word `w := mix64(node, c ^ w)`, under the shard lock.
//! * **follow** (mutating) — append a follower edge to the node's
//!   adjacency list, or count a skip when the list is full.
//! * **timeline** (read) — read the node's counter, payload and newest
//!   edge under the shard lock in shared mode, checking the payload
//!   against the counter.
//!
//! Adjacency *placement* depends on arbitration order (which follow wins
//! slot `d`), but the audited invariants do not: post counters sum to the
//! cluster-wide post count, degrees plus skips sum to the follow count,
//! every payload matches its counter, and every edge names a real node.

use std::sync::Arc;

use midway_core::{
    BarrierId, LockId, Midway, MidwayConfig, MidwayRun, NetMsg, Proc, RealConfig, RealError,
    SharedArray, SystemBuilder, SystemSpec, Transport,
};

use crate::service::{mix64, shard_of, shard_range, ServiceParams, Zipf};

/// Cycles charged per mutating operation beyond the instrumented writes.
pub const CYCLES_PER_UPDATE: u64 = 700;
/// Cycles charged per timeline read beyond the instrumented reads.
pub const CYCLES_PER_TIMELINE: u64 = 350;

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Client count, skew, op mix, think time, seed.
    pub svc: ServiceParams,
    /// Profiles in the graph.
    pub nodes: usize,
    /// Shards (one lock each).
    pub shards: usize,
    /// Adjacency capacity per node.
    pub max_degree: usize,
    /// Payload words per node.
    pub payload_words: usize,
}

impl Params {
    /// A production-shaped configuration.
    pub fn paper() -> Params {
        Params {
            svc: ServiceParams::paper(),
            nodes: 2048,
            shards: 32,
            max_degree: 24,
            payload_words: 3,
        }
    }

    /// A tiny configuration for tests.
    pub fn small() -> Params {
        Params {
            svc: ServiceParams::small(),
            nodes: 48,
            shards: 4,
            max_degree: 6,
            payload_words: 2,
        }
    }
}

/// Per-processor outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Posts this processor published.
    pub posts: u64,
    /// Follow edges this processor added (capacity skips excluded).
    pub follows: u64,
    /// Follows dropped because the target list was full.
    pub skips: u64,
    /// Timeline reads served.
    pub timelines: u64,
    /// Whether every timeline observed payload consistent with the
    /// node's post counter.
    pub reads_consistent: bool,
    /// Global verification verdict (computed by processor 0).
    pub graph_ok: Option<bool>,
}

struct Handles {
    /// Per-node post counters.
    posts: SharedArray<u64>,
    /// Per-node payload words.
    payload: SharedArray<u64>,
    /// Per-node follower counts.
    degree: SharedArray<u64>,
    /// Per-node adjacency rows (`max_degree` each).
    adj: SharedArray<u64>,
    /// Per-processor `[posts, follows, skips, timelines]` tallies.
    stats: SharedArray<u64>,
    shard_locks: Vec<LockId>,
    done: BarrierId,
}

fn build(p: Params, procs: usize) -> (Arc<SystemSpec>, Handles) {
    let mut b = SystemBuilder::new();
    let posts = b.shared_array::<u64>("posts", p.nodes, 1);
    let payload = b.shared_array::<u64>("payload", p.nodes * p.payload_words, 1);
    let degree = b.shared_array::<u64>("degree", p.nodes, 1);
    let adj = b.shared_array::<u64>("adj", p.nodes * p.max_degree, 1);
    let stats = b.shared_array::<u64>("stats", procs * 4, 1);
    let shard_locks = (0..p.shards)
        .map(|s| {
            let r = shard_range(s, p.nodes, p.shards);
            b.lock(vec![
                posts.range(r.clone()),
                payload.range(r.start * p.payload_words..r.end * p.payload_words),
                degree.range(r.clone()),
                adj.range(r.start * p.max_degree..r.end * p.max_degree),
            ])
        })
        .collect();
    let done = b.barrier_partitioned(
        vec![stats.full_range()],
        (0..procs)
            .map(|q| vec![stats.range(q * 4..q * 4 + 4)])
            .collect(),
    );
    (
        b.build(),
        Handles {
            posts,
            payload,
            degree,
            adj,
            stats,
            shard_locks,
            done,
        },
    )
}

/// Runs the social-graph workload under `cfg` and verifies the result.
///
/// # Panics
///
/// Panics if the simulation fails (deadlock or processor panic).
pub fn run(cfg: MidwayConfig, p: Params) -> MidwayRun<Outcome> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run(cfg, &spec, |proc: &mut Proc| session(proc, p, &h))
        .expect("socialgraph simulation failed")
}

/// Runs the social-graph workload over real sockets (`Midway::run_real`).
pub fn run_real(
    cfg: MidwayConfig,
    real: &RealConfig,
    p: Params,
) -> Result<MidwayRun<Outcome>, RealError> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run_real(cfg, real, &spec, |proc| session(proc, p, &h))
}

fn session<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, p: Params, h: &Handles) -> Outcome {
    let me = proc.id();
    let mut rng = p.svc.proc_rng(me);
    let zipf = Zipf::new(p.nodes, p.svc.skew);
    let think = p.svc.think_per_op();
    let mut out = Outcome {
        posts: 0,
        follows: 0,
        skips: 0,
        timelines: 0,
        reads_consistent: true,
        graph_ok: None,
    };

    for _pass in 0..p.svc.ops_per_client {
        for _client in 0..p.svc.clients {
            let node = zipf.sample(&mut rng);
            let shard = shard_of(node, p.nodes, p.shards);
            if rng.next_below(100) < u64::from(p.svc.write_pct) {
                if rng.next_below(2) == 0 {
                    // Post: new payload under the node's shard lock.
                    proc.acquire(h.shard_locks[shard]);
                    let c = proc.read(&h.posts, node) + 1;
                    proc.write(&h.posts, node, c);
                    for w in 0..p.payload_words {
                        proc.write(
                            &h.payload,
                            node * p.payload_words + w,
                            mix64(node as u64, c ^ w as u64),
                        );
                    }
                    proc.release(h.shard_locks[shard]);
                    out.posts += 1;
                } else {
                    // Follow: the sampled celebrity gains a follower.
                    let follower = rng.next_below(p.nodes as u64);
                    proc.acquire(h.shard_locks[shard]);
                    let d = proc.read(&h.degree, node);
                    if (d as usize) < p.max_degree {
                        proc.write(&h.adj, node * p.max_degree + d as usize, follower);
                        proc.write(&h.degree, node, d + 1);
                        out.follows += 1;
                    } else {
                        out.skips += 1;
                    }
                    proc.release(h.shard_locks[shard]);
                }
                proc.work(CYCLES_PER_UPDATE);
            } else {
                // Timeline: read the node's profile in shared mode.
                proc.acquire_shared(h.shard_locks[shard]);
                let c = proc.read(&h.posts, node);
                for w in 0..p.payload_words {
                    let got = proc.read(&h.payload, node * p.payload_words + w);
                    let want = if c == 0 {
                        0
                    } else {
                        mix64(node as u64, c ^ w as u64)
                    };
                    out.reads_consistent &= got == want;
                }
                let d = proc.read(&h.degree, node);
                if d > 0 {
                    let newest = proc.read(&h.adj, node * p.max_degree + d as usize - 1);
                    out.reads_consistent &= (newest as usize) < p.nodes;
                }
                proc.release_shared(h.shard_locks[shard]);
                proc.work(CYCLES_PER_TIMELINE);
                out.timelines += 1;
            }
            proc.idle(think);
        }
    }

    proc.write(&h.stats, me * 4, out.posts);
    proc.write(&h.stats, me * 4 + 1, out.follows);
    proc.write(&h.stats, me * 4 + 2, out.skips);
    proc.write(&h.stats, me * 4 + 3, out.timelines);
    proc.barrier(h.done);

    out.graph_ok = (me == 0).then(|| verify(proc, p, h));
    out
}

/// Processor 0's global audit of the graph against the published tallies.
fn verify<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, p: Params, h: &Handles) -> bool {
    let mut total_posts = 0u64;
    let mut total_follows = 0u64;
    for q in 0..proc.procs() {
        total_posts += proc.read(&h.stats, q * 4);
        total_follows += proc.read(&h.stats, q * 4 + 1);
    }
    let mut post_sum = 0u64;
    let mut degree_sum = 0u64;
    let mut ok = true;
    for s in 0..p.shards {
        proc.acquire_shared(h.shard_locks[s]);
        for node in shard_range(s, p.nodes, p.shards) {
            let c = proc.read(&h.posts, node);
            post_sum += c;
            for w in 0..p.payload_words {
                let got = proc.read(&h.payload, node * p.payload_words + w);
                let want = if c == 0 {
                    0
                } else {
                    mix64(node as u64, c ^ w as u64)
                };
                ok &= got == want;
            }
            let d = proc.read(&h.degree, node);
            ok &= d as usize <= p.max_degree;
            degree_sum += d;
            for e in 0..d as usize {
                ok &= (proc.read(&h.adj, node * p.max_degree + e) as usize) < p.nodes;
            }
        }
        proc.release_shared(h.shard_locks[s]);
    }
    ok && post_sum == total_posts && degree_sum == total_follows
}

/// Whether an outcome set passes verification.
pub fn verified(outcomes: &[Outcome]) -> bool {
    outcomes[0].graph_ok == Some(true) && outcomes.iter().all(|o| o.reads_consistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_core::BackendKind;

    #[test]
    fn updates_and_verifies_on_every_backend() {
        for backend in [
            BackendKind::Rt,
            BackendKind::Vm,
            BackendKind::Blast,
            BackendKind::TwinAll,
        ] {
            let run = run(MidwayConfig::new(3, backend), Params::small());
            assert!(verified(&run.results), "{backend:?}: {:?}", run.results);
        }
    }

    #[test]
    fn celebrities_fill_up_and_skips_are_accounted() {
        // Web-like skew on a small graph must exhaust at least one
        // adjacency list, exercising the skip path.
        let mut p = Params::small();
        p.svc.write_pct = 80;
        p.svc.ops_per_client = 60;
        let run = run(MidwayConfig::new(4, BackendKind::Rt), p);
        assert!(verified(&run.results), "{:?}", run.results);
        let skips: u64 = run.results.iter().map(|o| o.skips).sum();
        assert!(skips > 0, "no adjacency list ever filled");
    }

    #[test]
    fn standalone_runs_the_same_streams() {
        let run = run(MidwayConfig::standalone(), Params::small());
        assert!(verified(&run.results));
        // No data moves standalone; the only "messages" are the think-time
        // timer ticks, one per client op.
        assert_eq!(run.messages, Params::small().svc.ops_per_proc() as u64);
    }
}
