//! Shared scaffolding for the service-scale workload family.
//!
//! The paper's five applications are batch kernels: fixed input, compute,
//! verify. The service family instead models the traffic shape of a
//! shared-data *service* — many client sessions issuing small operations
//! against hot shared state — the workload class DSM systems are judged
//! on today (DRust's KV/object-store and social-graph evaluation set).
//! Three applications build on this module:
//!
//! * [`crate::kvstore`] — a sharded KV/object store with Zipfian key skew
//!   and a read-mostly operation mix.
//! * [`crate::socialgraph`] — social-graph updates: posts, follows and
//!   timeline reads over nodes + adjacency lists under per-shard
//!   entry-consistency locks.
//! * [`crate::taskqueue`] — a high-churn task queue where synchronization
//!   dominates computation.
//!
//! Everything here is deterministic: a [`ServiceParams`] seed fixes every
//! client's operation stream, so a run is reproducible across backends,
//! transports and replays.

use midway_sim::SplitMix64;

/// The common service-workload knobs, shared by all three applications.
///
/// `clients` scales offered load (each processor multiplexes that many
/// client sessions), `skew` shapes key popularity, and `write_pct` sets
/// the operation mix — together the three axes harnesses sweep from idle
/// to saturation.
#[derive(Clone, Copy, Debug)]
pub struct ServiceParams {
    /// Client sessions multiplexed on each processor.
    pub clients: usize,
    /// Operations each client session issues.
    pub ops_per_client: usize,
    /// Zipf exponent for key popularity (0 = uniform, ~1 = web-like).
    pub skew: f64,
    /// Percentage of operations that mutate state (the rest read).
    pub write_pct: u32,
    /// Per-operation client think time in cycles, charged as idle time
    /// divided across the processor's sessions: more clients per
    /// processor means less idle time between operations, which is what
    /// sweeps the system from idle toward saturation.
    pub think_cycles: u64,
    /// Workload seed; every operation stream derives from it.
    pub seed: u64,
}

impl ServiceParams {
    /// A production-shaped default: read-mostly, web-like skew.
    pub fn paper() -> ServiceParams {
        ServiceParams {
            clients: 8,
            ops_per_client: 200,
            skew: 0.99,
            write_pct: 10,
            think_cycles: 200_000,
            seed: 20_260_808,
        }
    }

    /// A tiny configuration for tests.
    pub fn small() -> ServiceParams {
        ServiceParams {
            clients: 2,
            ops_per_client: 30,
            skew: 0.9,
            write_pct: 30,
            think_cycles: 20_000,
            seed: 20_260_808,
        }
    }

    /// Operations issued per processor.
    pub fn ops_per_proc(&self) -> usize {
        self.clients * self.ops_per_client
    }

    /// The per-processor RNG seeding every client stream on `proc`.
    pub fn proc_rng(&self, proc: usize) -> SplitMix64 {
        SplitMix64::new(self.seed ^ (proc as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Idle cycles charged after each operation (think time divided
    /// across the processor's sessions).
    pub fn think_per_op(&self) -> u64 {
        self.think_cycles / self.clients.max(1) as u64
    }
}

/// A deterministic Zipfian sampler over ranks `0..n`.
///
/// Rank `k` (0-based) is drawn with probability proportional to
/// `(k+1)^-s`. Sampling inverts the precomputed cumulative distribution
/// with a binary search, so a draw costs `O(log n)` and depends only on
/// the caller's [`SplitMix64`] stream — the same seed yields the same key
/// sequence on every backend and transport.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities; `cum[k]` = P(rank ≤ k). The last entry
    /// is exactly 1.0.
    cum: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative / non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += ((k + 1) as f64).powf(-s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        *cum.last_mut().expect("n > 0") = 1.0;
        Zipf { cum }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether the sampler is over an empty rank set (never true).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draws one rank in `0..n` from `rng`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // First index with cum[i] > u (u < 1.0, and cum ends at 1.0).
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }
}

/// A cheap 64-bit mixer (SplitMix64 finalizer) for synthesizing payload
/// words from logical coordinates. Service apps write
/// `payload = mix64(key, version)`-shaped values so any later reader —
/// including the verifier — can check content against the metadata that
/// names it, regardless of which processor performed the write.
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `key` in `0..keys` to a shard in `0..shards` (contiguous key
/// ranges, so each shard lock binds one contiguous slice per array).
pub fn shard_of(key: usize, keys: usize, shards: usize) -> usize {
    key * shards / keys
}

/// The key range shard `s` owns.
pub fn shard_range(s: usize, keys: usize, shards: usize) -> std::ops::Range<usize> {
    let lo = (s * keys).div_ceil(shards);
    let hi = ((s + 1) * keys).div_ceil(shards);
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_across_seeded_streams() {
        let z = Zipf::new(100, 0.99);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = SplitMix64::new(seed);
            (0..200).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed, same stream");
        assert_ne!(draw(7), draw(8), "different seeds diverge");
        // A fresh sampler over the same parameters draws identically —
        // there is no hidden state, so every backend sees the same keys.
        let z2 = Zipf::new(100, 0.99);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..200 {
            assert_eq!(z.sample(&mut a), z2.sample(&mut b));
        }
    }

    #[test]
    fn zipf_rank_frequency_slope_matches_the_exponent() {
        // Property: on a log-log plot, empirical frequency vs rank has
        // slope ≈ -s. Check with a least-squares fit over the head of the
        // distribution (the tail is noisy at finite sample sizes).
        for &s in &[0.6, 0.9, 1.2] {
            let n = 200;
            let z = Zipf::new(n, s);
            let mut rng = SplitMix64::new(0xFEED ^ (s * 1000.0) as u64);
            let mut counts = vec![0u64; n];
            let draws = 400_000;
            for _ in 0..draws {
                counts[z.sample(&mut rng)] += 1;
            }
            // Ranks must come out in popularity order already.
            assert!(counts[0] > counts[50], "head outdraws the tail");
            let head = 30; // fit log f(k) = a + slope * log(k+1) over the head
            let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
            for (k, &c) in counts.iter().take(head).enumerate() {
                assert!(c > 0, "head rank {k} never drawn");
                let x = ((k + 1) as f64).ln();
                let y = (c as f64 / draws as f64).ln();
                sx += x;
                sy += y;
                sxx += x * x;
                sxy += x * y;
            }
            let m = head as f64;
            let slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
            assert!(
                (slope + s).abs() < 0.08,
                "exponent {s}: fitted slope {slope:.3}, expected {:.3}",
                -s
            );
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SplitMix64::new(1);
        let mut counts = vec![0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1_000, "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn shards_tile_the_key_space() {
        for (keys, shards) in [(64, 4), (100, 7), (16, 16)] {
            let mut seen = vec![false; keys];
            for s in 0..shards {
                for k in shard_range(s, keys, shards) {
                    assert!(!seen[k], "key {k} in two shards");
                    assert_eq!(shard_of(k, keys, shards), s, "key {k}");
                    seen[k] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "keys={keys} shards={shards}");
        }
    }

    #[test]
    fn mix64_distinguishes_coordinates() {
        assert_ne!(mix64(1, 2), mix64(2, 1));
        assert_ne!(mix64(0, 0), 0);
    }
}
