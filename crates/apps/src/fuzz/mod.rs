//! Cross-backend differential fuzzer: random entry-consistency programs
//! as a standing oracle over all six write-detection backends.
//!
//! A [`Schedule`] is a randomly generated but *disciplined* program of
//! acquire/write/release/read/rebind/work operations, structured as
//! rounds separated by one partitioned flush barrier. The generator
//! enforces a set of invariants (the generator module documents them)
//! under which entry
//! consistency pins the logically visible final memory exactly — every
//! word has a single writer and is bound to exactly one synchronization
//! object — so the schedule itself predicts what a post-run read-back
//! under the proper locks must observe, on every backend. Any deviation
//! from that prediction, from the schedule-determined counters, or from
//! a clean checker verdict is a protocol bug, not workload noise.
//! [`differential`] runs one schedule on every applicable
//! backend and asserts:
//!
//! * the read-back checksum equals [`Schedule::expected_readback`] (the
//!   pure-model prediction) on every processor of every backend,
//! * `lock_acquires` / `barrier_waits` equal to the counts the schedule
//!   itself determines (Table 2's schedule-invariant counters),
//! * a clean `midway-check` report, and
//! * bit-identical reruns on the reference backend (including raw
//!   final-memory digests, which *are* comparable within one backend).
//!
//! Failures carry their seed; [`shrink`] minimizes the failing
//! schedule while it keeps failing, so every report is replayable. The
//! same machinery doubles as the mutant suite's generator:
//! [`apply_mutation`] can plant each [`crate::mutants::MutantKind`] bug
//! pattern into a schedule, and [`catch_mutant`] proves the checker
//! catches it.

mod gen;
mod oracle;
mod shrink;

pub use gen::{apply_mutation, FuzzOp, Schedule};
pub use oracle::{backends_for, catch_mutant, differential, mutant_caught, Divergence};
pub use shrink::shrink;

use std::sync::Arc;

use midway_core::{
    BackendKind, BarrierId, CheckReport, Counters, LockId, Midway, MidwayConfig, NetMsg, Proc,
    SharedArray, SystemBuilder, SystemSpec, Transport, VirtualTime,
};
use midway_sim::SplitMix64;

/// The shape of a fuzz program's shared state and schedule bounds.
///
/// Memory is one `u64` cell array with word-sized cache lines, laid out
/// as: one domain per data lock (a contiguous per-processor *chunk*
/// each), then a per-processor barrier domain, then a per-processor
/// scratch domain. Every word is bound to exactly one synchronization
/// object: each data lock binds its domain, the flush barrier binds the
/// barrier domain (partitioned into per-writer slices), and a scratch
/// lock binds the scratch domain — the landing zone for planted mutant
/// accesses, which must not be covered by anything else.
#[derive(Clone, Copy, Debug)]
pub struct FuzzParams {
    /// Processors.
    pub procs: usize,
    /// Data locks (each with its own word domain).
    pub data_locks: usize,
    /// Words of each lock domain owned by (writable by) one processor.
    pub chunk_words: usize,
    /// Barrier-domain words per processor.
    pub barrier_words: usize,
    /// Scratch words per processor.
    pub scratch_words: usize,
    /// Rounds (each ends at the flush barrier).
    pub rounds: usize,
    /// Max lock episodes per processor per round.
    pub max_episodes: usize,
    /// Max writes per exclusive episode.
    pub max_writes: usize,
    /// Max reads per episode.
    pub max_reads: usize,
}

impl FuzzParams {
    /// Derives a program shape from `seed`: 2–4 processors normally,
    /// with every tenth seed single-processor so the standalone backend
    /// (which only supports one processor) joins the matrix.
    pub fn for_seed(seed: u64) -> FuzzParams {
        let mut rng = SplitMix64::new(seed ^ 0xF0_2259_11AB_5EED);
        let procs = if seed % 10 == 9 {
            1
        } else {
            2 + (rng.next_below(3) as usize)
        };
        FuzzParams {
            procs,
            data_locks: 1 + rng.next_below(3) as usize,
            chunk_words: 1 + rng.next_below(3) as usize,
            barrier_words: 1 + rng.next_below(2) as usize,
            scratch_words: 1,
            rounds: 2 + rng.next_below(3) as usize,
            max_episodes: 2,
            max_writes: 3,
            max_reads: 3,
        }
    }

    /// A fixed multi-processor shape for the mutant-planting oracle.
    pub fn mutant() -> FuzzParams {
        FuzzParams {
            procs: 3,
            data_locks: 2,
            chunk_words: 2,
            barrier_words: 1,
            scratch_words: 1,
            rounds: 3,
            max_episodes: 2,
            max_writes: 2,
            max_reads: 2,
        }
    }

    /// Words in one lock domain.
    pub fn domain_words(&self) -> usize {
        self.procs * self.chunk_words
    }

    /// Absolute word range of data lock `l`'s domain.
    pub fn lock_domain(&self, l: usize) -> std::ops::Range<usize> {
        let w = self.domain_words();
        l * w..(l + 1) * w
    }

    /// Absolute word range processor `p` owns within lock `l`'s domain.
    pub fn chunk(&self, l: usize, p: usize) -> std::ops::Range<usize> {
        let base = self.lock_domain(l).start + p * self.chunk_words;
        base..base + self.chunk_words
    }

    /// First word of the barrier domain.
    pub fn barrier_base(&self) -> usize {
        self.data_locks * self.domain_words()
    }

    /// Absolute word range of processor `p`'s barrier slice.
    pub fn barrier_slice(&self, p: usize) -> std::ops::Range<usize> {
        let base = self.barrier_base() + p * self.barrier_words;
        base..base + self.barrier_words
    }

    /// First word of the scratch domain.
    pub fn scratch_base(&self) -> usize {
        self.barrier_base() + self.procs * self.barrier_words
    }

    /// Absolute word range of processor `p`'s scratch chunk.
    pub fn scratch_chunk(&self, p: usize) -> std::ops::Range<usize> {
        let base = self.scratch_base() + p * self.scratch_words;
        base..base + self.scratch_words
    }

    /// Total cell-array words.
    pub fn total_words(&self) -> usize {
        self.scratch_base() + self.procs * self.scratch_words
    }

    /// The scratch lock's index in the executor's lock table (data locks
    /// come first).
    pub fn scratch_lock(&self) -> usize {
        self.data_locks
    }
}

/// One backend's execution of a schedule, reduced to what the oracles
/// compare.
#[derive(Clone, Debug)]
pub struct FuzzRun {
    /// Per-processor FNV-1a digests of final local memory (comparable
    /// only within one backend: residual unsynchronized copies are the
    /// backend's business).
    pub digests: Vec<u64>,
    /// Per-processor counters.
    pub counters: Vec<Counters>,
    /// Per-processor mid-schedule read checksums (timing-dependent:
    /// comparable only across same-backend reruns).
    pub read_sums: Vec<u64>,
    /// Per-processor read-back checksums — the logically visible final
    /// state, which must equal [`Schedule::expected_readback`]
    /// everywhere.
    pub readback: Vec<u64>,
    /// Finish time.
    pub finish: VirtualTime,
    /// Messages delivered.
    pub messages: u64,
    /// The dynamic checker's report.
    pub check: CheckReport,
}

struct Handles {
    cells: SharedArray<u64>,
    /// Data locks, then the scratch lock.
    locks: Vec<LockId>,
    flush: BarrierId,
}

fn build(p: &FuzzParams) -> (Arc<SystemSpec>, Handles) {
    let mut b = SystemBuilder::new();
    let cells = b.shared_array::<u64>("cells", p.total_words(), 1);
    let mut locks: Vec<LockId> = (0..p.data_locks)
        .map(|l| b.lock(vec![cells.range(p.lock_domain(l))]))
        .collect();
    locks.push(b.lock(vec![cells.range(p.scratch_base()..p.total_words())]));
    // The flush barrier owns exactly the barrier domain, partitioned by
    // writer: processor q contributes its own slice, the only words it
    // may write there, so the merged set converges every copy each round
    // (blast *requires* partitions; the others scan them). Lock domains
    // are deliberately NOT bound here — each word belongs to exactly one
    // synchronization object, as entry consistency demands.
    let partitions = (0..p.procs)
        .map(|q| vec![cells.range(p.barrier_slice(q))])
        .collect();
    let flush = b.barrier_partitioned(
        vec![cells.range(p.barrier_base()..p.scratch_base())],
        partitions,
    );
    (
        b.build(),
        Handles {
            cells,
            locks,
            flush,
        },
    )
}

fn session<T: Transport<Msg = NetMsg>>(
    proc: &mut Proc<'_, T>,
    s: &Schedule,
    h: &Handles,
) -> (u64, u64) {
    let me = proc.id();
    let mut sum = 0u64;
    for round in &s.rounds {
        for op in &round[me] {
            match *op {
                FuzzOp::Acquire {
                    lock,
                    shared: false,
                } => proc.acquire(h.locks[lock]),
                FuzzOp::Acquire { lock, shared: true } => proc.acquire_shared(h.locks[lock]),
                FuzzOp::Release {
                    lock,
                    shared: false,
                } => proc.release(h.locks[lock]),
                FuzzOp::Release { lock, shared: true } => proc.release_shared(h.locks[lock]),
                FuzzOp::Write { word, val } => proc.write(&h.cells, word, val),
                FuzzOp::Read { word } => {
                    sum = sum.rotate_left(1) ^ proc.read(&h.cells, word);
                }
                FuzzOp::Rebind { lock, lo, hi } => {
                    proc.rebind(h.locks[lock], vec![h.cells.range(lo..hi)]);
                }
                FuzzOp::Work { cycles } => proc.work(cycles),
            }
        }
        proc.barrier(h.flush);
    }
    // Read-back: the logically visible final state. Each lock's reliable
    // final-binding words are read under a shared hold (the ownership
    // chain delivers them fresh on every backend); the barrier domain is
    // readable as-is — the final flush republished every slice. The
    // traversal order matches Schedule::expected_readback exactly.
    let mut readback = 0u64;
    for (l, words) in s.reliable_words().into_iter().enumerate() {
        proc.acquire_shared(h.locks[l]);
        for w in words {
            readback = readback.rotate_left(1) ^ proc.read(&h.cells, w);
        }
        proc.release_shared(h.locks[l]);
    }
    for w in s.params.barrier_base()..s.params.scratch_base() {
        readback = readback.rotate_left(1) ^ proc.read(&h.cells, w);
    }
    (sum, readback)
}

/// Executes `s` on `backend` with the dynamic checker attached.
///
/// # Panics
///
/// Panics if the simulation fails (deadlock or processor panic) — a
/// generated schedule that deadlocks is itself a generator bug.
pub fn execute(s: &Schedule, backend: BackendKind) -> FuzzRun {
    let procs = s.params.procs;
    let cfg = if backend == BackendKind::None {
        assert_eq!(procs, 1, "standalone backend is single-processor");
        MidwayConfig::standalone()
    } else {
        MidwayConfig::new(procs, backend)
    }
    .check(true);
    let (spec, h) = build(&s.params);
    let run = Midway::run(cfg, &spec, |proc: &mut Proc| session(proc, s, &h))
        .expect("fuzz schedule deadlocked or panicked");
    FuzzRun {
        digests: run.store_digests.clone(),
        read_sums: run.results.iter().map(|&(mid, _)| mid).collect(),
        readback: run.results.iter().map(|&(_, rb)| rb).collect(),
        finish: run.finish_time,
        messages: run.messages,
        check: run.check.clone().expect("checker was enabled"),
        counters: run.counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_are_disjoint_and_cover_the_array() {
        let p = FuzzParams::for_seed(3);
        let mut seen = vec![false; p.total_words()];
        let mut mark = |r: std::ops::Range<usize>| {
            for w in r {
                assert!(!seen[w], "word {w} in two regions");
                seen[w] = true;
            }
        };
        for l in 0..p.data_locks {
            for q in 0..p.procs {
                mark(p.chunk(l, q));
            }
        }
        for q in 0..p.procs {
            mark(p.barrier_slice(q));
            mark(p.scratch_chunk(q));
        }
        assert!(seen.iter().all(|&s| s), "layout leaves holes");
    }

    #[test]
    fn every_tenth_seed_is_single_processor() {
        assert_eq!(FuzzParams::for_seed(9).procs, 1);
        assert_eq!(FuzzParams::for_seed(19).procs, 1);
        assert!(FuzzParams::for_seed(8).procs >= 2);
    }
}
