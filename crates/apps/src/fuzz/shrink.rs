//! Greedy schedule minimization: keep deleting while the failure keeps
//! failing.
//!
//! The shrinker proposes structurally smaller candidates — drop a whole
//! round, clear one processor's ops in one round, drop a balanced
//! acquire..release span, drop a single data op — and accepts a
//! candidate iff it still [`Schedule::validate`]s *and* the caller's
//! predicate still holds (the divergence still reproduces, the mutant
//! is still caught). It loops to a fixpoint or until the probe budget
//! runs out. Greedy deletion is not minimal in general, but failing
//! schedules here are small (tens of ops), so the fixpoint is close to
//! minimal in practice and every accepted step strictly shrinks the op
//! count, so termination is structural.

use super::gen::{FuzzOp, Schedule};

/// Minimizes `s` while `still(candidate)` holds, probing at most
/// `budget` candidates. Returns the smallest accepted schedule (`s`
/// itself if nothing shrinks).
pub fn shrink(s: &Schedule, still: &dyn Fn(&Schedule) -> bool, budget: usize) -> Schedule {
    let mut best = s.clone();
    let mut probes = 0usize;
    let try_candidate = |best: &mut Schedule, cand: Schedule, probes: &mut usize| -> bool {
        if *probes >= budget || !cand.validate() {
            return false;
        }
        *probes += 1;
        if still(&cand) {
            *best = cand;
            true
        } else {
            false
        }
    };
    loop {
        let before = best.op_count();

        // Drop whole rounds, last first (later rounds rarely set up the
        // failure; deleting from the end keeps round indices stable).
        let mut r = best.rounds.len();
        while r > 0 {
            r -= 1;
            if best.rounds.len() <= 1 {
                break;
            }
            let mut cand = best.clone();
            cand.rounds.remove(r);
            try_candidate(&mut best, cand, &mut probes);
        }

        // Clear one processor's ops in one round.
        for r in 0..best.rounds.len() {
            for q in 0..best.params.procs {
                if best.rounds[r][q].is_empty() {
                    continue;
                }
                let mut cand = best.clone();
                cand.rounds[r][q].clear();
                try_candidate(&mut best, cand, &mut probes);
            }
        }

        // Drop balanced acquire..release spans (an entire lock episode,
        // including any rebind inside it).
        for r in 0..best.rounds.len() {
            for q in 0..best.params.procs {
                let mut i = 0;
                while i < best.rounds[r][q].len() {
                    let ops = &best.rounds[r][q];
                    if let FuzzOp::Acquire { lock, .. } = ops[i] {
                        let close = ops[i..].iter().position(
                            |op| matches!(op, FuzzOp::Release { lock: l, .. } if *l == lock),
                        );
                        if let Some(off) = close {
                            let mut cand = best.clone();
                            cand.rounds[r][q].drain(i..=i + off);
                            if try_candidate(&mut best, cand, &mut probes) {
                                continue; // same i now points past the span
                            }
                        }
                    }
                    i += 1;
                }
            }
        }

        // Drop individual non-structural ops.
        for r in 0..best.rounds.len() {
            for q in 0..best.params.procs {
                let mut i = 0;
                while i < best.rounds[r][q].len() {
                    let droppable = matches!(
                        best.rounds[r][q][i],
                        FuzzOp::Write { .. } | FuzzOp::Read { .. } | FuzzOp::Work { .. }
                    );
                    if droppable {
                        let mut cand = best.clone();
                        cand.rounds[r][q].remove(i);
                        if try_candidate(&mut best, cand, &mut probes) {
                            continue;
                        }
                    }
                    i += 1;
                }
            }
        }

        if best.op_count() == before || probes >= budget {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::FuzzParams;
    use super::*;

    #[test]
    fn shrinking_against_a_trivial_predicate_empties_the_schedule() {
        let s = Schedule::generate(5, FuzzParams::mutant());
        let small = shrink(&s, &|_| true, 10_000);
        // Everything is deletable when any candidate is accepted; only
        // the mandatory single round survives.
        assert_eq!(small.rounds.len(), 1);
        assert_eq!(small.op_count(), 0);
        assert!(small.validate());
    }

    #[test]
    fn shrinking_preserves_the_predicate_anchor() {
        let s = Schedule::generate(6, FuzzParams::mutant());
        // Keep any schedule that still has at least one Acquire on p0.
        let still = |c: &Schedule| {
            c.rounds
                .iter()
                .flat_map(|r| &r[0])
                .any(|op| matches!(op, FuzzOp::Acquire { .. }))
        };
        if !still(&s) {
            return; // seed produced no p0 episode; nothing to anchor
        }
        let small = shrink(&s, &still, 10_000);
        assert!(still(&small));
        assert!(small.op_count() <= s.op_count());
        assert!(small.validate());
    }
}
