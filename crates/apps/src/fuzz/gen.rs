//! Schedule generation: random programs whose final memory entry
//! consistency *pins*, plus planted-bug mutations of them.
//!
//! The differential oracle compares final-memory digests across backends,
//! so the generator must emit only schedules whose final memory is
//! independent of lock arbitration order and protocol timing. Five
//! invariants buy that:
//!
//! 1. **Single writer per word.** Each data lock's domain is split into
//!    per-processor chunks; a processor writes only its own chunks (and
//!    its own barrier slice). A word's final value is then its writer's
//!    last program-order store, whatever order the lock chain took —
//!    [`Schedule::expected_cells`] computes it without running anything.
//! 2. **Every word stays bound to exactly one synchronization object.**
//!    Lock-domain words propagate only through their lock's ownership
//!    chain (each exclusive holder receives the binding fresh and adds
//!    its own writes, so acquires always deliver current data on every
//!    backend); barrier-domain words propagate only through the
//!    per-round flush barrier, partitioned by writer. Double-binding the
//!    same word would let backends legitimately disagree on which path
//!    carries an update — VM-style diffs are consumed by whichever
//!    collection runs first.
//! 3. **One lock held at a time**, so no schedule can deadlock.
//! 4. **Accesses stay inside the current binding** (writes also inside
//!    the writer's chunk; reads under any hold mode, writes only under
//!    exclusive). Rebinding is restricted to rounds where the rebinding
//!    processor is the *only* one touching that lock, so the generator
//!    (and validator) can track each binding deterministically.
//! 5. **Scratch words are never touched** — they exist for planted
//!    mutants ([`apply_mutation`]), whose accesses deliberately break
//!    the rules in a way the checker must report.
//!
//! [`Schedule::validate`] re-derives all of this structurally; the
//! shrinker uses it to discard candidate simplifications that would turn
//! a protocol-bug reproducer into a mere discipline violation.

use midway_core::FindingKind;
use midway_sim::SplitMix64;

use super::FuzzParams;
use crate::mutants::MutantKind;

/// One operation of a fuzz program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FuzzOp {
    /// Acquire `lock` (exclusive unless `shared`).
    Acquire { lock: usize, shared: bool },
    /// Release `lock` from the matching mode.
    Release { lock: usize, shared: bool },
    /// Store `val` to cell `word`.
    Write { word: usize, val: u64 },
    /// Load cell `word` into the session checksum.
    Read { word: usize },
    /// Rebind `lock` to cells `lo..hi`.
    Rebind { lock: usize, lo: usize, hi: usize },
    /// Charge `cycles` of compute.
    Work { cycles: u64 },
}

impl std::fmt::Display for FuzzOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FuzzOp::Acquire { lock, shared } => {
                write!(f, "acq{} L{lock}", if shared { "s" } else { "" })
            }
            FuzzOp::Release { lock, shared } => {
                write!(f, "rel{} L{lock}", if shared { "s" } else { "" })
            }
            FuzzOp::Write { word, val } => write!(f, "w c{word}={val:#x}"),
            FuzzOp::Read { word } => write!(f, "r c{word}"),
            FuzzOp::Rebind { lock, lo, hi } => write!(f, "rebind L{lock} c{lo}..c{hi}"),
            FuzzOp::Work { cycles } => write!(f, "work {cycles}"),
        }
    }
}

/// A complete fuzz program: shape, provenance and per-round per-processor
/// operation lists. The flush barrier between rounds is implicit.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The program shape.
    pub params: FuzzParams,
    /// The seed [`Schedule::generate`] derived everything from.
    pub seed: u64,
    /// The planted bug, if this is a mutant schedule.
    pub mutation: Option<MutantKind>,
    /// The processor committing the planted bug.
    pub mutant_proc: usize,
    /// `rounds[r][p]` = processor `p`'s operations in round `r`.
    pub rounds: Vec<Vec<Vec<FuzzOp>>>,
}

impl Schedule {
    /// Generates the schedule `seed` names under `params`.
    pub fn generate(seed: u64, params: FuzzParams) -> Schedule {
        let p = params;
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED);
        // Current binding of each data lock, as an absolute word range.
        let mut binding: Vec<std::ops::Range<usize>> =
            (0..p.data_locks).map(|l| p.lock_domain(l)).collect();
        let mut rounds = Vec::with_capacity(p.rounds);
        for _ in 0..p.rounds {
            // At most one lock is rebound per round, by one processor
            // that gets exclusive use of it for the round.
            let rebind = if rng.next_below(100) < 35 {
                let l = rng.next_below(p.data_locks as u64) as usize;
                let dom = p.lock_domain(l);
                let (lo, hi) = if rng.next_below(2) == 0 {
                    (dom.start, dom.end) // reset to the full domain
                } else {
                    let len = dom.len() as u64;
                    let a = rng.next_below(len) as usize;
                    let b = rng.next_below(len) as usize;
                    (dom.start + a.min(b), dom.start + a.max(b) + 1)
                };
                Some((l, rng.next_below(p.procs as u64) as usize, lo, hi))
            } else {
                None
            };
            let mut round: Vec<Vec<FuzzOp>> = Vec::with_capacity(p.procs);
            for q in 0..p.procs {
                let mut ops = Vec::new();
                if let Some((l, owner, lo, hi)) = rebind {
                    if owner == q {
                        // The rebind episode: narrow (or reset) the
                        // binding, then use it.
                        ops.push(FuzzOp::Acquire {
                            lock: l,
                            shared: false,
                        });
                        ops.push(FuzzOp::Rebind { lock: l, lo, hi });
                        binding[l] = lo..hi;
                        emit_accesses(&mut ops, &mut rng, &p, &binding[l], l, q, false);
                        ops.push(FuzzOp::Release {
                            lock: l,
                            shared: false,
                        });
                    }
                }
                let episodes = rng.next_below(p.max_episodes as u64 + 1) as usize;
                for _ in 0..episodes {
                    let l = rng.next_below(p.data_locks as u64) as usize;
                    if rebind.is_some_and(|(rl, _, _, _)| rl == l) {
                        continue; // the rebinder owns that lock this round
                    }
                    let shared = rng.next_below(100) < 30;
                    ops.push(FuzzOp::Acquire { lock: l, shared });
                    emit_accesses(&mut ops, &mut rng, &p, &binding[l], l, q, shared);
                    ops.push(FuzzOp::Release { lock: l, shared });
                    if rng.next_below(100) < 40 {
                        ops.push(FuzzOp::Work {
                            cycles: 1_000 + rng.next_below(50_000),
                        });
                    }
                }
                // Barrier-partition writes: no lock needed in the
                // writer's own slice.
                for _ in 0..rng.next_below(3) {
                    let slice = p.barrier_slice(q);
                    let word = slice.start + rng.next_below(slice.len() as u64) as usize;
                    ops.push(FuzzOp::Write {
                        word,
                        val: rng.next_u64(),
                    });
                }
                round.push(ops);
            }
            rounds.push(round);
        }
        Schedule {
            params,
            seed,
            mutation: None,
            mutant_proc: 0,
            rounds,
        }
    }

    /// The finding kind a mutant schedule's planted bug must produce.
    pub fn expected_finding(&self) -> Option<FindingKind> {
        self.mutation.map(|m| match m {
            MutantKind::DropAcquire => FindingKind::UnguardedWrite,
            MutantKind::RogueRebind => FindingKind::BindingViolation,
            MutantKind::ReadAhead => FindingKind::StaleRead,
        })
    }

    /// Total operations across all rounds and processors.
    pub fn op_count(&self) -> usize {
        self.rounds.iter().flatten().map(Vec::len).sum()
    }

    /// `lock_acquires` the schedule itself determines for processor `p`:
    /// one per acquire op (either mode), plus the read-back phase's one
    /// shared acquire per data lock.
    pub fn expected_acquires(&self, p: usize) -> u64 {
        let scheduled = self
            .rounds
            .iter()
            .flat_map(|r| &r[p])
            .filter(|op| matches!(op, FuzzOp::Acquire { .. }))
            .count();
        (scheduled + self.params.data_locks) as u64
    }

    /// `barrier_waits` the schedule determines (one per round).
    pub fn expected_barrier_waits(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// Each data lock's binding after the last round, replaying rebinds
    /// in round order (the sole-toucher invariant makes within-round
    /// order irrelevant).
    pub fn final_bindings(&self) -> Vec<std::ops::Range<usize>> {
        let p = &self.params;
        let mut binding: Vec<std::ops::Range<usize>> =
            (0..p.data_locks).map(|l| p.lock_domain(l)).collect();
        for round in &self.rounds {
            for ops in round {
                for op in ops {
                    if let FuzzOp::Rebind { lock, lo, hi } = *op {
                        if lock < p.data_locks {
                            binding[lock] = lo..hi;
                        }
                    }
                }
            }
        }
        binding
    }

    /// The words per data lock whose final value entry consistency pins
    /// — final-binding words that have stayed bound since their last
    /// write. A write propagates through the lock's ownership chain only
    /// while its word is bound: retiring a written word by a narrowing
    /// rebind drops its update from the protocol's hands (RT keeps some
    /// copies fresh by timestamp, VM full-sends the owner's possibly
    /// stale copy), so re-introducing it later yields a legitimately
    /// backend-dependent value until it is written again. Never-written
    /// words are always reliable: every copy still holds zero.
    pub fn reliable_words(&self) -> Vec<Vec<usize>> {
        let p = &self.params;
        let mut binding: Vec<std::ops::Range<usize>> =
            (0..p.data_locks).map(|l| p.lock_domain(l)).collect();
        let mut reliable = vec![true; p.total_words()];
        let mut written = vec![false; p.total_words()];
        for round in &self.rounds {
            for ops in round {
                for op in ops {
                    match *op {
                        // A write under the current binding re-enters the
                        // ownership chain from here on.
                        FuzzOp::Write { word, .. } => {
                            written[word] = true;
                            reliable[word] = true;
                        }
                        FuzzOp::Rebind { lock, lo, hi } if lock < p.data_locks => {
                            for w in binding[lock].clone() {
                                if written[w] && !(lo..hi).contains(&w) {
                                    // Retired: the written value is no
                                    // longer the protocol's to carry.
                                    reliable[w] = false;
                                }
                            }
                            binding[lock] = lo..hi;
                        }
                        _ => {}
                    }
                }
            }
        }
        self.final_bindings()
            .into_iter()
            .map(|b| b.filter(|&w| reliable[w]).collect())
            .collect()
    }

    /// The final cell values entry consistency pins: each word's last
    /// program-order store by its single writer, applied in round order.
    /// Scratch words are modelled too (a mutation's planted stores land
    /// there), though the read-back oracle never reads them.
    pub fn expected_cells(&self) -> Vec<u64> {
        let mut cells = vec![0u64; self.params.total_words()];
        for round in &self.rounds {
            for ops in round {
                for op in ops {
                    if let FuzzOp::Write { word, val } = *op {
                        cells[word] = val;
                    }
                }
            }
        }
        cells
    }

    /// The checksum the executor's read-back phase must produce on every
    /// processor and every backend: each data lock's reliable
    /// final-binding words in lock order, then the whole barrier domain
    /// (always reliable — every round's flush republishes each writer's
    /// slice), folded in traversal order.
    pub fn expected_readback(&self) -> u64 {
        let p = &self.params;
        let cells = self.expected_cells();
        let mut sum = 0u64;
        for words in self.reliable_words() {
            for w in words {
                sum = sum.rotate_left(1) ^ cells[w];
            }
        }
        for &cell in &cells[p.barrier_base()..p.scratch_base()] {
            sum = sum.rotate_left(1) ^ cell;
        }
        sum
    }

    /// Structurally validates the schedule against the generator's
    /// invariants (see the module docs). Planted scratch-domain accesses
    /// are exempt when a mutation is declared — they are the bug.
    pub fn validate(&self) -> bool {
        let p = &self.params;
        if self.rounds.iter().any(|r| r.len() != p.procs) {
            return false;
        }
        let mut binding: Vec<std::ops::Range<usize>> =
            (0..p.data_locks).map(|l| p.lock_domain(l)).collect();
        let scratch = p.scratch_base()..p.total_words();
        for round in &self.rounds {
            // Which processors touch each data lock this round, and
            // whether it is rebound (rebinding demands sole use).
            let mut touchers = vec![0usize; p.data_locks + 1];
            let mut rebinds = vec![0usize; p.data_locks + 1];
            for ops in round {
                let mut touched = vec![false; p.data_locks + 1];
                for op in ops {
                    match *op {
                        FuzzOp::Acquire { lock, .. } | FuzzOp::Rebind { lock, .. } => {
                            if lock > p.data_locks {
                                return false;
                            }
                            if !touched[lock] {
                                touched[lock] = true;
                                touchers[lock] += 1;
                            }
                            if matches!(op, FuzzOp::Rebind { .. }) {
                                rebinds[lock] += 1;
                            }
                        }
                        _ => {}
                    }
                }
            }
            for l in 0..p.data_locks {
                if rebinds[l] > 1 || (rebinds[l] == 1 && touchers[l] != 1) {
                    return false;
                }
            }
            // Per-processor op legality, tracking the single held lock.
            // Rebinds update the shared binding model as encountered —
            // sole use makes cross-processor order irrelevant.
            for (q, ops) in round.iter().enumerate() {
                let mut held: Option<(usize, bool)> = None;
                for op in ops {
                    match *op {
                        FuzzOp::Acquire { lock, shared } => {
                            if held.is_some() {
                                return false; // one lock at a time
                            }
                            held = Some((lock, shared));
                        }
                        FuzzOp::Release { lock, shared } => {
                            if held != Some((lock, shared)) {
                                return false;
                            }
                            held = None;
                        }
                        FuzzOp::Rebind { lock, lo, hi } => {
                            if held != Some((lock, false)) || lo >= hi {
                                return false;
                            }
                            if lock == p.scratch_lock() {
                                if self.mutation.is_none() {
                                    return false;
                                }
                                if lo < scratch.start || hi > scratch.end {
                                    return false;
                                }
                            } else {
                                let dom = p.lock_domain(lock);
                                if lo < dom.start || hi > dom.end {
                                    return false;
                                }
                                binding[lock] = lo..hi;
                            }
                        }
                        FuzzOp::Write { word, .. } => {
                            if scratch.contains(&word) {
                                if self.mutation.is_none() {
                                    return false;
                                }
                            } else if p.barrier_slice(q).contains(&word) {
                                // Always legal: the writer's own slice.
                            } else {
                                let Some((l, false)) = held else {
                                    return false;
                                };
                                if l == p.scratch_lock()
                                    || !binding[l].contains(&word)
                                    || !p.chunk(l, q).contains(&word)
                                {
                                    return false;
                                }
                            }
                        }
                        FuzzOp::Read { word } => {
                            if scratch.contains(&word) {
                                if self.mutation.is_none() {
                                    return false;
                                }
                            } else if p.barrier_slice(q).contains(&word) {
                                // Own slice: always readable.
                            } else {
                                let Some((l, _)) = held else {
                                    return false;
                                };
                                if l == p.scratch_lock() || !binding[l].contains(&word) {
                                    return false;
                                }
                            }
                        }
                        FuzzOp::Work { .. } => {}
                    }
                }
                if held.is_some() {
                    return false; // no lock crosses the flush barrier
                }
            }
        }
        true
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = &self.params;
        writeln!(
            f,
            "seed={} procs={} locks={} chunk={} barrier={} rounds={}{}",
            self.seed,
            p.procs,
            p.data_locks,
            p.chunk_words,
            p.barrier_words,
            self.rounds.len(),
            match self.mutation {
                Some(m) => format!(" mutation={} proc={}", m.label(), self.mutant_proc),
                None => String::new(),
            }
        )?;
        for (r, round) in self.rounds.iter().enumerate() {
            writeln!(f, "round {r}:")?;
            for (q, ops) in round.iter().enumerate() {
                if ops.is_empty() {
                    continue;
                }
                let text: Vec<String> = ops.iter().map(|o| o.to_string()).collect();
                writeln!(f, "  p{q}: {}", text.join("; "))?;
            }
        }
        Ok(())
    }
}

/// Emits the accesses of one episode on `l` under the current `binding`:
/// writes into the binding ∩ the processor's chunk (exclusive episodes
/// only), reads anywhere in the binding.
fn emit_accesses(
    ops: &mut Vec<FuzzOp>,
    rng: &mut SplitMix64,
    p: &FuzzParams,
    binding: &std::ops::Range<usize>,
    l: usize,
    q: usize,
    shared: bool,
) {
    if !shared {
        let chunk = p.chunk(l, q);
        let lo = binding.start.max(chunk.start);
        let hi = binding.end.min(chunk.end);
        if lo < hi {
            for _ in 0..rng.next_below(p.max_writes as u64 + 1) {
                let word = lo + rng.next_below((hi - lo) as u64) as usize;
                ops.push(FuzzOp::Write {
                    word,
                    val: rng.next_u64(),
                });
            }
        }
    }
    for _ in 0..rng.next_below(p.max_reads as u64 + 1) {
        let word = binding.start + rng.next_below(binding.len() as u64) as usize;
        ops.push(FuzzOp::Read { word });
    }
}

/// Plants `kind`'s bug pattern into a copy of `base`, targeting the
/// scratch domain so the flush barrier's coverage cannot mask it.
/// Returns `None` when the base schedule cannot host the mutation (too
/// few processors or no rounds).
pub fn apply_mutation(base: &Schedule, kind: MutantKind, seed: u64) -> Option<Schedule> {
    let p = base.params;
    if p.procs < 2 || base.rounds.is_empty() {
        return None;
    }
    let mut rng = SplitMix64::new(seed ^ 0x00B5_0CC0);
    let r = rng.next_below(base.rounds.len() as u64) as usize;
    let q = rng.next_below(p.procs as u64) as usize;
    let mut s = base.clone();
    s.mutation = Some(kind);
    match kind {
        MutantKind::DropAcquire => {
            // An unguarded store to lock-bound (scratch) data: the
            // acquire that should cover it was "forgotten".
            let word = p.scratch_chunk(q).start;
            s.mutant_proc = q;
            s.rounds[r][q].push(FuzzOp::Write {
                word,
                val: rng.next_u64(),
            });
        }
        MutantKind::RogueRebind => {
            // Narrow the scratch binding to its last word, then write the
            // first — a store into the just-retired range.
            let lock = p.scratch_lock();
            let end = p.total_words();
            s.mutant_proc = q;
            s.rounds[r][q].extend([
                FuzzOp::Acquire {
                    lock,
                    shared: false,
                },
                FuzzOp::Rebind {
                    lock,
                    lo: end - 1,
                    hi: end,
                },
                FuzzOp::Write {
                    word: p.scratch_base(),
                    val: rng.next_u64(),
                },
                FuzzOp::Release {
                    lock,
                    shared: false,
                },
            ]);
        }
        MutantKind::ReadAhead => {
            // A writes scratch under its lock at the round's start; B
            // reads it lock-free after a long compute charge, so the
            // read deterministically lands after the write in virtual
            // time with no synchronization chain between them.
            let a = q;
            let b = (q + 1) % p.procs;
            let lock = p.scratch_lock();
            let word = p.scratch_chunk(a).start;
            s.mutant_proc = b;
            let writer = &mut s.rounds[r][a];
            writer.splice(
                0..0,
                [
                    FuzzOp::Acquire {
                        lock,
                        shared: false,
                    },
                    FuzzOp::Write {
                        word,
                        val: rng.next_u64(),
                    },
                    FuzzOp::Release {
                        lock,
                        shared: false,
                    },
                ],
            );
            let reader = &mut s.rounds[r][b];
            reader.splice(
                0..0,
                [FuzzOp::Work { cycles: 5_000_000 }, FuzzOp::Read { word }],
            );
        }
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_schedules_are_valid_and_deterministic() {
        for seed in 0..80 {
            let params = FuzzParams::for_seed(seed);
            let s = Schedule::generate(seed, params);
            assert!(s.validate(), "seed {seed} generated an invalid schedule");
            let again = Schedule::generate(seed, params);
            assert_eq!(s.rounds, again.rounds, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn mutated_schedules_stay_structurally_valid() {
        let base = Schedule::generate(1, FuzzParams::mutant());
        for kind in MutantKind::ALL {
            let m = apply_mutation(&base, kind, 7).expect("mutation applies");
            assert!(m.validate(), "{kind:?} broke structural validity");
            assert!(m.op_count() > base.op_count());
        }
    }

    #[test]
    fn corrupted_schedules_fail_validation() {
        let mut s = Schedule::generate(2, FuzzParams::mutant());
        // A write into another processor's chunk breaks single-writer.
        let foreign = s.params.chunk(0, 1).start;
        s.rounds[0][0].push(FuzzOp::Write {
            word: foreign,
            val: 1,
        });
        assert!(!s.validate(), "foreign-chunk write must be rejected");

        let mut s = Schedule::generate(2, FuzzParams::mutant());
        s.rounds[0][0].push(FuzzOp::Acquire {
            lock: 0,
            shared: false,
        });
        assert!(!s.validate(), "unreleased lock must be rejected");

        let mut s = Schedule::generate(2, FuzzParams::mutant());
        s.rounds[0][0].push(FuzzOp::Write {
            word: s.params.scratch_base(),
            val: 1,
        });
        assert!(!s.validate(), "scratch write without mutation rejected");
    }
}
