//! The differential and mutant-catching oracles.
//!
//! [`differential`] runs one clean schedule on every applicable backend
//! and compares what the model says must agree: the read-back checksum
//! against the schedule's own pure-model prediction, the
//! schedule-determined counters, checker cleanliness, and exact rerun
//! determinism on the reference backend. Anything that may legitimately
//! differ across backends — message counts, finish times, raw
//! final-memory digests (residual unsynchronized copies), read
//! checksums under contended locks (grant order is the backend's
//! business) — is deliberately *not* compared cross-backend, only
//! within same-backend reruns.
//!
//! [`catch_mutant`] is the planted-bug side: it proves that for each
//! [`MutantKind`], some generated schedule hosts a mutation the dynamic
//! checker flags with the right finding kind on the right processor,
//! then hands back a shrunk reproducer.

use midway_core::BackendKind;

use super::{execute, gen::apply_mutation, shrink::shrink, FuzzParams, Schedule};
use crate::mutants::MutantKind;

/// One way a schedule's executions disagreed with the model.
#[derive(Clone, Debug)]
pub enum Divergence {
    /// A processor's read-back checksum differs from the schedule's
    /// pure-model prediction of the final logical state.
    Readback {
        /// The backend the wrong value appeared on.
        backend: BackendKind,
        /// Processor whose read-back differs.
        proc: usize,
        /// The model-predicted checksum.
        want: u64,
        /// The observed checksum.
        got: u64,
    },
    /// A backend's `lock_acquires` differs from the schedule's count.
    Acquires {
        /// The backend that miscounted.
        backend: BackendKind,
        /// Processor whose counter is off.
        proc: usize,
        /// The schedule-determined count.
        want: u64,
        /// The observed count.
        got: u64,
    },
    /// A backend's `barrier_waits` differs from the round count.
    BarrierWaits {
        /// The backend that miscounted.
        backend: BackendKind,
        /// Processor whose counter is off.
        proc: usize,
        /// The schedule-determined count.
        want: u64,
        /// The observed count.
        got: u64,
    },
    /// The dynamic checker reported findings on a clean schedule.
    CheckFinding {
        /// The backend the findings appeared on.
        backend: BackendKind,
        /// The checker's one-line summary.
        summary: String,
    },
    /// A same-backend rerun was not bit-identical.
    Rerun {
        /// The nondeterministic backend.
        backend: BackendKind,
        /// Which compared quantity differed.
        what: &'static str,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Readback {
                backend,
                proc,
                want,
                got,
            } => write!(
                f,
                "readback: p{proc} read {got:#018x} on {}, model predicts {want:#018x}",
                backend.label()
            ),
            Divergence::Acquires {
                backend,
                proc,
                want,
                got,
            } => write!(
                f,
                "lock_acquires: p{proc} counted {got}, schedule determines {want} ({})",
                backend.label()
            ),
            Divergence::BarrierWaits {
                backend,
                proc,
                want,
                got,
            } => write!(
                f,
                "barrier_waits: p{proc} counted {got}, schedule determines {want} ({})",
                backend.label()
            ),
            Divergence::CheckFinding { backend, summary } => {
                write!(f, "checker on {}: {summary}", backend.label())
            }
            Divergence::Rerun { backend, what } => {
                write!(f, "rerun on {} diverged in {what}", backend.label())
            }
        }
    }
}

/// The backends a `procs`-processor schedule runs on: all six when the
/// standalone backend applies (one processor), the five data-moving
/// ones otherwise.
pub fn backends_for(procs: usize) -> &'static [BackendKind] {
    if procs == 1 {
        &BackendKind::ALL
    } else {
        &BackendKind::DATA
    }
}

/// Runs `s` on every applicable backend and returns all divergences
/// from the model (empty = the backends agree).
///
/// The first backend in the matrix is rerun once to assert bit-exact
/// determinism of digests, read checksums, read-back, finish time, and
/// message count.
pub fn differential(s: &Schedule) -> Vec<Divergence> {
    assert!(
        s.mutation.is_none(),
        "differential oracle takes clean schedules"
    );
    let backends = backends_for(s.params.procs);
    let want_readback = s.expected_readback();
    let mut out = Vec::new();
    let mut reference: Option<(BackendKind, super::FuzzRun)> = None;
    for &backend in backends {
        let run = execute(s, backend);
        if !run.check.is_clean() {
            out.push(Divergence::CheckFinding {
                backend,
                summary: run.check.summary(),
            });
        }
        for (proc, &got) in run.readback.iter().enumerate() {
            if got != want_readback {
                out.push(Divergence::Readback {
                    backend,
                    proc,
                    want: want_readback,
                    got,
                });
            }
        }
        for (proc, c) in run.counters.iter().enumerate() {
            let want = s.expected_acquires(proc);
            if c.lock_acquires != want {
                out.push(Divergence::Acquires {
                    backend,
                    proc,
                    want,
                    got: c.lock_acquires,
                });
            }
            let want = s.expected_barrier_waits();
            if c.barrier_waits != want {
                out.push(Divergence::BarrierWaits {
                    backend,
                    proc,
                    want,
                    got: c.barrier_waits,
                });
            }
        }
        if reference.is_none() {
            reference = Some((backend, run));
        }
    }
    if let Some((backend, first)) = reference {
        let again = execute(s, backend);
        for (what, same) in [
            ("digests", again.digests == first.digests),
            ("read_sums", again.read_sums == first.read_sums),
            ("readback", again.readback == first.readback),
            ("finish_time", again.finish == first.finish),
            ("messages", again.messages == first.messages),
        ] {
            if !same {
                out.push(Divergence::Rerun { backend, what });
            }
        }
    }
    out
}

/// Whether the dynamic checker catches `s`'s planted bug: the expected
/// finding kind, attributed to the mutant processor, on the reference
/// data backend.
pub fn mutant_caught(s: &Schedule) -> bool {
    let kind = s
        .expected_finding()
        .expect("mutant oracle takes mutant schedules");
    let run = execute(s, BackendKind::Rt);
    run.check
        .first_of(kind)
        .is_some_and(|f| f.proc == s.mutant_proc)
}

/// Searches seeds `0..max_seeds` for a schedule whose `kind` mutation
/// the checker catches, then shrinks the reproducer while it stays
/// caught. Returns the seed and the minimized schedule.
pub fn catch_mutant(kind: MutantKind, max_seeds: u64) -> Option<(u64, Schedule)> {
    for seed in 0..max_seeds {
        let base = Schedule::generate(seed, FuzzParams::mutant());
        let Some(mutated) = apply_mutation(&base, kind, seed) else {
            continue;
        };
        if mutant_caught(&mutated) {
            let small = shrink(&mutated, &mutant_caught, 200);
            return Some((seed, small));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_matrix_depends_on_processor_count() {
        assert_eq!(backends_for(1).len(), BackendKind::ALL.len());
        assert_eq!(backends_for(3).len(), BackendKind::DATA.len());
        assert!(!backends_for(2).contains(&BackendKind::None));
    }
}
