//! Sparse Cholesky factorization (paper §4): fine-grained sharing.
//!
//! "Given a positive definite matrix A, the program finds a lower
//! triangular matrix L, such that A = LLᵀ. This program exhibits
//! fine-grain sharing."
//!
//! The SPLASH input matrices are unavailable, so the factored matrix is a
//! synthetic 2-D grid Laplacian (shifted to be strongly SPD) — a standard
//! sparse test family with substantial fill-in. The symbolic factorization
//! (elimination tree and fill pattern) is computed sequentially during
//! setup, as SPLASH does; the numeric factorization runs in parallel,
//! right-looking, with one lock per column: completing a column applies
//! `cmod` updates to every later column in its pattern under that column's
//! lock — many small updates to scattered addresses, which is exactly the
//! fine-grained behaviour the paper measures.

use std::sync::Arc;

use midway_core::{
    LockId, Midway, MidwayConfig, MidwayRun, NetMsg, Proc, RealConfig, RealError, SharedArray,
    SystemBuilder, SystemSpec, Transport,
};

/// Cycles charged per multiply-subtract of a `cmod` update.
pub const CYCLES_PER_CMOD_ELEM: u64 = 12;
/// Cycles charged per element of a `cdiv` (scaling by the pivot).
pub const CYCLES_PER_CDIV_ELEM: u64 = 30;

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Grid side: the matrix is the Laplacian of a `side × side` grid,
    /// giving `side²` columns.
    pub side: usize,
}

impl Params {
    /// Default configuration: a 28×28 grid (784 columns) with heavy
    /// fill-in — fine-grained like the paper's SPLASH inputs.
    pub fn paper() -> Params {
        Params { side: 28 }
    }

    /// A small configuration for tests.
    pub fn small() -> Params {
        Params { side: 8 }
    }
}

/// The sequentially computed symbolic factorization.
pub struct Symbolic {
    /// Matrix dimension.
    pub n: usize,
    /// Column start offsets into `rows` / the value array; length `n + 1`.
    pub colptr: Vec<usize>,
    /// Row indices of each column's nonzeros (diagonal first, ascending).
    pub rows: Vec<usize>,
    /// For each column, how many `cmod` updates it receives.
    pub deps: Vec<u32>,
    /// Original matrix entries: `(row, col, value)` with `row >= col`.
    pub a_entries: Vec<(usize, usize, f64)>,
}

/// Builds the grid Laplacian and computes the fill pattern.
///
/// Column pattern recurrence (standard symbolic factorization): the
/// pattern of L's column `j` is A's column pattern plus the patterns of
/// its elimination-tree children, restricted to rows ≥ `j`.
pub fn symbolic(p: Params) -> Symbolic {
    let side = p.side;
    let n = side * side;
    // Lower-triangular pattern and values of A.
    let mut a_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (v, col) in a_cols.iter_mut().enumerate() {
        col.push((v, 8.0)); // strong diagonal: SPD for sure
        let (x, y) = (v % side, v / side);
        if x + 1 < side {
            col.push((v + 1, -1.0));
        }
        if y + 1 < side {
            col.push((v + side, -1.0));
        }
    }
    // Fill pattern via elimination-tree children.
    let mut patterns: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        let mut pat: Vec<usize> = a_cols[j].iter().map(|(r, _)| *r).collect();
        for &k in &children[j] {
            pat.extend(patterns[k].iter().copied().filter(|r| *r > j));
        }
        pat.sort_unstable();
        pat.dedup();
        debug_assert_eq!(pat[0], j, "diagonal present");
        if let Some(&parent) = pat.get(1) {
            children[parent].push(j);
        }
        patterns.push(pat);
    }
    let mut colptr = Vec::with_capacity(n + 1);
    let mut rows = Vec::new();
    colptr.push(0);
    for pat in &patterns {
        rows.extend_from_slice(pat);
        colptr.push(rows.len());
    }
    // deps[k] = number of columns j < k with k in pattern(j).
    let mut deps = vec![0u32; n];
    for (j, pat) in patterns.iter().enumerate() {
        for &r in &pat[1..] {
            let _ = j;
            deps[r] += 1;
        }
    }
    let a_entries = (0..n)
        .flat_map(|j| a_cols[j].iter().map(move |(r, v)| (*r, j, *v)))
        .collect();
    Symbolic {
        n,
        colptr,
        rows,
        deps,
        a_entries,
    }
}

/// Per-processor outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outcome {
    /// Columns this processor factored.
    pub columns_factored: u64,
    /// Max `|(L·Lᵀ − A)|` over sampled entries, computed by processor 0.
    pub max_residual: Option<f64>,
}

struct Handles {
    val: SharedArray<f64>,
    ndone: SharedArray<i32>,
    /// Misclassified per-processor marker (see quicksort).
    scratch: SharedArray<i32>,
    col_locks: Vec<LockId>,
    init_done: midway_core::BarrierId,
}

fn owner_of(_n: usize, procs: usize, j: usize) -> usize {
    j % procs
}

fn build(sym: &Symbolic, _procs: usize) -> (Arc<SystemSpec>, Handles) {
    let mut b = SystemBuilder::new();
    let val = b.shared_array::<f64>("L", sym.colptr[sym.n], 1);
    let ndone = b.shared_array::<i32>("ndone", sym.n, 1);
    let col_locks = (0..sym.n)
        .map(|j| {
            b.lock(vec![
                val.range(sym.colptr[j]..sym.colptr[j + 1]),
                ndone.range(j..j + 1),
            ])
        })
        .collect();
    let init_done = b.barrier(vec![]);
    let scratch = b.private_array::<i32>("progress", 16);
    (
        b.build(),
        Handles {
            val,
            ndone,
            scratch,
            col_locks,
            init_done,
        },
    )
}

/// Runs the parallel factorization under `cfg`.
///
/// # Panics
///
/// Panics if the simulation fails.
pub fn run(cfg: MidwayConfig, p: Params) -> MidwayRun<Outcome> {
    let sym = Arc::new(symbolic(p));
    let (spec, h) = build(&sym, cfg.procs);
    Midway::run(cfg, &spec, |proc: &mut Proc| worker(proc, &sym, &h))
        .expect("cholesky simulation failed")
}

/// Runs the parallel factorization over real sockets (`Midway::run_real`).
pub fn run_real(
    cfg: MidwayConfig,
    real: &RealConfig,
    p: Params,
) -> Result<MidwayRun<Outcome>, RealError> {
    let sym = Arc::new(symbolic(p));
    let (spec, h) = build(&sym, cfg.procs);
    Midway::run_real(cfg, real, &spec, |proc| worker(proc, &sym, &h))
}

fn worker<T: Transport<Msg = NetMsg>>(
    proc: &mut Proc<'_, T>,
    sym: &Symbolic,
    h: &Handles,
) -> Outcome {
    let me = proc.id();
    let procs = proc.procs();
    let n = sym.n;

    // Parallel initialization: owners seed their columns with A.
    for j in 0..n {
        if owner_of(n, procs, j) != me {
            continue;
        }
        proc.acquire(h.col_locks[j]);
        for (r, c, v) in sym.a_entries.iter().filter(|(_, c, _)| *c == j) {
            let slot = nz_index(sym, *c, *r);
            proc.write(&h.val, slot, *v);
        }
        proc.write(&h.ndone, j, 0);
        proc.release(h.col_locks[j]);
    }
    // No cmod may race ahead of another owner's initialization.
    proc.barrier(h.init_done);

    let mut columns_factored = 0u64;
    for j in 0..n {
        if owner_of(n, procs, j) != me {
            continue;
        }
        // Wait until every earlier column's update has been applied.
        loop {
            proc.acquire(h.col_locks[j]);
            let done = proc.read(&h.ndone, j);
            if done as u32 == sym.deps[j] {
                break; // keep holding the lock for cdiv
            }
            proc.release(h.col_locks[j]);
            proc.idle(5_000);
        }
        if columns_factored.is_multiple_of(4) {
            // Misclassified private progress write (6-cycle penalty).
            proc.write(&h.scratch, me % 16, j as i32);
        }
        // cdiv(j): scale by the pivot.
        let (lo, hi) = (sym.colptr[j], sym.colptr[j + 1]);
        let diag = proc.read(&h.val, lo);
        assert!(diag > 0.0, "matrix is SPD; pivot must be positive");
        let pivot = diag.sqrt();
        proc.write(&h.val, lo, pivot);
        for s in lo + 1..hi {
            let v = proc.read(&h.val, s);
            proc.write(&h.val, s, v / pivot);
        }
        proc.work((hi - lo) as u64 * CYCLES_PER_CDIV_ELEM);
        // Mark the column complete (deps + 1 = "cdiv done") and snapshot
        // it before releasing.
        proc.write(&h.ndone, j, sym.deps[j] as i32 + 1);
        let col: Vec<f64> = proc.read_vec(&h.val, lo..hi);
        proc.release(h.col_locks[j]);
        columns_factored += 1;

        // cmod(k, j) for every later column in j's pattern: fine-grained
        // scattered updates under other columns' locks.
        for (off_k, &k) in sym.rows[lo..hi].iter().enumerate().skip(1) {
            let ljk = col[off_k];
            proc.acquire(h.col_locks[k]);
            let mut updates = 0u64;
            for (off_i, &i) in sym.rows[lo..hi].iter().enumerate().skip(off_k) {
                let slot = nz_index(sym, k, i);
                let cur = proc.read(&h.val, slot);
                proc.write(&h.val, slot, cur - col[off_i] * ljk);
                updates += 1;
            }
            let done = proc.read(&h.ndone, k);
            proc.write(&h.ndone, k, done + 1);
            proc.release(h.col_locks[k]);
            proc.work(updates * CYCLES_PER_CMOD_ELEM);
        }
    }

    // Processor 0 verifies L·Lᵀ ≈ A on sampled entries after quiescence.
    let max_residual = (me == 0).then(|| verify(proc, sym, h));
    Outcome {
        columns_factored,
        max_residual,
    }
}

/// Index of `(row, col)` in the packed value array.
fn nz_index(sym: &Symbolic, col: usize, row: usize) -> usize {
    let span = &sym.rows[sym.colptr[col]..sym.colptr[col + 1]];
    sym.colptr[col]
        + span
            .binary_search(&row)
            .unwrap_or_else(|_| panic!("({row},{col}) not in fill pattern"))
}

fn verify<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, sym: &Symbolic, h: &Handles) -> f64 {
    let n = sym.n;
    // Gather all columns (waiting until each is fully updated).
    let mut l: Vec<Vec<f64>> = Vec::with_capacity(n);
    for j in 0..n {
        loop {
            proc.acquire(h.col_locks[j]);
            let done = proc.read(&h.ndone, j);
            // deps + 1 marks a fully factored (cdiv'd) column.
            if done as u32 == sym.deps[j] + 1 {
                break;
            }
            proc.release(h.col_locks[j]);
            proc.idle(5_000);
        }
        l.push(proc.read_vec(&h.val, sym.colptr[j]..sym.colptr[j + 1]));
        proc.release(h.col_locks[j]);
    }
    // Dense reconstruction of sampled entries.
    let entry = |i: usize, j: usize| -> f64 {
        let mut sum = 0.0;
        for (k, lk) in l.iter().enumerate().take(j.min(i) + 1) {
            let span = &sym.rows[sym.colptr[k]..sym.colptr[k + 1]];
            let (Ok(pi), Ok(pj)) = (span.binary_search(&i), span.binary_search(&j)) else {
                continue;
            };
            sum += lk[pi] * lk[pj];
        }
        sum
    };
    let a = |i: usize, j: usize| -> f64 {
        sym.a_entries
            .iter()
            .find(|(r, c, _)| (*r == i.max(j)) && (*c == i.min(j)))
            .map_or(0.0, |(_, _, v)| *v)
    };
    let mut max_res = 0.0f64;
    let step = (n / 23).max(1);
    for i in (0..n).step_by(step) {
        for j in (0..=i).step_by(step) {
            max_res = max_res.max((entry(i, j) - a(i, j)).abs());
        }
    }
    max_res
}

/// Aggregate verification.
pub fn verified(outcomes: &[Outcome]) -> bool {
    outcomes[0]
        .max_residual
        .is_some_and(|r| r.is_finite() && r < 1e-8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_core::BackendKind;

    #[test]
    fn symbolic_pattern_is_consistent() {
        let sym = symbolic(Params::small());
        assert_eq!(sym.n, 64);
        for j in 0..sym.n {
            let span = &sym.rows[sym.colptr[j]..sym.colptr[j + 1]];
            assert_eq!(span[0], j, "diagonal first");
            assert!(span.windows(2).all(|w| w[0] < w[1]), "sorted");
        }
        // The grid Laplacian fills in: strictly more nonzeros than A.
        let a_nnz = sym.a_entries.len();
        assert!(sym.colptr[sym.n] > a_nnz);
    }

    #[test]
    fn factors_correctly_on_every_backend() {
        for backend in [
            BackendKind::Rt,
            BackendKind::Vm,
            BackendKind::Blast,
            BackendKind::TwinAll,
        ] {
            let run = run(MidwayConfig::new(3, backend), Params::small());
            assert!(
                verified(&run.results),
                "{backend:?}: residual {:?}",
                run.results[0].max_residual
            );
        }
    }

    #[test]
    fn factors_standalone() {
        let run = run(MidwayConfig::standalone(), Params::small());
        assert!(verified(&run.results));
    }

    #[test]
    fn work_is_distributed_and_fine_grained() {
        let run = run(MidwayConfig::new(4, BackendKind::Rt), Params::small());
        for (pid, o) in run.results.iter().enumerate() {
            assert!(o.columns_factored > 0, "proc {pid} factored nothing");
        }
        // Fine-grained: many lock acquisitions relative to data size.
        let acquires: u64 = run.counters.iter().map(|c| c.lock_acquires).sum();
        assert!(acquires as usize > symbolic(Params::small()).n * 2);
    }
}
